//! Fixture documents from the paper, shared by examples, integration
//! tests and the table/figure harnesses.

/// The Figure 1 multimedia example: two overlapping annotation
/// hierarchies (video shots, audio music) over a 1:34 video BLOB. Time
/// positions are in seconds (0:00 → 0, 1:34 → 94), since the paper's
/// default `standoff-type` is `xs:integer`.
pub const FIGURE1_XML: &str = r#"<sample>
  <video>
    <shot id="Intro" start="0" end="8"/>
    <shot id="Interview" start="8" end="64"/>
    <shot id="Outro" start="64" end="94"/>
  </video>
  <audio>
    <music artist="U2" start="0" end="31"/>
    <music artist="Bach" start="52" end="94"/>
  </audio>
</sample>"#;

/// The URI the Figure 1 document is registered under by
/// [`engine_with_figure1`].
pub const FIGURE1_URI: &str = "sample.xml";

/// An engine preloaded with the Figure 1 document.
pub fn engine_with_figure1() -> standoff_xquery::Engine {
    let mut engine = standoff_xquery::Engine::new();
    engine
        .load_document(FIGURE1_URI, FIGURE1_XML)
        .expect("fixture parses");
    engine
}

/// The Figure 4 / Listing 1 walk-through input: context items
/// `(iter, start, end)` and candidate regions `(start, end)`.
///
/// The paper's input table prints `c3` under iteration 1, but the printed
/// trace step 4 ("skip c3") is only semantics-preserving if `c3` is
/// covered by an active item of its *own* iteration — i.e. `c2`
/// (iteration 2). We follow the trace (see `standoff-core`'s merge-join
/// module docs).
pub const FIGURE4_CONTEXT: [(u32, i64, i64); 4] =
    [(1, 0, 15), (2, 12, 35), (2, 20, 30), (1, 55, 80)];

/// Candidate regions r1..r4 of Figure 4.
pub const FIGURE4_CANDIDATES: [(i64, i64); 4] = [(5, 10), (22, 45), (40, 60), (65, 70)];
