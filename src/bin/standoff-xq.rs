//! `standoff-xq` — command-line StandOff XQuery runner and store tool.
//!
//! ```text
//! standoff-xq index <base.xml> -o <snapshot> [--layer NAME=FILE]...
//!             [--uri URI] [--standoff-start N] [--standoff-end N]
//!             [--standoff-region N] [--lenient]
//! standoff-xq inspect <snapshot>
//! standoff-xq query [--store SNAPSHOT]... [--load URI=FILE]...
//!             [--load-bin FILE] (--query Q | --query-file F)
//!             [--strategy naive|naive-candidates|basic|loop-lifted]
//!             [--no-pushdown] [--explain] [--time]
//! ```
//!
//! `index` bulk-loads a base document plus any number of stand-off
//! annotation layers, builds every region index once, and writes a binary
//! snapshot; `query --store` reopens it without parsing or index
//! construction. Bare flags (no subcommand) behave like `query`, so
//! pre-store invocations keep working:
//!
//! ```text
//! standoff-xq index corpus.xml -o corpus.snap --uri corpus \
//!             --layer tokens=tokens.xml --layer entities=entities.xml
//! standoff-xq query --store corpus.snap \
//!             --query 'doc("corpus#entities")//person/select-narrow::w'
//! standoff-xq --load sample.xml=annotations.xml \
//!             --query 'doc("sample.xml")//music/select-wide::shot/@id'
//! ```

use std::process::ExitCode;
use std::time::Instant;

use standoff::core::{StandoffConfig, StandoffStrategy};
use standoff::store::{load_snapshot, load_snapshot_with_info, save_snapshot, LayerSet};
use standoff::xquery::Engine;

const USAGE: &str = "standoff-xq index <base.xml> -o <snapshot> [--layer NAME=FILE]... [--uri URI]\n\
                     \x20           [--standoff-start N] [--standoff-end N] [--standoff-region N] [--lenient]\n\
                     standoff-xq inspect <snapshot>\n\
                     standoff-xq query [--store SNAPSHOT]... [--load URI=FILE]... [--load-bin FILE]\n\
                     \x20           (--query Q | --query-file F)\n\
                     \x20           [--strategy naive|naive-candidates|basic|loop-lifted]\n\
                     \x20           [--no-pushdown] [--explain] [--time]";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match argv.first().map(String::as_str) {
        Some("index") => cmd_index(&argv[1..]),
        Some("inspect") => cmd_inspect(&argv[1..]),
        Some("query") => cmd_query(&argv[1..]),
        Some("--help") | Some("-h") => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        // Legacy flag-only form: treat as `query`.
        _ => cmd_query(&argv),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("standoff-xq: {e}");
            ExitCode::from(2)
        }
    }
}

// ---- index ----

fn cmd_index(argv: &[String]) -> Result<ExitCode, String> {
    let mut base: Option<String> = None;
    let mut out: Option<String> = None;
    let mut uri: Option<String> = None;
    let mut layers: Vec<(String, String)> = Vec::new();
    let mut config = StandoffConfig::default();
    let mut k = 0;
    while k < argv.len() {
        match argv[k].as_str() {
            "-o" | "--out" => {
                k += 1;
                out = Some(argv.get(k).ok_or("-o needs a path")?.clone());
            }
            "--uri" => {
                k += 1;
                uri = Some(argv.get(k).ok_or("--uri needs a value")?.clone());
            }
            "--layer" => {
                k += 1;
                let spec = argv.get(k).ok_or("--layer needs NAME=FILE")?;
                let (name, path) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("bad --layer '{spec}', expected NAME=FILE"))?;
                layers.push((name.to_string(), path.to_string()));
            }
            "--standoff-start" => {
                k += 1;
                config.start_name = argv.get(k).ok_or("--standoff-start needs a name")?.clone();
            }
            "--standoff-end" => {
                k += 1;
                config.end_name = argv.get(k).ok_or("--standoff-end needs a name")?.clone();
            }
            "--standoff-region" => {
                k += 1;
                config.region_name =
                    Some(argv.get(k).ok_or("--standoff-region needs a name")?.clone());
            }
            "--lenient" => config.lenient = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other if !other.starts_with('-') && base.is_none() => base = Some(other.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
        k += 1;
    }
    let base = base.ok_or("index: no base document given")?;
    let out = out.ok_or("index: no output path (-o)")?;
    let uri = uri.unwrap_or_else(|| base.clone());

    let base_doc = parse_file(&base)?;
    let mut set =
        LayerSet::build(&uri, base_doc, config.clone()).map_err(|e| format!("{base}: {e}"))?;
    for (name, path) in &layers {
        let doc = parse_file(path)?;
        set.add_layer(name, doc, config.clone())
            .map_err(|e| format!("{path}: {e}"))?;
    }
    save_snapshot(&set, &out).map_err(|e| format!("{out}: {e}"))?;

    let annotations: usize = set.layers().iter().map(|l| l.annotation_count()).sum();
    eprintln!(
        "# indexed {} layer(s), {annotations} annotation(s) -> {out} (uri '{uri}')",
        set.len(),
    );
    Ok(ExitCode::SUCCESS)
}

fn parse_file(path: &str) -> Result<standoff::xml::Document, String> {
    let xml = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    standoff::xml::parse_document(&xml).map_err(|e| format!("{path}: {e}"))
}

// ---- inspect ----

fn cmd_inspect(argv: &[String]) -> Result<ExitCode, String> {
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    }
    let [path] = argv else {
        return Err(format!("inspect takes exactly one snapshot path\n{USAGE}"));
    };
    // One pass: full decode (which proves integrity) with the on-disk
    // statistics gathered along the way.
    let (set, info) = load_snapshot_with_info(path).map_err(|e| format!("{path}: {e}"))?;
    println!("snapshot {path}");
    println!("  uri:     {}", info.uri);
    println!("  layers:  {}", info.layers.len());
    println!("  payload: {} byte(s)", info.payload_bytes);
    for (skim, layer) in info.layers.iter().zip(set.layers()) {
        println!(
            "  - {:<12} {:>8} byte(s)  {:>7} node(s)  {:>7} annotation(s)  [{}]",
            layer.name(),
            skim.bytes,
            layer.doc().node_count(),
            layer.annotation_count(),
            match layer.config().region_name {
                Some(_) => "element regions",
                None => "attribute regions",
            }
        );
    }
    Ok(ExitCode::SUCCESS)
}

// ---- query ----

struct QueryArgs {
    stores: Vec<String>,
    loads: Vec<(String, String)>,
    load_bins: Vec<String>,
    query: Option<String>,
    strategy: StandoffStrategy,
    pushdown: bool,
    explain: bool,
    time: bool,
}

fn parse_query_args(argv: &[String]) -> Result<QueryArgs, String> {
    let mut args = QueryArgs {
        stores: Vec::new(),
        loads: Vec::new(),
        load_bins: Vec::new(),
        query: None,
        strategy: StandoffStrategy::LoopLiftedMergeJoin,
        pushdown: true,
        explain: false,
        time: false,
    };
    let mut k = 0;
    while k < argv.len() {
        match argv[k].as_str() {
            "--store" => {
                k += 1;
                args.stores
                    .push(argv.get(k).ok_or("--store needs a path")?.clone());
            }
            "--load" => {
                k += 1;
                let spec = argv.get(k).ok_or("--load needs URI=FILE")?;
                let (uri, path) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("bad --load '{spec}', expected URI=FILE"))?;
                args.loads.push((uri.to_string(), path.to_string()));
            }
            "--load-bin" => {
                k += 1;
                args.load_bins
                    .push(argv.get(k).ok_or("--load-bin needs a path")?.clone());
            }
            "--query" | "-q" => {
                k += 1;
                args.query = Some(argv.get(k).ok_or("--query needs an argument")?.clone());
            }
            "--query-file" => {
                k += 1;
                let path = argv.get(k).ok_or("--query-file needs a path")?;
                args.query = Some(
                    std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read {path}: {e}"))?,
                );
            }
            "--strategy" => {
                k += 1;
                let name = argv.get(k).ok_or("--strategy needs a name")?;
                args.strategy = StandoffStrategy::parse(name)
                    .ok_or_else(|| format!("unknown strategy '{name}'"))?;
            }
            "--no-pushdown" => args.pushdown = false,
            "--explain" => args.explain = true,
            "--time" => args.time = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
        k += 1;
    }
    if args.query.is_none() {
        return Err("no query given (--query or --query-file)".into());
    }
    Ok(args)
}

fn cmd_query(argv: &[String]) -> Result<ExitCode, String> {
    let args = parse_query_args(argv)?;
    let mut engine = Engine::new();
    engine.set_strategy(args.strategy);
    engine.set_candidate_pushdown(args.pushdown);
    let load_start = Instant::now();
    for path in &args.stores {
        let set = load_snapshot(path).map_err(|e| format!("{path}: {e}"))?;
        engine
            .mount_store(set)
            .map_err(|e| format!("{path}: {e}"))?;
    }
    for path in &args.load_bins {
        let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
        let store = standoff::xml::read_store(&mut std::io::BufReader::new(file))
            .map_err(|e| format!("{path}: {e}"))?;
        for doc in store.into_docs() {
            // Move documents into the engine, keeping their URIs.
            let doc_uri = doc.uri().map(|u| u.to_string());
            engine.add_document(doc, doc_uri.as_deref());
        }
    }
    for (uri, path) in &args.loads {
        let xml = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        engine
            .load_document(uri, &xml)
            .map_err(|e| format!("{path}: {e}"))?;
    }
    let load_elapsed = load_start.elapsed();
    let query = args.query.expect("validated in parse_query_args");
    if args.explain {
        eprintln!("{}", engine.explain(&query).map_err(|e| e.to_string())?);
    }
    let start = Instant::now();
    match engine.run(&query) {
        Ok(result) => {
            if args.time {
                eprintln!(
                    "# {} item(s) in {:?} (load {:?})",
                    result.len(),
                    start.elapsed(),
                    load_elapsed
                );
            }
            println!("{}", result.as_xml());
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => {
            eprintln!("standoff-xq: {e}");
            Ok(ExitCode::FAILURE)
        }
    }
}
