//! `standoff-xq` — command-line StandOff XQuery runner and store tool.
//!
//! ```text
//! standoff-xq index <base.xml> -o <snapshot> [--layer NAME=FILE]...
//!             [--uri URI] [--standoff-start N] [--standoff-end N]
//!             [--standoff-region N] [--lenient]
//! standoff-xq inspect <snapshot>
//! standoff-xq query [--store SNAPSHOT]... [--load URI=FILE]...
//!             [--load-bin FILE] (--query Q | --query-file F)
//!             [--strategy naive|naive-candidates|basic|loop-lifted|auto]
//!             [--no-pushdown] [--threads N] [--explain] [--time]
//! standoff-xq explain [--store SNAPSHOT]... [--load URI=FILE]...
//!             [--load-bin FILE] (--query Q | --query-file F)
//!             [--strategy ...] [--no-pushdown]
//! standoff-xq batch [--store SNAPSHOT]... [--load URI=FILE]...
//!             [--load-bin FILE] [--threads N] [--time] <queries.txt | ->
//! ```
//!
//! `index` bulk-loads a base document plus any number of stand-off
//! annotation layers, builds every region index once, and writes a binary
//! snapshot; `query --store` reopens it without parsing or index
//! construction. Bare flags (no subcommand) behave like `query`, so
//! pre-store invocations keep working:
//!
//! ```text
//! standoff-xq index corpus.xml -o corpus.snap --uri corpus \
//!             --layer tokens=tokens.xml --layer entities=entities.xml
//! standoff-xq query --store corpus.snap \
//!             --query 'doc("corpus#entities")//person/select-narrow::w'
//! standoff-xq batch --store corpus.snap --threads 4 queries.txt
//! ```
//!
//! `batch` evaluates many queries against one shared corpus: the engine
//! is frozen after loading, worker threads each get a session over it,
//! and results print to stdout in submission order (so output is
//! byte-identical across `--threads` settings). For `query` (one query,
//! one session) `--threads N` instead enables **intra-query** morsel
//! parallelism: dense candidate scans split into pre-range morsels over
//! N workers, merged back in document order — again byte-identical to
//! the single-threaded run. `batch`/`stats` pass the same N down to
//! their worker sessions, so large dense scans inside a batch morsel
//! too. In the queries file,
//! lines containing only `%%` separate multi-line queries; without any
//! `%%` line, every non-empty line that does not start with `#` is one
//! query. In `%%` mode, `#` comment lines are honored at the start of
//! each block (a `#` inside a query body is query text). Failed queries
//! print `!! error: …` in place of a result and flip the exit code to
//! 1; no query input can bring the process down.
//!
//! `explain` compiles the query against the loaded corpus and prints
//! the **optimized plan** to stdout — the same plan object `query`
//! would execute, including per-operator StandOff strategy, candidate
//! pushdown, and cardinality estimates from the mounted region
//! indexes. `query --explain` remains as an alias that prints the plan
//! to stderr before running the query.
//!
//! All subcommands print diagnostics to stderr and never panic. Exit
//! codes: **0** success; **1** query failure (parse, compile, or
//! evaluation error — including any failed query in a `batch`);
//! **2** usage or corpus-loading errors (bad flags, missing files,
//! unreadable snapshots).

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use standoff::core::{StandoffConfig, StandoffStrategy};
use standoff::serve::{self, ServeMount, ServeOptions, Server};
use standoff::store::{
    atomic_write, ops_to_text, parse_ops, save_snapshot, wal_path, write_snapshot_legacy, DeltaSet,
    DeltaWal, LayerSet, Snapshot,
};
use standoff::xquery::{Engine, EngineOptions, Executor, Governance};

const USAGE: &str = "standoff-xq index <base.xml> -o <snapshot> [--layer NAME=FILE]... [--uri URI]\n\
                     \x20           [--standoff-start N] [--standoff-end N] [--standoff-region N] [--lenient]\n\
                     \x20           [--legacy-format]\n\
                     standoff-xq inspect <snapshot> [--sections]\n\
                     standoff-xq annotate --store SNAPSHOT --delta SIDECAR [--journal] <ops.txt | ->\n\
                     standoff-xq compact --store SNAPSHOT [--delta SIDECAR]... -o <snapshot>\n\
                     standoff-xq verify <snapshot> [--delta SIDECAR]... [--json]\n\
                     standoff-xq query [--store SNAPSHOT [--delta SIDECAR]...]... [--load URI=FILE]... [--load-bin FILE]\n\
                     \x20           (--query Q | --query-file F)\n\
                     \x20           [--strategy naive|naive-candidates|basic|loop-lifted|auto]\n\
                     \x20           [--no-pushdown] [--threads N] [--explain] [--time] [--profile] [--profile-json]\n\
                     standoff-xq explain [--store SNAPSHOT]... [--load URI=FILE]... [--load-bin FILE]\n\
                     \x20           (--query Q | --query-file F) [--strategy ...] [--no-pushdown] [--analyze]\n\
                     standoff-xq batch [--store SNAPSHOT]... [--load URI=FILE]... [--load-bin FILE]\n\
                     \x20           [--strategy ...] [--no-pushdown] [--threads N] [--time]\n\
                     \x20           [--profile] [--profile-json] <queries.txt | ->\n\
                     standoff-xq stats [--store SNAPSHOT]... [--load URI=FILE]... [--load-bin FILE]\n\
                     \x20           [--strategy ...] [--no-pushdown] [--threads N] [queries.txt | -]\n\
                     standoff-xq serve [--listen ADDR] [--store SNAPSHOT]... [--strategy ...] [--no-pushdown]\n\
                     \x20           [--threads N] [--deadline-ms N] [--max-results N] [--max-scratch-mb N]\n\
                     \x20           [--queue-cap N] [--read-timeout-ms N]\n\
                     standoff-xq call ADDR VERB [ARG...] [--retries N]   (verbs: ping, query Q, stats,\n\
                     \x20           mount PATH, unmount URI, mounts, shutdown)\n\
                     governance (query/batch too): --deadline-ms N --max-results N --max-scratch-mb N\n\
                     exit codes: 0 success, 1 query failure (verify: corruption), 2 usage/corpus error";

fn main() -> ExitCode {
    // Crash-recovery harnesses arm fault points through the
    // environment (STANDOFF_FAULT=point=abort,...); a no-op unless the
    // binary was built with the `fault-inject` feature.
    standoff::core::fault::arm_from_env();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match argv.first().map(String::as_str) {
        Some("index") => cmd_index(&argv[1..]),
        Some("inspect") => cmd_inspect(&argv[1..]),
        Some("annotate") => cmd_annotate(&argv[1..]),
        Some("compact") => cmd_compact(&argv[1..]),
        Some("verify") => cmd_verify(&argv[1..]),
        Some("query") => cmd_query(&argv[1..]),
        Some("explain") => cmd_explain(&argv[1..]),
        Some("batch") => cmd_batch(&argv[1..]),
        Some("stats") => cmd_stats(&argv[1..]),
        Some("serve") => cmd_serve(&argv[1..]),
        Some("call") => cmd_call(&argv[1..]),
        Some("--help") | Some("-h") => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        // Legacy flag-only form: treat as `query`.
        _ => cmd_query(&argv),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("standoff-xq: {e}");
            ExitCode::from(2)
        }
    }
}

// ---- index ----

fn cmd_index(argv: &[String]) -> Result<ExitCode, String> {
    let mut base: Option<String> = None;
    let mut out: Option<String> = None;
    let mut uri: Option<String> = None;
    let mut layers: Vec<(String, String)> = Vec::new();
    let mut config = StandoffConfig::default();
    let mut legacy = false;
    let mut k = 0;
    while k < argv.len() {
        match argv[k].as_str() {
            "-o" | "--out" => {
                k += 1;
                out = Some(argv.get(k).ok_or("-o needs a path")?.clone());
            }
            "--uri" => {
                k += 1;
                uri = Some(argv.get(k).ok_or("--uri needs a value")?.clone());
            }
            "--layer" => {
                k += 1;
                let spec = argv.get(k).ok_or("--layer needs NAME=FILE")?;
                let (name, path) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("bad --layer '{spec}', expected NAME=FILE"))?;
                layers.push((name.to_string(), path.to_string()));
            }
            "--standoff-start" => {
                k += 1;
                config.start_name = argv.get(k).ok_or("--standoff-start needs a name")?.clone();
            }
            "--standoff-end" => {
                k += 1;
                config.end_name = argv.get(k).ok_or("--standoff-end needs a name")?.clone();
            }
            "--standoff-region" => {
                k += 1;
                config.region_name =
                    Some(argv.get(k).ok_or("--standoff-region needs a name")?.clone());
            }
            "--lenient" => config.lenient = true,
            "--legacy-format" => legacy = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other if !other.starts_with('-') && base.is_none() => base = Some(other.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
        k += 1;
    }
    let base = base.ok_or("index: no base document given")?;
    let out = out.ok_or("index: no output path (-o)")?;
    let uri = uri.unwrap_or_else(|| base.clone());

    let base_doc = parse_file(&base)?;
    let mut set =
        LayerSet::build(&uri, base_doc, config.clone()).map_err(|e| format!("{base}: {e}"))?;
    for (name, path) in &layers {
        let doc = parse_file(path)?;
        set.add_layer(name, doc, config.clone())
            .map_err(|e| format!("{path}: {e}"))?;
    }
    if legacy {
        // Version-1 streaming format (compat fixtures, old readers) —
        // written through the same atomic temp-fsync-rename path as the
        // current format, so a crash never leaves a torn snapshot.
        standoff::store::atomic_replace(std::path::Path::new(&out), |w| {
            write_snapshot_legacy(&set, w)
        })
        .map_err(|e| format!("{out}: {e}"))?;
    } else {
        save_snapshot(&set, &out).map_err(|e| format!("{out}: {e}"))?;
    }

    let annotations: usize = set.layers().iter().map(|l| l.annotation_count()).sum();
    eprintln!(
        "# indexed {} layer(s), {annotations} annotation(s) -> {out} (uri '{uri}', {})",
        set.len(),
        if legacy { "v1 legacy" } else { "v4 columnar" },
    );
    Ok(ExitCode::SUCCESS)
}

fn parse_file(path: &str) -> Result<standoff::xml::Document, String> {
    let xml = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    standoff::xml::parse_document(&xml).map_err(|e| format!("{path}: {e}"))
}

// ---- inspect ----

fn cmd_inspect(argv: &[String]) -> Result<ExitCode, String> {
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    }
    let sections = argv.iter().any(|a| a == "--sections");
    let paths: Vec<&String> = argv.iter().filter(|a| *a != "--sections").collect();
    let [path] = paths[..] else {
        return Err(format!("inspect takes exactly one snapshot path\n{USAGE}"));
    };
    // A pure header walk: v3 files expose uri, layer names and counts in
    // the section table + layer headers, so no payload is read (let
    // alone decoded); legacy files are skimmed with seeks. `query
    // --store` is the integrity-proving path.
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let info = standoff::store::inspect_snapshot(&mut std::io::BufReader::new(file))
        .map_err(|e| format!("{path}: {e}"))?;
    println!("snapshot {path}");
    println!("  format:  v{}", info.version);
    println!("  uri:     {}", info.uri);
    println!("  layers:  {}", info.layers.len());
    println!("  payload: {} byte(s)", info.payload_bytes);
    for layer in &info.layers {
        let opt = |v: Option<u64>| match v {
            Some(v) => v.to_string(),
            None => "?".to_string(), // legacy skim: counts need a decode
        };
        println!(
            "  - {:<12} {:>8} byte(s)  {:>7} node(s)  {:>7} annotation(s)",
            layer.name,
            layer.bytes,
            opt(layer.nodes),
            opt(layer.annotations),
        );
        // Per-section byte breakdown — v3 section tables only; legacy
        // files store one opaque payload per layer.
        if sections {
            for s in &layer.sections {
                println!("      {:<22} {:>8} byte(s)", s.name, s.bytes);
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}

// ---- annotate / compact ----

/// Replay delta sidecar files against a layer set, in order. Each
/// sidecar is a checkpoint; batches journaled after it live in
/// `<sidecar>.wal` and replay on top (read-only scan: the committed
/// prefix applies, a torn tail from a crashed writer is ignored —
/// the next writer-mode open truncates it). A sidecar path may name a
/// not-yet-checkpointed delta (journal-only so far) as long as its WAL
/// exists.
fn load_delta(sidecars: &[&String], set: &LayerSet) -> Result<DeltaSet, String> {
    let mut delta = DeltaSet::new();
    for path in sidecars {
        let wal_file = wal_path(std::path::Path::new(path));
        let have_wal = wal_file.exists();
        let mut checkpointed = 0;
        match std::fs::read_to_string(path) {
            Ok(text) => {
                checkpointed = standoff::store::checkpointed_seq(&text);
                let ops = parse_ops(&text).map_err(|e| format!("{path}: {e}"))?;
                delta
                    .apply_all(ops, set)
                    .map_err(|e| format!("{path}: {e}"))?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound && have_wal => {}
            Err(e) => return Err(format!("cannot read {path}: {e}")),
        }
        if have_wal {
            let scan =
                DeltaWal::scan(&wal_file).map_err(|e| format!("{}: {e}", wal_file.display()))?;
            // Records at or below the checkpoint mark are already part
            // of the sidecar text (a checkpoint landed but its journal
            // truncation didn't): replaying them would double-apply.
            for record in scan.records.iter().filter(|r| r.seq > checkpointed) {
                let ops = parse_ops(&record.ops)
                    .map_err(|e| format!("{} record {}: {e}", wal_file.display(), record.seq))?;
                delta
                    .apply_all(ops, set)
                    .map_err(|e| format!("{} record {}: {e}", wal_file.display(), record.seq))?;
            }
        }
    }
    Ok(delta)
}

/// `annotate`: apply a batch of insert/retract ops to a snapshot's
/// delta sidecar. The snapshot file itself is never touched — the ops
/// land in the sidecar (and its WAL), which `query`/`stats`/`compact`
/// replay via `--delta`. The whole batch validates against the snapshot
/// (and the overlay is proven mountable) before anything is persisted,
/// so a bad op leaves the sidecar exactly as it was.
///
/// Durability: the default mode recovers any journaled batches from
/// `<sidecar>.wal`, folds them plus the new batch into a fresh
/// checkpoint, rewrites the sidecar atomically (temp + fsync + rename),
/// and truncates the WAL. `--journal` instead appends the validated
/// batch to the WAL only — one fsync'd append, no sidecar rewrite —
/// which is the fast path for high-frequency writers; the batch is
/// durable the moment the command exits 0 and survives SIGKILL.
fn cmd_annotate(argv: &[String]) -> Result<ExitCode, String> {
    let mut store: Option<String> = None;
    let mut sidecar: Option<String> = None;
    let mut ops_path: Option<String> = None;
    let mut journal = false;
    let mut k = 0;
    while k < argv.len() {
        match argv[k].as_str() {
            "--store" => {
                k += 1;
                store = Some(argv.get(k).ok_or("--store needs a path")?.clone());
            }
            "--delta" => {
                k += 1;
                sidecar = Some(argv.get(k).ok_or("--delta needs a path")?.clone());
            }
            "--journal" => journal = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other if !other.starts_with('-') || other == "-" => {
                if ops_path.is_some() {
                    return Err(format!("annotate takes exactly one ops file\n{USAGE}"));
                }
                ops_path = Some(other.to_string());
            }
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
        k += 1;
    }
    let store = store.ok_or("annotate: no snapshot given (--store)")?;
    let sidecar = sidecar.ok_or("annotate: no delta sidecar given (--delta)")?;
    let ops_path = ops_path.ok_or("annotate: no ops file given ('-' for stdin)")?;

    let snapshot = Snapshot::open(&store).map_err(|e| format!("{store}: {e}"))?;
    let set = snapshot
        .to_layer_set()
        .map_err(|e| format!("{store}: {e}"))?;
    // Recover pending state: sidecar checkpoint first (it may not exist
    // yet), then committed WAL batches on top. Writer-mode open also
    // truncates any torn tail a crashed writer left behind.
    let mut delta = DeltaSet::new();
    let mut checkpointed = 0;
    if std::path::Path::new(&sidecar).exists() {
        let text =
            std::fs::read_to_string(&sidecar).map_err(|e| format!("cannot read {sidecar}: {e}"))?;
        checkpointed = standoff::store::checkpointed_seq(&text);
        let ops = parse_ops(&text).map_err(|e| format!("{sidecar}: {e}"))?;
        delta
            .apply_all(ops, &set)
            .map_err(|e| format!("{sidecar}: {e}"))?;
    }
    let wal_file = wal_path(std::path::Path::new(&sidecar));
    let (mut wal, replayed) =
        DeltaWal::open(&wal_file).map_err(|e| format!("{}: {e}", wal_file.display()))?;
    wal.ensure_seq_above(checkpointed);
    for record in replayed.iter().filter(|r| r.seq > checkpointed) {
        let ops = parse_ops(&record.ops)
            .map_err(|e| format!("{} record {}: {e}", wal_file.display(), record.seq))?;
        delta
            .apply_all(ops, &set)
            .map_err(|e| format!("{} record {}: {e}", wal_file.display(), record.seq))?;
    }
    let text = if ops_path == "-" {
        use std::io::Read;
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(&ops_path).map_err(|e| format!("cannot read {ops_path}: {e}"))?
    };
    let ops = parse_ops(&text).map_err(|e| format!("{ops_path}: {e}"))?;
    let applied = delta
        .apply_all(ops.iter().cloned(), &set)
        .map_err(|e| format!("{ops_path}: {e}"))?;
    // Prove the overlay mounts — the same validation every later
    // `--delta` reader will run — before persisting anything.
    let mut engine = Engine::new();
    engine
        .mount_overlay(set, &delta)
        .map_err(|e| format!("{store}: {e}"))?;
    if journal {
        // Fast path: one fsync'd append; the sidecar checkpoint is
        // rewritten on the next default-mode annotate or compact.
        if applied > 0 {
            wal.append(&ops_to_text(&ops))
                .map_err(|e| format!("{}: {e}", wal_file.display()))?;
        }
        eprintln!(
            "# journaled {applied} op(s); pending {} insert(s), {} retract(s) -> {}",
            delta.insert_count(),
            delta.retract_count(),
            wal_file.display(),
        );
    } else {
        // Checkpoint: atomically rewrite the sidecar with the full
        // pending state (stamped with the journal high-water mark),
        // then truncate the journal it subsumes. A crash between the
        // two is safe: the mark tells recovery the surviving journal
        // records are already folded in.
        let mut text = standoff::store::checkpoint_marker(wal.last_seq());
        text.push_str(&ops_to_text(&delta.to_ops()));
        atomic_write(std::path::Path::new(&sidecar), text.as_bytes())
            .map_err(|e| format!("cannot write {sidecar}: {e}"))?;
        wal.truncate()
            .map_err(|e| format!("{}: {e}", wal_file.display()))?;
        eprintln!(
            "# applied {applied} op(s); pending {} insert(s), {} retract(s) -> {sidecar}",
            delta.insert_count(),
            delta.retract_count(),
        );
    }
    Ok(ExitCode::SUCCESS)
}

/// `compact`: fold a snapshot plus its delta sidecar(s) into a fresh,
/// delta-free v3 snapshot. The sidecars are left on disk but no longer
/// apply to the compacted output (their annotations are baked in).
fn cmd_compact(argv: &[String]) -> Result<ExitCode, String> {
    let mut store: Option<String> = None;
    let mut sidecars: Vec<String> = Vec::new();
    let mut out: Option<String> = None;
    let mut k = 0;
    while k < argv.len() {
        match argv[k].as_str() {
            "--store" => {
                k += 1;
                store = Some(argv.get(k).ok_or("--store needs a path")?.clone());
            }
            "--delta" => {
                k += 1;
                sidecars.push(argv.get(k).ok_or("--delta needs a path")?.clone());
            }
            "-o" | "--out" => {
                k += 1;
                out = Some(argv.get(k).ok_or("-o needs a path")?.clone());
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
        k += 1;
    }
    let store = store.ok_or("compact: no snapshot given (--store)")?;
    let out = out.ok_or("compact: no output path (-o)")?;

    let snapshot = Snapshot::open(&store).map_err(|e| format!("{store}: {e}"))?;
    let set = snapshot
        .to_layer_set()
        .map_err(|e| format!("{store}: {e}"))?;
    let refs: Vec<&String> = sidecars.iter().collect();
    let delta = load_delta(&refs, &set)?;
    let folded = standoff::store::compact(&set, &delta).map_err(|e| format!("{store}: {e}"))?;
    save_snapshot(&folded, &out).map_err(|e| format!("{out}: {e}"))?;
    let annotations: usize = folded.layers().iter().map(|l| l.annotation_count()).sum();
    let compact_ns = standoff::core::MetricsRegistry::global()
        .histogram("store.compact_ns")
        .snapshot()
        .mean();
    eprintln!(
        "# compacted {} insert(s), {} retract(s) into {} layer(s), {annotations} annotation(s) \
         in {:.2}ms -> {out}",
        delta.insert_count(),
        delta.retract_count(),
        folded.len(),
        compact_ns as f64 / 1e6,
    );
    Ok(ExitCode::SUCCESS)
}

// ---- verify ----

/// Minimal JSON string escape for the `verify --json` report (paths
/// and error messages may carry quotes or backslashes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Per-sidecar facts gathered by `verify`.
struct DeltaCheck {
    path: String,
    ops: usize,
    checkpoint_seq: u64,
    wal_records: usize,
    wal_skipped: usize,
    wal_torn_tail: bool,
}

/// `verify`: fsck for a snapshot and its delta sidecar(s).
///
/// Deep-checks everything the lazy read path defers: every section
/// CRC32 (v4), full structural revalidation of every layer, sidecar
/// ops parse + replay, WAL scan (per-record CRCs, sequence
/// monotonicity), checkpoint/WAL consistency, and an overlay mount
/// proof when sidecars are given. A torn WAL tail is *reported* but
/// clean — it is an uncommitted append, not data loss.
///
/// Exit codes: **0** everything verifiable is intact; **1** corruption
/// or invariant violations (each finding listed); **2** usage errors
/// or unreadable paths.
fn cmd_verify(argv: &[String]) -> Result<ExitCode, String> {
    let mut json = false;
    let mut path: Option<String> = None;
    let mut sidecars: Vec<String> = Vec::new();
    let mut k = 0;
    while k < argv.len() {
        match argv[k].as_str() {
            "--json" => json = true,
            "--delta" => {
                k += 1;
                sidecars.push(argv.get(k).ok_or("--delta needs a path")?.clone());
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other if !other.starts_with('-') => {
                if path.is_some() {
                    return Err(format!("verify takes exactly one snapshot path\n{USAGE}"));
                }
                path = Some(other.to_string());
            }
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
        k += 1;
    }
    let path = path.ok_or("verify: no snapshot given")?;

    let mut findings: Vec<String> = Vec::new();
    let mut notes: Vec<String> = Vec::new();
    let (mut version, mut checksummed, mut layers, mut sections_checked) = (0u32, false, 0, 0);
    let set = match standoff::store::Snapshot::open_verified(&path) {
        Ok((snapshot, report)) => {
            version = report.version;
            checksummed = report.checksummed;
            layers = report.layers;
            sections_checked = report.sections_checked;
            match snapshot.to_layer_set() {
                Ok(set) => Some(set),
                Err(e) => {
                    findings.push(format!("{path}: {e}"));
                    None
                }
            }
        }
        // Unreadable is a usage error (wrong path, permissions);
        // readable-but-damaged is a finding.
        Err(standoff::store::StoreError::Io(e)) => return Err(format!("{path}: {e}")),
        Err(e) => {
            findings.push(format!("{path}: {e}"));
            None
        }
    };

    let mut delta_checks: Vec<DeltaCheck> = Vec::new();
    let mut delta = DeltaSet::new();
    for sidecar in &sidecars {
        let wal_file = wal_path(std::path::Path::new(sidecar));
        let have_wal = wal_file.exists();
        let mut check = DeltaCheck {
            path: sidecar.clone(),
            ops: 0,
            checkpoint_seq: 0,
            wal_records: 0,
            wal_skipped: 0,
            wal_torn_tail: false,
        };
        match std::fs::read_to_string(sidecar) {
            Ok(text) => {
                check.checkpoint_seq = standoff::store::checkpointed_seq(&text);
                match parse_ops(&text) {
                    Ok(ops) => {
                        check.ops = ops.len();
                        if let Some(set) = &set {
                            if let Err(e) = delta.apply_all(ops, set) {
                                findings.push(format!("{sidecar}: {e}"));
                            }
                        }
                    }
                    Err(e) => findings.push(format!("{sidecar}: {e}")),
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound && have_wal => {
                notes.push(format!("{sidecar}: no checkpoint yet (journal-only delta)"));
            }
            Err(e) => return Err(format!("cannot read {sidecar}: {e}")),
        }
        if have_wal {
            match DeltaWal::scan(&wal_file) {
                Ok(scan) => {
                    check.wal_torn_tail = scan.torn_tail;
                    if scan.torn_tail {
                        notes.push(format!(
                            "{}: torn tail after {} committed record(s) — an append \
                             died mid-write; the batch was never committed and the \
                             next writer truncates it",
                            wal_file.display(),
                            scan.records.len(),
                        ));
                    }
                    for record in &scan.records {
                        if record.seq <= check.checkpoint_seq {
                            // Already folded into the checkpoint (the
                            // checkpoint landed, its truncation didn't).
                            check.wal_skipped += 1;
                            continue;
                        }
                        check.wal_records += 1;
                        match parse_ops(&record.ops) {
                            Ok(ops) => {
                                if let Some(set) = &set {
                                    if let Err(e) = delta.apply_all(ops, set) {
                                        findings.push(format!(
                                            "{} record {}: {e}",
                                            wal_file.display(),
                                            record.seq
                                        ));
                                    }
                                }
                            }
                            Err(e) => findings.push(format!(
                                "{} record {}: {e}",
                                wal_file.display(),
                                record.seq
                            )),
                        }
                    }
                }
                Err(e) => findings.push(format!("{}: {e}", wal_file.display())),
            }
        }
        delta_checks.push(check);
    }
    // Overlay mount proof: the merged view every `--delta` reader
    // would build must itself validate.
    if let Some(set) = set {
        if !sidecars.is_empty() && findings.is_empty() {
            let mut engine = Engine::new();
            if let Err(e) = engine.mount_overlay(set, &delta) {
                findings.push(format!("overlay mount: {e}"));
            }
        }
    }

    let clean = findings.is_empty();
    if json {
        let deltas = delta_checks
            .iter()
            .map(|d| {
                format!(
                    "{{\"path\":\"{}\",\"ops\":{},\"checkpoint_seq\":{},\"wal_records\":{},\
                     \"wal_skipped\":{},\"wal_torn_tail\":{}}}",
                    json_escape(&d.path),
                    d.ops,
                    d.checkpoint_seq,
                    d.wal_records,
                    d.wal_skipped,
                    d.wal_torn_tail,
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let list = |items: &[String]| {
            items
                .iter()
                .map(|f| format!("\"{}\"", json_escape(f)))
                .collect::<Vec<_>>()
                .join(",")
        };
        println!(
            "{{\"snapshot\":\"{}\",\"version\":{version},\"checksummed\":{checksummed},\
             \"layers\":{layers},\"sections_checked\":{sections_checked},\"deltas\":[{deltas}],\
             \"notes\":[{}],\"findings\":[{}],\"status\":\"{}\"}}",
            json_escape(&path),
            list(&notes),
            list(&findings),
            if clean { "clean" } else { "corrupt" },
        );
    } else {
        println!(
            "# {path}: v{version}, {}, {layers} layer(s), {sections_checked} section checksum(s)",
            if checksummed {
                "checksummed"
            } else {
                "no checksums (pre-v4)"
            },
        );
        for d in &delta_checks {
            println!(
                "# {}: {} checkpoint op(s), {} wal record(s), {} already checkpointed{}",
                d.path,
                d.ops,
                d.wal_records,
                d.wal_skipped,
                if d.wal_torn_tail { ", torn tail" } else { "" },
            );
        }
        for n in &notes {
            println!("note: {n}");
        }
        for f in &findings {
            println!("finding: {f}");
        }
        if clean {
            println!("{path}: ok");
        } else {
            println!("{path}: CORRUPT ({} finding(s))", findings.len());
        }
    }
    Ok(if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

// ---- shared corpus flags (query + batch) ----

/// The corpus-shaping flags `query` and `batch` have in common.
#[derive(Default)]
struct CorpusArgs {
    stores: Vec<String>,
    /// `--delta SIDECAR` overlays, keyed by the index of the `--store`
    /// they follow (a sidecar addresses layers of one snapshot).
    deltas: Vec<(usize, String)>,
    loads: Vec<(String, String)>,
    load_bins: Vec<String>,
    strategy: Option<StandoffStrategy>,
    /// `--strategy auto`: per-operator selection from index statistics.
    auto_strategy: bool,
    pushdown: bool,
}

impl CorpusArgs {
    fn new() -> CorpusArgs {
        CorpusArgs {
            pushdown: true,
            ..CorpusArgs::default()
        }
    }

    /// Try to consume the flag at `argv[*k]` (and its value). Returns
    /// whether the flag was one of ours; `*k` is left on the last
    /// consumed token either way.
    fn try_consume(&mut self, argv: &[String], k: &mut usize) -> Result<bool, String> {
        match argv[*k].as_str() {
            "--store" => {
                *k += 1;
                self.stores
                    .push(argv.get(*k).ok_or("--store needs a path")?.clone());
            }
            "--delta" => {
                *k += 1;
                let path = argv.get(*k).ok_or("--delta needs a path")?.clone();
                if self.stores.is_empty() {
                    return Err("--delta must follow the --store it overlays".to_string());
                }
                self.deltas.push((self.stores.len() - 1, path));
            }
            "--load" => {
                *k += 1;
                let spec = argv.get(*k).ok_or("--load needs URI=FILE")?;
                let (uri, path) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("bad --load '{spec}', expected URI=FILE"))?;
                self.loads.push((uri.to_string(), path.to_string()));
            }
            "--load-bin" => {
                *k += 1;
                self.load_bins
                    .push(argv.get(*k).ok_or("--load-bin needs a path")?.clone());
            }
            "--strategy" => {
                *k += 1;
                let name = argv.get(*k).ok_or("--strategy needs a name")?;
                // Last flag wins, like every other repeated flag: an
                // explicit strategy after `auto` turns auto off again.
                if name == "auto" {
                    self.auto_strategy = true;
                    self.strategy = None;
                } else {
                    self.strategy = Some(
                        StandoffStrategy::parse(name)
                            .ok_or_else(|| format!("unknown strategy '{name}'"))?,
                    );
                    self.auto_strategy = false;
                }
            }
            "--no-pushdown" => self.pushdown = false,
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Build an engine with every snapshot mounted and every document
    /// loaded. All I/O and parse failures surface as diagnostics.
    fn build_engine(&self) -> Result<Engine, String> {
        let mut engine = Engine::new();
        if let Some(strategy) = self.strategy {
            engine.set_strategy(strategy);
        }
        engine.set_auto_strategy(self.auto_strategy);
        engine.set_candidate_pushdown(self.pushdown);
        for (i, path) in self.stores.iter().enumerate() {
            let snapshot = Snapshot::open(path).map_err(|e| format!("{path}: {e}"))?;
            let sidecars: Vec<&String> = self
                .deltas
                .iter()
                .filter(|(store, _)| *store == i)
                .map(|(_, p)| p)
                .collect();
            if sidecars.is_empty() {
                engine
                    .mount_snapshot(&snapshot)
                    .map_err(|e| format!("{path}: {e}"))?;
            } else {
                // Overlay mount: replay the sidecar op log over the
                // snapshot's layer set and mount base + delta merged.
                let set = snapshot
                    .to_layer_set()
                    .map_err(|e| format!("{path}: {e}"))?;
                let delta = load_delta(&sidecars, &set)?;
                engine
                    .mount_overlay(set, &delta)
                    .map_err(|e| format!("{path}: {e}"))?;
            }
        }
        for path in &self.load_bins {
            let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            let store = standoff::xml::read_store(&mut std::io::BufReader::new(file))
                .map_err(|e| format!("{path}: {e}"))?;
            for doc in store.into_docs() {
                // Move documents into the engine, keeping their URIs.
                let doc_uri = doc.uri().map(|u| u.to_string());
                engine.add_document(doc, doc_uri.as_deref());
            }
        }
        for (uri, path) in &self.loads {
            let xml =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            engine
                .load_document(uri, &xml)
                .map_err(|e| format!("{path}: {e}"))?;
        }
        Ok(engine)
    }
}

// ---- resource-governance flags (query + batch + serve) ----

/// Per-request resource caps, shared by `query`, `batch` and `serve`.
#[derive(Clone, Copy, Default)]
struct GovFlags {
    deadline_ms: Option<u64>,
    max_results: Option<u64>,
    max_scratch_mb: Option<u64>,
    queue_cap: Option<usize>,
}

impl GovFlags {
    /// Try to consume the flag at `argv[*k]` (and its value), like
    /// [`CorpusArgs::try_consume`].
    fn try_consume(&mut self, argv: &[String], k: &mut usize) -> Result<bool, String> {
        fn value(argv: &[String], k: &mut usize, flag: &str) -> Result<u64, String> {
            *k += 1;
            let v = argv
                .get(*k)
                .ok_or_else(|| format!("{flag} needs a number"))?;
            v.parse::<u64>()
                .map_err(|_| format!("bad {flag} '{v}', expected a non-negative integer"))
        }
        match argv[*k].as_str() {
            "--deadline-ms" => self.deadline_ms = Some(value(argv, k, "--deadline-ms")?),
            "--max-results" => self.max_results = Some(value(argv, k, "--max-results")?),
            "--max-scratch-mb" => self.max_scratch_mb = Some(value(argv, k, "--max-scratch-mb")?),
            "--queue-cap" => self.queue_cap = Some(value(argv, k, "--queue-cap")? as usize),
            _ => return Ok(false),
        }
        Ok(true)
    }

    fn governance(&self) -> Governance {
        Governance {
            queue_cap: self.queue_cap,
            deadline: self.deadline_ms.map(Duration::from_millis),
            max_results: self.max_results,
            max_scratch_bytes: self.max_scratch_mb.map(|mb| mb * 1024 * 1024),
        }
    }
}

// ---- query ----

struct QueryArgs {
    corpus: CorpusArgs,
    gov: GovFlags,
    query: String,
    threads: usize,
    explain: bool,
    time: bool,
    profile: bool,
    profile_json: bool,
    analyze: bool,
}

fn parse_query_args(argv: &[String]) -> Result<QueryArgs, String> {
    let mut corpus = CorpusArgs::new();
    let mut gov = GovFlags::default();
    let mut query: Option<String> = None;
    let mut threads = 1usize;
    let mut explain = false;
    let mut time = false;
    let mut profile = false;
    let mut profile_json = false;
    let mut analyze = false;
    let mut k = 0;
    while k < argv.len() {
        if corpus.try_consume(argv, &mut k)? || gov.try_consume(argv, &mut k)? {
            k += 1;
            continue;
        }
        match argv[k].as_str() {
            "--query" | "-q" => {
                k += 1;
                query = Some(argv.get(k).ok_or("--query needs an argument")?.clone());
            }
            "--threads" | "-j" => {
                k += 1;
                let n = argv.get(k).ok_or("--threads needs a count")?;
                threads =
                    n.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("bad --threads '{n}', expected a positive integer")
                    })?;
            }
            "--query-file" => {
                k += 1;
                let path = argv.get(k).ok_or("--query-file needs a path")?;
                query = Some(
                    std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read {path}: {e}"))?,
                );
            }
            "--explain" => explain = true,
            "--time" => time = true,
            "--profile" => profile = true,
            "--profile-json" => profile_json = true,
            "--analyze" => analyze = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
        k += 1;
    }
    let query = query.ok_or("no query given (--query or --query-file)")?;
    Ok(QueryArgs {
        corpus,
        gov,
        query,
        threads,
        explain,
        time,
        profile,
        profile_json,
        analyze,
    })
}

fn cmd_query(argv: &[String]) -> Result<ExitCode, String> {
    let args = parse_query_args(argv)?;
    let load_start = Instant::now();
    let mut engine = args.corpus.build_engine()?;
    engine.set_threads(args.threads);
    // Under `--deadline-ms`/`--max-results`/`--max-scratch-mb` the one
    // query runs on a budget; over-budget it fails with a clean
    // timeout/limit error and exit code 1, never partial output.
    engine.set_budget(args.gov.governance().fresh_budget());
    let load_elapsed = load_start.elapsed();
    if args.explain {
        eprintln!(
            "{}",
            engine.explain(&args.query).map_err(|e| e.to_string())?
        );
    }
    // Profiled runs share the execution: one query, result on stdout,
    // measurements on stderr (stdout stays result-clean for pipelines).
    if args.profile || args.profile_json {
        let start = Instant::now();
        return match engine.run_profiled(&args.query) {
            Ok((result, profile)) => {
                if args.profile {
                    eprint!("{}", profile.render());
                }
                if args.profile_json {
                    eprintln!("{}", profile.to_json());
                }
                if args.time {
                    eprintln!(
                        "# {} item(s) in {:?} (load {:?})",
                        result.len(),
                        start.elapsed(),
                        load_elapsed
                    );
                }
                println!("{}", result.as_xml());
                Ok(ExitCode::SUCCESS)
            }
            Err(e) => {
                eprintln!("standoff-xq: {e}");
                Ok(ExitCode::FAILURE)
            }
        };
    }
    let start = Instant::now();
    match engine.run(&args.query) {
        Ok(result) => {
            if args.time {
                eprintln!(
                    "# {} item(s) in {:?} (load {:?})",
                    result.len(),
                    start.elapsed(),
                    load_elapsed
                );
            }
            println!("{}", result.as_xml());
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => {
            eprintln!("standoff-xq: {e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

// ---- explain ----

/// First-class plan printer: compile the query against the loaded
/// corpus and print the optimized plan to stdout without executing it.
/// (`query --explain` stays as an alias, printing to stderr before the
/// run.)
fn cmd_explain(argv: &[String]) -> Result<ExitCode, String> {
    let args = parse_query_args(argv)?;
    let mut engine = args.corpus.build_engine()?;
    engine.set_threads(args.threads);
    // `--analyze` is explain's *executing* mode: run the query with
    // per-operator profiling and print the plan tree with measured
    // calls/rows/time next to the optimizer's estimates.
    let rendered = if args.analyze {
        engine.explain_analyze(&args.query)
    } else {
        engine.explain(&args.query)
    };
    match rendered {
        Ok(plan) => {
            print!("{plan}");
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => {
            eprintln!("standoff-xq: {e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

// ---- batch ----

fn cmd_batch(argv: &[String]) -> Result<ExitCode, String> {
    let mut corpus = CorpusArgs::new();
    let mut gov = GovFlags::default();
    let mut threads = 1usize;
    let mut time = false;
    let mut profile = false;
    let mut profile_json = false;
    let mut queries_path: Option<String> = None;
    let mut k = 0;
    while k < argv.len() {
        if corpus.try_consume(argv, &mut k)? || gov.try_consume(argv, &mut k)? {
            k += 1;
            continue;
        }
        match argv[k].as_str() {
            "--threads" | "-j" => {
                k += 1;
                let n = argv.get(k).ok_or("--threads needs a count")?;
                threads =
                    n.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("bad --threads '{n}', expected a positive integer")
                    })?;
            }
            "--time" => time = true,
            "--profile" => profile = true,
            "--profile-json" => profile_json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other if !other.starts_with('-') || other == "-" => {
                if queries_path.is_some() {
                    return Err(format!("batch takes exactly one queries file\n{USAGE}"));
                }
                queries_path = Some(other.to_string());
            }
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
        k += 1;
    }
    let queries_path = queries_path.ok_or("batch: no queries file given ('-' for stdin)")?;
    let text = if queries_path == "-" {
        use std::io::Read;
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(&queries_path)
            .map_err(|e| format!("cannot read {queries_path}: {e}"))?
    };
    let queries = split_queries(&text);
    if queries.is_empty() {
        return Err(format!("{queries_path}: no queries found"));
    }

    let load_start = Instant::now();
    let mut engine = corpus.build_engine()?;
    // Worker sessions inherit the thread count for intra-query morsel
    // scans; `threads` is a runtime-only option, so this does not fork
    // the plan-cache epoch.
    engine.set_threads(threads);
    let load_elapsed = load_start.elapsed();
    // Governed batches give every query its own fresh budget; without
    // governance flags this is exactly `Executor::new`.
    let executor = Executor::governed(engine.into_shared(), threads, gov.governance());

    let start = Instant::now();
    // Profiled batches run the same scheduler; results print to stdout
    // as usual, per-query profiles to stderr keyed by submission index.
    let results = if profile || profile_json {
        let profiled = executor.run_batch_profiled(&queries);
        let mut results = Vec::with_capacity(profiled.len());
        for (k, r) in profiled.into_iter().enumerate() {
            match r {
                Ok((result, prof)) => {
                    if profile {
                        eprintln!("# query {k}");
                        eprint!("{}", prof.render());
                    }
                    if profile_json {
                        eprintln!("{}", prof.to_json());
                    }
                    results.push(Ok(result));
                }
                Err(e) => results.push(Err(e)),
            }
        }
        results
    } else {
        executor.run_batch(&queries)
    };
    let elapsed = start.elapsed();

    let mut failures = 0usize;
    for result in &results {
        match result {
            Ok(r) => println!("{}", r.as_xml()),
            Err(e) => {
                failures += 1;
                println!("!! error: {e}");
            }
        }
    }
    if time {
        let cache = executor.cache();
        eprintln!(
            "# {} quer{} in {:?} on {} thread(s) ({} failed; plan cache {} hit(s) / {} miss(es); load {:?})",
            results.len(),
            if results.len() == 1 { "y" } else { "ies" },
            elapsed,
            executor.threads(),
            failures,
            cache.hits(),
            cache.misses(),
            load_elapsed,
        );
    }
    Ok(if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

// ---- stats ----

/// Mount the corpus, optionally run a batch of queries against it, then
/// dump the merged metrics registry as JSON on stdout: the engine's own
/// registry (query/join/executor/plan-cache counters) merged with the
/// process-global one (store mount/materialization timings). Query
/// results are discarded — this subcommand exists to read the meters.
fn cmd_stats(argv: &[String]) -> Result<ExitCode, String> {
    let mut corpus = CorpusArgs::new();
    let mut threads = 1usize;
    let mut queries_path: Option<String> = None;
    let mut k = 0;
    while k < argv.len() {
        if corpus.try_consume(argv, &mut k)? {
            k += 1;
            continue;
        }
        match argv[k].as_str() {
            "--threads" | "-j" => {
                k += 1;
                let n = argv.get(k).ok_or("--threads needs a count")?;
                threads =
                    n.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("bad --threads '{n}', expected a positive integer")
                    })?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other if !other.starts_with('-') || other == "-" => {
                if queries_path.is_some() {
                    return Err(format!("stats takes at most one queries file\n{USAGE}"));
                }
                queries_path = Some(other.to_string());
            }
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
        k += 1;
    }
    let mut engine = corpus.build_engine()?;
    engine.set_threads(threads);
    let executor = Executor::new(engine.into_shared(), threads);
    let mut failures = 0usize;
    if let Some(path) = &queries_path {
        let text = if path == "-" {
            use std::io::Read;
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            buf
        } else {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
        };
        let queries = split_queries(&text);
        for (k, result) in executor.run_batch(&queries).iter().enumerate() {
            if let Err(e) = result {
                failures += 1;
                eprintln!("# query {k} failed: {e}");
            }
        }
    }
    let mut snapshot = executor.metrics_snapshot();
    snapshot.merge(&standoff::core::MetricsRegistry::global().snapshot());
    println!("{}", snapshot.to_json());
    Ok(if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

// ---- serve ----

/// Set by the SIGTERM/SIGINT handler; the serve accept loop polls it
/// and drains when it flips.
static STOP: AtomicBool = AtomicBool::new(false);

/// Install SIGTERM/SIGINT handlers that set [`STOP`]. Raw libc
/// `signal(2)` binding — storing to an atomic is async-signal-safe,
/// and the workspace stays dependency-free.
#[cfg(unix)]
fn install_stop_handlers() {
    extern "C" fn on_signal(_signum: i32) {
        if STOP.swap(true, Ordering::Relaxed) {
            // Second signal: the operator wants out *now*, not after
            // the drain. `_exit` is async-signal-safe (`exit` is not);
            // 130 = 128 + SIGINT, the conventional interrupt status.
            extern "C" {
                fn _exit(status: i32) -> !;
            }
            unsafe { _exit(130) }
        }
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

#[cfg(not(unix))]
fn install_stop_handlers() {}

fn cmd_serve(argv: &[String]) -> Result<ExitCode, String> {
    let mut corpus = CorpusArgs::new();
    let mut gov = GovFlags::default();
    let mut listen = "127.0.0.1:7878".to_string();
    let mut threads = 1usize;
    let mut read_timeout_ms = 10_000u64;
    let mut k = 0;
    while k < argv.len() {
        if corpus.try_consume(argv, &mut k)? || gov.try_consume(argv, &mut k)? {
            k += 1;
            continue;
        }
        match argv[k].as_str() {
            "--listen" => {
                k += 1;
                listen = argv.get(k).ok_or("--listen needs HOST:PORT")?.clone();
            }
            "--threads" | "-j" => {
                k += 1;
                let n = argv.get(k).ok_or("--threads needs a count")?;
                threads =
                    n.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("bad --threads '{n}', expected a positive integer")
                    })?;
            }
            "--read-timeout-ms" => {
                k += 1;
                let n = argv.get(k).ok_or("--read-timeout-ms needs a number")?;
                read_timeout_ms = n
                    .parse::<u64>()
                    .map_err(|_| format!("bad --read-timeout-ms '{n}'"))?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
        k += 1;
    }
    // Hot mount/unmount rebuilds engines from retained snapshots, so
    // serving is snapshot-only: loose documents and delta sidecars
    // have no re-mountable identity.
    if !corpus.loads.is_empty() || !corpus.load_bins.is_empty() || !corpus.deltas.is_empty() {
        return Err("serve supports --store snapshots only (no --load/--load-bin/--delta)".into());
    }
    let mut mounts = Vec::with_capacity(corpus.stores.len());
    for path in &corpus.stores {
        mounts.push(ServeMount::open(path).map_err(|e| e.to_string())?);
    }
    let engine_options = EngineOptions {
        strategy: corpus.strategy.unwrap_or(EngineOptions::default().strategy),
        auto_strategy: corpus.auto_strategy,
        candidate_pushdown: corpus.pushdown,
        threads,
        ..EngineOptions::default()
    };
    let opts = ServeOptions {
        threads,
        engine: engine_options,
        governance: gov.governance(),
        read_timeout: Duration::from_millis(read_timeout_ms.max(1)),
    };
    let server = Server::bind(&listen, mounts, opts).map_err(|e| format!("{listen}: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    install_stop_handlers();
    // The ready line goes to stdout so wrappers can wait for it; all
    // later diagnostics stay on stderr.
    println!("listening on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run_until(&STOP).map_err(|e| e.to_string())?;
    eprintln!("standoff-xq: drained, shutting down");
    Ok(ExitCode::SUCCESS)
}

// ---- call ----

/// Connection-level failures worth a retry: the server side closed or
/// refused the socket, which self-heals once it finishes binding or a
/// fresh accept slot opens.
fn is_transient_connect_error(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
    )
}

/// One-shot protocol client: `standoff-xq call ADDR VERB [ARG...]`.
/// Prints an `ok` reply's payload to stdout (exit 0); an `err` reply's
/// category and message go to stderr (exit 1); connection failures are
/// usage errors (exit 2).
///
/// Transient connection failures (refused/reset/aborted — a server
/// still binding, or drained mid-handshake) retry with capped
/// exponential backoff, `--retries` times (default 3; 0 disables).
/// Other failures (timeouts, protocol errors) surface immediately.
fn cmd_call(argv: &[String]) -> Result<ExitCode, String> {
    if argv.iter().any(|a| a == "--help") {
        println!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    }
    let mut retries = 3u32;
    let mut positional: Vec<&String> = Vec::new();
    let mut k = 0;
    while k < argv.len() {
        match argv[k].as_str() {
            "--retries" => {
                k += 1;
                let v = argv.get(k).ok_or("--retries needs a count")?;
                retries = v
                    .parse::<u32>()
                    .map_err(|_| format!("bad --retries '{v}', expected a non-negative integer"))?;
            }
            _ => positional.push(&argv[k]),
        }
        k += 1;
    }
    let addr = positional
        .first()
        .ok_or_else(|| format!("call needs ADDR\n{USAGE}"))?;
    let verb = positional
        .get(1)
        .ok_or_else(|| format!("call needs a VERB\n{USAGE}"))?;
    let rest = positional[2..]
        .iter()
        .map(|s| s.as_str())
        .collect::<Vec<_>>()
        .join(" ");
    // `query` carries its text in the body; every other verb is a
    // single `verb arg` line.
    let payload = match (verb.as_str(), rest.is_empty()) {
        ("query", true) => return Err("call ... query needs the query text".into()),
        ("query", false) => format!("query\n{rest}"),
        (_, true) => (*verb).clone(),
        (_, false) => format!("{verb} {rest}"),
    };
    let mut attempt = 0;
    let reply = loop {
        match serve::call(addr.as_str(), &payload) {
            Ok(reply) => break reply,
            Err(e) if attempt < retries && is_transient_connect_error(&e) => {
                // 100ms, 200ms, 400ms, ... capped at 2s.
                let backoff = Duration::from_millis(100 << attempt.min(4));
                eprintln!(
                    "standoff-xq: {addr}: {e}; retrying in {backoff:?} ({} left)",
                    retries - attempt,
                );
                std::thread::sleep(backoff);
                attempt += 1;
            }
            Err(e) => return Err(format!("cannot reach {addr}: {e}")),
        }
    };
    if reply.ok {
        // Tolerate a closed pipe (`call ... stats | head`): losing the
        // tail of the payload is the downstream's choice, not a crash.
        use std::io::Write as _;
        let _ = writeln!(std::io::stdout(), "{}", reply.body);
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!(
            "standoff-xq: {}: {}",
            reply.error_category().unwrap_or("error"),
            reply.message()
        );
        Ok(ExitCode::FAILURE)
    }
}

/// Split a batch file into queries: `%%`-only lines separate multi-line
/// queries; a file without any `%%` line holds one query per non-empty,
/// non-`#` line. In `%%` mode, `#` comment lines are stripped only at
/// the *start* of a block — a `#` inside a query body (a multi-line
/// string literal, a `uri#layer` reference split across lines) must
/// survive untouched.
fn split_queries(text: &str) -> Vec<String> {
    if text.lines().any(|l| l.trim() == "%%") {
        text.split('\n')
            .collect::<Vec<_>>()
            .split(|l| l.trim() == "%%")
            .map(|block| {
                let body_start = block
                    .iter()
                    .position(|l| {
                        let l = l.trim();
                        !l.is_empty() && !l.starts_with('#')
                    })
                    .unwrap_or(block.len());
                block[body_start..].join("\n").trim().to_string()
            })
            .filter(|q| !q.is_empty())
            .collect()
    } else {
        text.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(String::from)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::split_queries;

    #[test]
    fn per_line_mode_skips_comments_and_blanks() {
        assert_eq!(
            split_queries("# header\n1 + 1\n\ncount(//x)\n"),
            ["1 + 1", "count(//x)"]
        );
    }

    #[test]
    fn block_mode_splits_on_percent_lines() {
        assert_eq!(
            split_queries("# header\n1 +\n 1\n%%\n\n%%\n2 * 2"),
            ["1 +\n 1", "2 * 2"]
        );
    }

    #[test]
    fn block_mode_keeps_hash_inside_query_bodies() {
        // `corpus#tokens` split across lines must survive; only the
        // leading comment goes.
        assert_eq!(
            split_queries("# corpus queries\ndoc(\"corpus\n#tokens\")//w\n%%\n1"),
            ["doc(\"corpus\n#tokens\")//w", "1"]
        );
    }
}
