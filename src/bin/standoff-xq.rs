//! `standoff-xq` — command-line StandOff XQuery runner.
//!
//! ```text
//! standoff-xq [--load URI=FILE]... [--load-bin FILE] (--query Q | --query-file F)
//!             [--strategy naive|naive-candidates|basic|loop-lifted]
//!             [--no-pushdown] [--explain] [--time]
//! ```
//!
//! `--load-bin` opens a binary store written with
//! `standoff_xml::write_store` (bulk-load once, reopen without parsing).
//!
//! Examples:
//! ```text
//! standoff-xq --load sample.xml=annotations.xml \
//!             --query 'doc("sample.xml")//music/select-wide::shot/@id'
//! standoff-xq --load a.xml=a.xml --query-file q.xq --strategy basic --time
//! ```

use std::process::ExitCode;
use std::time::Instant;

use standoff::core::StandoffStrategy;
use standoff::xquery::Engine;

struct Args {
    loads: Vec<(String, String)>,
    load_bins: Vec<String>,
    query: Option<String>,
    strategy: StandoffStrategy,
    pushdown: bool,
    explain: bool,
    time: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        loads: Vec::new(),
        load_bins: Vec::new(),
        query: None,
        strategy: StandoffStrategy::LoopLiftedMergeJoin,
        pushdown: true,
        explain: false,
        time: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut k = 0;
    while k < argv.len() {
        match argv[k].as_str() {
            "--load" => {
                k += 1;
                let spec = argv.get(k).ok_or("--load needs URI=FILE")?;
                let (uri, path) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("bad --load '{spec}', expected URI=FILE"))?;
                args.loads.push((uri.to_string(), path.to_string()));
            }
            "--load-bin" => {
                k += 1;
                args.load_bins
                    .push(argv.get(k).ok_or("--load-bin needs a path")?.clone());
            }
            "--query" | "-q" => {
                k += 1;
                args.query = Some(argv.get(k).ok_or("--query needs an argument")?.clone());
            }
            "--query-file" => {
                k += 1;
                let path = argv.get(k).ok_or("--query-file needs a path")?;
                args.query = Some(
                    std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read {path}: {e}"))?,
                );
            }
            "--strategy" => {
                k += 1;
                let name = argv.get(k).ok_or("--strategy needs a name")?;
                args.strategy = StandoffStrategy::parse(name)
                    .ok_or_else(|| format!("unknown strategy '{name}'"))?;
            }
            "--no-pushdown" => args.pushdown = false,
            "--explain" => args.explain = true,
            "--time" => args.time = true,
            "--help" | "-h" => {
                println!(
                    "standoff-xq [--load URI=FILE]... (--query Q | --query-file F)\n\
                     \x20           [--strategy naive|naive-candidates|basic|loop-lifted]\n\
                     \x20           [--no-pushdown] [--explain] [--time]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
        k += 1;
    }
    if args.query.is_none() {
        return Err("no query given (--query or --query-file)".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("standoff-xq: {e}");
            return ExitCode::from(2);
        }
    };
    let mut engine = Engine::new();
    engine.set_strategy(args.strategy);
    engine.set_candidate_pushdown(args.pushdown);
    for path in &args.load_bins {
        let file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("standoff-xq: cannot open {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let store = match standoff::xml::read_store(&mut std::io::BufReader::new(file)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("standoff-xq: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        for doc in store.into_docs() {
            // Move documents into the engine, keeping their URIs.
            let doc_uri = doc.uri().map(|u| u.to_string());
            engine.add_document(doc, doc_uri.as_deref());
        }
    }
    for (uri, path) in &args.loads {
        let xml = match std::fs::read_to_string(path) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("standoff-xq: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = engine.load_document(uri, &xml) {
            eprintln!("standoff-xq: {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let query = args.query.unwrap();
    if args.explain {
        match engine.explain(&query) {
            Ok(plan) => eprintln!("{plan}"),
            Err(e) => {
                eprintln!("standoff-xq: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let start = Instant::now();
    match engine.run(&query) {
        Ok(result) => {
            if args.time {
                eprintln!(
                    "# {} item(s) in {:?}",
                    result.len(),
                    start.elapsed()
                );
            }
            println!("{}", result.as_xml());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("standoff-xq: {e}");
            ExitCode::FAILURE
        }
    }
}
