//! `standoff-xq serve` — a long-lived TCP query service over governed
//! [`Executor`]s.
//!
//! The protocol is deliberately dependency-free: length-prefixed UTF-8
//! frames over one TCP connection, many requests per connection.
//!
//! ```text
//! request:   <len>\n<payload>            payload = verb line [+ body]
//! response:  ok <len>\n<payload>
//!            err <len>\n<payload>        payload = category\nmessage
//! ```
//!
//! Verbs (the first line of the request payload):
//!
//! | verb             | body        | reply payload                      |
//! |------------------|-------------|------------------------------------|
//! | `ping`           | —           | `pong`                             |
//! | `query`          | query text  | result serialized as XML           |
//! | `stats`          | —           | metrics snapshot as JSON           |
//! | `mount PATH`     | —           | `mounted URI`                      |
//! | `unmount URI`    | —           | `unmounted URI`                    |
//! | `mounts`         | —           | one `URI\tPATH` line per mount     |
//! | `shutdown`       | —           | `draining` (server then drains)    |
//!
//! Error categories (first line of an `err` payload): `timeout`,
//! `result-limit`, `cancelled`, `overloaded`, `parse`, `static`,
//! `dynamic`, `internal`, `proto`.
//!
//! Governance: every `query` runs through
//! [`Executor::run_governed_with`] — admission control sheds on a full
//! queue, and a per-request [`Budget`] enforces the deadline and
//! result/scratch caps. The server keeps a clone of each in-flight
//! budget so a drain (SIGTERM or the `shutdown` verb) can cancel
//! running queries cooperatively instead of abandoning their threads.
//!
//! Hot `mount`/`unmount` swap in a freshly built engine (snapshot
//! layers are `Arc`-shared, so a remount is pointer plumbing, not an
//! index rebuild) behind an `RwLock<Arc<Executor>>`; requests already
//! holding the old executor finish against the corpus they started
//! with. The compiled-plan cache is shared across swaps — its epoch
//! keys (store generation + options fingerprint) make stale hits
//! impossible — and the metrics of retired executors fold into a
//! baseline snapshot so `stats` stays cumulative across remounts.

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use crate::core::obs::MetricsSnapshot;
use crate::core::Budget;
use crate::store::Snapshot;
use crate::xquery::{Engine, EngineOptions, Executor, Governance, QueryCache, QueryError};

/// Upper bound on one frame's payload — a query, not a bulk upload.
const MAX_PAYLOAD: usize = 4 << 20;
/// Upper bound on the `<len>\n` header line.
const MAX_HEADER: usize = 32;
/// Socket poll granularity: reads time out this often so connection
/// threads notice a drain promptly; it is *not* the client patience.
const POLL: Duration = Duration::from_millis(100);
/// How long the accept loop waits for connections to finish draining.
const DRAIN_WAIT: Duration = Duration::from_secs(5);

/// Server configuration: worker shape, per-request governance, and how
/// much patience slow clients get.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker threads per executor (batch fan-out and intra-query
    /// morsel parallelism alike).
    pub threads: usize,
    /// Compile-time engine options (strategy, pushdown) every mounted
    /// corpus is served under.
    pub engine: EngineOptions,
    /// Per-request resource policy (admission cap, deadline, result and
    /// scratch limits).
    pub governance: Governance,
    /// A client that stalls mid-frame longer than this is disconnected
    /// — one slow writer must not pin a connection thread forever.
    pub read_timeout: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            threads: 1,
            engine: EngineOptions::default(),
            governance: Governance::default(),
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// One mounted snapshot: the path it came from (display only) and the
/// open, `Arc`-shared snapshot itself.
pub struct ServeMount {
    pub path: String,
    pub snapshot: Arc<Snapshot>,
}

impl ServeMount {
    /// Open a snapshot file for serving.
    pub fn open(path: &str) -> Result<ServeMount, ServeError> {
        let snapshot =
            Snapshot::open(path).map_err(|e| ServeError::Mount(format!("{path}: {e}")))?;
        Ok(ServeMount {
            path: path.to_string(),
            snapshot: Arc::new(snapshot),
        })
    }

    /// The store URI this mount registers under.
    pub fn uri(&self) -> &str {
        self.snapshot.uri()
    }
}

/// Anything that can stop a server from starting or keep a corpus from
/// mounting.
#[derive(Debug)]
pub enum ServeError {
    Io(io::Error),
    Mount(String),
    Query(QueryError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "{e}"),
            ServeError::Mount(m) => write!(f, "{m}"),
            ServeError::Query(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<QueryError> for ServeError {
    fn from(e: QueryError) -> Self {
        ServeError::Query(e)
    }
}

/// State shared between the accept loop and every connection thread.
struct Shared {
    /// The currently serving executor; `mount`/`unmount` swap the `Arc`
    /// so in-flight requests keep the corpus they started with.
    exec: RwLock<Arc<Executor>>,
    /// The mounted snapshots an executor rebuild works from. The lock
    /// is held across rebuild-and-swap, serializing mounts.
    mounts: Mutex<Vec<ServeMount>>,
    /// Compiled-plan cache shared across executor swaps.
    cache: Arc<QueryCache>,
    /// Metrics of retired executors, folded in on every swap so `stats`
    /// is cumulative across remounts.
    retired: Mutex<MetricsSnapshot>,
    /// Budgets of in-flight queries, cancelled on drain.
    inflight: Mutex<Vec<(u64, Budget)>>,
    next_request: AtomicU64,
    opts: ServeOptions,
    /// Set by the `shutdown` verb; the accept loop polls it.
    shutdown: AtomicBool,
    /// Live connection threads; drain waits for this to reach zero.
    active_conns: AtomicUsize,
}

impl Shared {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    fn current_exec(&self) -> Arc<Executor> {
        Arc::clone(&self.exec.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Cancel every in-flight query's budget (idempotent).
    fn cancel_inflight(&self) {
        let inflight = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        for (_, budget) in inflight.iter() {
            budget.cancel();
        }
    }
}

/// Build a fresh engine over `mounts` and wrap it in a governed
/// executor sharing `cache`.
fn build_executor(
    mounts: &[ServeMount],
    opts: &ServeOptions,
    cache: Arc<QueryCache>,
) -> Result<Arc<Executor>, QueryError> {
    let mut engine = Engine::with_options(opts.engine.clone());
    for mount in mounts {
        engine.mount_snapshot(&mount.snapshot)?;
    }
    Ok(Arc::new(Executor::governed_with_cache(
        engine.into_shared(),
        opts.threads,
        opts.governance,
        cache,
    )))
}

/// A bound, not-yet-running query server. [`Server::run_until`] blocks
/// the calling thread; [`Server::spawn`] runs it on its own thread and
/// returns a [`ServerHandle`] (the shape tests want).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind `addr` and build the initial executor over `mounts`.
    /// Nothing is accepted until [`Server::run_until`] runs.
    pub fn bind(
        addr: impl ToSocketAddrs,
        mounts: Vec<ServeMount>,
        opts: ServeOptions,
    ) -> Result<Server, ServeError> {
        let cache = Arc::new(QueryCache::new(crate::xquery::exec::DEFAULT_CACHE_CAPACITY));
        let exec = build_executor(&mounts, &opts, Arc::clone(&cache))?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                exec: RwLock::new(exec),
                mounts: Mutex::new(mounts),
                cache,
                retired: Mutex::new(MetricsSnapshot::default()),
                inflight: Mutex::new(Vec::new()),
                next_request: AtomicU64::new(0),
                opts,
                shutdown: AtomicBool::new(false),
                active_conns: AtomicUsize::new(0),
            }),
        })
    }

    /// The address the listener actually bound (port 0 resolves here).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept and serve connections until `stop` is set (the host's
    /// signal handler) or a client sends `shutdown`, then drain:
    /// cancel in-flight queries cooperatively and wait for connection
    /// threads to finish before returning.
    pub fn run_until(&self, stop: &AtomicBool) -> io::Result<()> {
        loop {
            if stop.load(Ordering::Relaxed) || self.shared.draining() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    shared.active_conns.fetch_add(1, Ordering::AcqRel);
                    let spawned = thread::Builder::new()
                        .name("standoff-serve".to_string())
                        .spawn(move || {
                            // The guard decrements even if the handler
                            // panics (a tripped fault point) — a dead
                            // connection must not wedge the drain.
                            let _guard = ConnGuard(&shared);
                            serve_connection(&shared, stream);
                        });
                    if spawned.is_err() {
                        // Thread exhaustion: shed the connection.
                        self.shared.active_conns.fetch_sub(1, Ordering::AcqRel);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.shared.shutdown.store(true, Ordering::Relaxed);
        // Drain: cancel in-flight budgets (re-sweeping each tick — a
        // request may register between sweeps) and wait for connection
        // threads, bounded so a wedged client cannot hold shutdown
        // hostage past DRAIN_WAIT.
        let deadline = Instant::now() + DRAIN_WAIT;
        while self.shared.active_conns.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            self.shared.cancel_inflight();
            thread::sleep(Duration::from_millis(10));
        }
        Ok(())
    }

    /// Run the server on its own thread; the returned handle stops it.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = thread::Builder::new()
            .name("standoff-serve-accept".to_string())
            .spawn(move || self.run_until(&stop_flag))?;
        Ok(ServerHandle { addr, stop, thread })
    }
}

struct ConnGuard<'a>(&'a Shared);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.active_conns.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A running server (see [`Server::spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request a drain and wait for the accept loop to finish.
    pub fn stop(self) -> io::Result<()> {
        self.stop.store(true, Ordering::Relaxed);
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(io::Error::other("server accept thread panicked")),
        }
    }
}

// ---- framing ----

enum FrameError {
    /// The connection is unusable (I/O error, EOF mid-frame).
    Drop,
    /// The client spoke garbage; send this message, then drop.
    Proto(String),
}

/// Read one `<len>\n<payload>` frame. `Ok(None)` means the connection
/// closed cleanly (EOF between frames) or the server is draining.
fn read_frame(
    reader: &mut BufReader<TcpStream>,
    shared: &Shared,
) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header: Vec<u8> = Vec::new();
    let mut frame_started: Option<Instant> = None;
    // Header: bytes up to '\n'. Socket reads wake every POLL so an idle
    // connection notices a drain; a client stalled *mid-frame* past
    // `read_timeout` is disconnected.
    loop {
        if let Some(started) = frame_started {
            if started.elapsed() > shared.opts.read_timeout {
                return Err(FrameError::Proto("slow client: frame stalled".to_string()));
            }
        }
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.draining() {
                    return Ok(None);
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(FrameError::Drop),
        };
        if buf.is_empty() {
            // EOF: clean between frames, torn inside one.
            return if header.is_empty() {
                Ok(None)
            } else {
                Err(FrameError::Drop)
            };
        }
        frame_started.get_or_insert_with(Instant::now);
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            header.extend_from_slice(&buf[..pos]);
            reader.consume(pos + 1);
            break;
        }
        let n = buf.len();
        header.extend_from_slice(buf);
        reader.consume(n);
        if header.len() > MAX_HEADER {
            return Err(FrameError::Proto("oversized frame header".to_string()));
        }
    }
    let text = std::str::from_utf8(&header)
        .map_err(|_| FrameError::Proto("non-UTF-8 frame header".to_string()))?;
    let len: usize = text
        .trim()
        .parse()
        .map_err(|_| FrameError::Proto(format!("bad frame header '{}'", text.trim())))?;
    if len > MAX_PAYLOAD {
        return Err(FrameError::Proto(format!(
            "frame of {len} bytes exceeds the {MAX_PAYLOAD}-byte limit"
        )));
    }
    // Payload: exactly `len` bytes under the same patience rules.
    let started = frame_started.unwrap_or_else(Instant::now);
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        if started.elapsed() > shared.opts.read_timeout {
            return Err(FrameError::Proto("slow client: frame stalled".to_string()));
        }
        match reader.read(&mut payload[filled..]) {
            Ok(0) => return Err(FrameError::Drop),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                if shared.draining() {
                    return Ok(None);
                }
            }
            Err(_) => return Err(FrameError::Drop),
        }
    }
    Ok(Some(payload))
}

/// Write one `ok|err <len>\n<payload>` response as a single TCP write.
fn write_frame(stream: &mut TcpStream, ok: bool, payload: &str) -> io::Result<()> {
    let status = if ok { "ok" } else { "err" };
    let mut frame = Vec::with_capacity(payload.len() + 16);
    frame.extend_from_slice(format!("{status} {}\n", payload.len()).as_bytes());
    frame.extend_from_slice(payload.as_bytes());
    stream.write_all(&frame)
}

/// The error-category token clients dispatch on (first line of an
/// `err` payload).
fn category(e: &QueryError) -> &'static str {
    match e {
        QueryError::Parse { .. } => "parse",
        QueryError::Static(_) => "static",
        QueryError::Dynamic(_) => "dynamic",
        QueryError::Internal(_) => "internal",
        QueryError::Timeout => "timeout",
        QueryError::ResultLimit(_) => "result-limit",
        QueryError::Cancelled => "cancelled",
        QueryError::Overloaded(_) => "overloaded",
    }
}

fn error_payload(e: &QueryError) -> String {
    format!("{}\n{e}", category(e))
}

// ---- connection handling ----

fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let payload = match read_frame(&mut reader, shared) {
            Ok(Some(payload)) => payload,
            Ok(None) => return,
            Err(FrameError::Proto(msg)) => {
                let _ = write_frame(&mut writer, false, &format!("proto\n{msg}"));
                return;
            }
            Err(FrameError::Drop) => return,
        };
        let payload = match String::from_utf8(payload) {
            Ok(s) => s,
            Err(_) => {
                let _ = write_frame(&mut writer, false, "proto\nnon-UTF-8 payload");
                return;
            }
        };
        // A tripped fault point (or any other defect) panics here, not
        // in main: the response degrades to `err internal` and the
        // connection survives.
        let outcome = catch_unwind(AssertUnwindSafe(|| handle_request(shared, &payload)));
        let (ok, body) = outcome
            .unwrap_or_else(|_| (false, "internal\npanic while handling request".to_string()));
        if write_frame(&mut writer, ok, &body).is_err() {
            return;
        }
        if shared.draining() {
            return;
        }
    }
}

fn handle_request(shared: &Arc<Shared>, payload: &str) -> (bool, String) {
    crate::core::fault::point("serve.request");
    let (head, body) = payload.split_once('\n').unwrap_or((payload, ""));
    let head = head.trim();
    let (verb, arg) = match head.split_once(' ') {
        Some((verb, arg)) => (verb, arg.trim()),
        None => (head, ""),
    };
    let exec = shared.current_exec();
    exec.engine().metrics().counter("serve.requests").inc();
    match verb {
        "ping" => (true, "pong".to_string()),
        "query" => {
            // One-line form `query <text>` and body form both work.
            let text = if body.trim().is_empty() { arg } else { body };
            handle_query(shared, &exec, text)
        }
        "stats" => (true, stats_json(shared, &exec)),
        "mount" => handle_mount(shared, arg),
        "unmount" => handle_unmount(shared, arg),
        "mounts" => {
            let mounts = shared.mounts.lock().unwrap_or_else(|e| e.into_inner());
            let lines: Vec<String> = mounts
                .iter()
                .map(|m| format!("{}\t{}", m.uri(), m.path))
                .collect();
            (true, lines.join("\n"))
        }
        "shutdown" => {
            shared.shutdown.store(true, Ordering::Relaxed);
            (true, "draining".to_string())
        }
        other => (false, format!("proto\nunknown verb '{other}'")),
    }
}

fn handle_query(shared: &Arc<Shared>, exec: &Executor, text: &str) -> (bool, String) {
    let text = text.trim();
    if text.is_empty() {
        return (false, "proto\nempty query".to_string());
    }
    if shared.draining() {
        return (
            false,
            "overloaded\nserver is draining; retry elsewhere".to_string(),
        );
    }
    // Always run with a budget — ungoverned servers still need the
    // cancel handle so a drain can stop a long query cooperatively.
    let budget = exec
        .governance()
        .fresh_budget()
        .unwrap_or_else(Budget::cancel_token);
    let id = shared.next_request.fetch_add(1, Ordering::Relaxed);
    shared
        .inflight
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push((id, budget.clone()));
    let result = exec.run_governed_with(text, Some(budget));
    shared
        .inflight
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .retain(|(k, _)| *k != id);
    match result {
        Ok(result) => (true, result.as_xml()),
        Err(e) => (false, error_payload(&e)),
    }
}

/// The cumulative metrics snapshot: retired executors' registries plus
/// the current one (with plan-cache counters), the process-global
/// registry (store durability counters — `store.wal.*`,
/// `store.verify.*`, compaction timings), plus serve gauges.
fn stats_json(shared: &Shared, exec: &Executor) -> String {
    let mut snapshot = shared
        .retired
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    snapshot.merge(&exec.metrics_snapshot());
    snapshot.merge(&crate::core::MetricsRegistry::global().snapshot());
    snapshot.counters.insert(
        "serve.active_connections".to_string(),
        shared.active_conns.load(Ordering::Acquire) as u64,
    );
    let mounts = shared.mounts.lock().unwrap_or_else(|e| e.into_inner());
    snapshot
        .counters
        .insert("serve.mounts".to_string(), mounts.len() as u64);
    snapshot.to_json()
}

/// Rebuild the executor over `mounts` and swap it in, folding the
/// retired executor's registry into the stats baseline. The caller
/// holds the mounts lock, serializing swaps.
fn swap_executor(shared: &Shared, mounts: &[ServeMount]) -> Result<(), QueryError> {
    let fresh = build_executor(mounts, &shared.opts, Arc::clone(&shared.cache))?;
    let old = {
        let mut exec = shared.exec.write().unwrap_or_else(|e| e.into_inner());
        std::mem::replace(&mut *exec, fresh)
    };
    // Only the engine registry is folded in: the plan-cache counters
    // come from the *shared* cache and are re-injected per snapshot by
    // `metrics_snapshot`, so merging them here would double-count.
    shared
        .retired
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .merge(&old.engine().metrics().snapshot());
    Ok(())
}

fn handle_mount(shared: &Shared, path: &str) -> (bool, String) {
    if path.is_empty() {
        return (false, "proto\nmount needs a snapshot path".to_string());
    }
    let mount = match ServeMount::open(path) {
        Ok(mount) => mount,
        Err(e) => return (false, format!("dynamic\n{e}")),
    };
    let uri = mount.uri().to_string();
    let mut mounts = shared.mounts.lock().unwrap_or_else(|e| e.into_inner());
    if mounts.iter().any(|m| m.uri() == uri) {
        return (false, format!("dynamic\nstore '{uri}' is already mounted"));
    }
    mounts.push(mount);
    match swap_executor(shared, &mounts) {
        Ok(()) => (true, format!("mounted {uri}")),
        Err(e) => {
            mounts.pop();
            (false, error_payload(&e))
        }
    }
}

fn handle_unmount(shared: &Shared, uri: &str) -> (bool, String) {
    if uri.is_empty() {
        return (false, "proto\nunmount needs a store URI".to_string());
    }
    let mut mounts = shared.mounts.lock().unwrap_or_else(|e| e.into_inner());
    let Some(pos) = mounts.iter().position(|m| m.uri() == uri) else {
        return (false, format!("dynamic\nno store mounted at '{uri}'"));
    };
    let removed = mounts.remove(pos);
    match swap_executor(shared, &mounts) {
        Ok(()) => (true, format!("unmounted {uri}")),
        Err(e) => {
            mounts.insert(pos, removed);
            (false, error_payload(&e))
        }
    }
}

// ---- client ----

/// A server's reply to one [`call`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reply {
    /// `true` for `ok` frames, `false` for `err` frames.
    pub ok: bool,
    /// The response payload. For `err` frames the first line is the
    /// category token ([`Reply::error_category`]).
    pub body: String,
}

impl Reply {
    /// The category token of an `err` reply (`timeout`, `overloaded`,
    /// …); `None` on `ok` replies.
    pub fn error_category(&self) -> Option<&str> {
        if self.ok {
            None
        } else {
            Some(self.body.lines().next().unwrap_or(""))
        }
    }

    /// The human-readable part of the payload (everything after the
    /// category line on errors, the whole body on success).
    pub fn message(&self) -> &str {
        if self.ok {
            &self.body
        } else {
            self.body.split_once('\n').map(|(_, m)| m).unwrap_or("")
        }
    }
}

/// Send one request payload to a server and read the reply — the
/// whole client side of the protocol.
pub fn call(addr: impl ToSocketAddrs, payload: &str) -> io::Result<Reply> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut frame = Vec::with_capacity(payload.len() + 16);
    frame.extend_from_slice(format!("{}\n", payload.len()).as_bytes());
    frame.extend_from_slice(payload.as_bytes());
    stream.write_all(&frame)?;
    let mut reader = BufReader::new(stream);
    let mut status = String::new();
    reader.read_line(&mut status)?;
    let (ok, len) = parse_response_head(&status)
        .ok_or_else(|| io::Error::other(format!("malformed response head {status:?}")))?;
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    let body =
        String::from_utf8(body).map_err(|_| io::Error::other("non-UTF-8 response payload"))?;
    Ok(Reply { ok, body })
}

/// Parse an `ok <len>` / `err <len>` response head.
fn parse_response_head(line: &str) -> Option<(bool, usize)> {
    let (status, len) = line.trim().split_once(' ')?;
    let ok = match status {
        "ok" => true,
        "err" => false,
        _ => return None,
    };
    let len: usize = len.parse().ok()?;
    if len > MAX_PAYLOAD {
        return None;
    }
    Some((ok, len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_head_round_trip() {
        assert_eq!(parse_response_head("ok 12\n"), Some((true, 12)));
        assert_eq!(parse_response_head("err 0\n"), Some((false, 0)));
        assert_eq!(parse_response_head("nope 3\n"), None);
        assert_eq!(parse_response_head("ok twelve\n"), None);
        assert_eq!(parse_response_head("ok\n"), None);
    }

    #[test]
    fn reply_error_accessors() {
        let reply = Reply {
            ok: false,
            body: "timeout\nquery deadline exceeded".to_string(),
        };
        assert_eq!(reply.error_category(), Some("timeout"));
        assert_eq!(reply.message(), "query deadline exceeded");
        let reply = Reply {
            ok: true,
            body: "pong".to_string(),
        };
        assert_eq!(reply.error_category(), None);
        assert_eq!(reply.message(), "pong");
    }

    #[test]
    fn query_error_categories_are_stable() {
        assert_eq!(category(&QueryError::Timeout), "timeout");
        assert_eq!(category(&QueryError::Cancelled), "cancelled");
        assert_eq!(
            category(&QueryError::ResultLimit("x".into())),
            "result-limit"
        );
        assert_eq!(category(&QueryError::Overloaded("x".into())), "overloaded");
        assert_eq!(category(&QueryError::internal("x")), "internal");
    }
}
