//! # standoff
//!
//! Umbrella crate for the Rust reproduction of *Efficient XQuery Support
//! for Stand-Off Annotation* (Alink, Bhoedjang, de Vries, Boncz —
//! XIME-P/SIGMOD 2006).
//!
//! Stand-off annotations are XML elements that describe *regions* of an
//! external BLOB (a video stream, a text corpus, a disk image) via
//! `[start,end]` positions instead of enclosing the annotated content.
//! Multiple overlapping annotation hierarchies can then coexist over the
//! same BLOB. This workspace implements:
//!
//! * the paper's four **StandOff joins** — `select-narrow`, `select-wide`,
//!   `reject-narrow`, `reject-wide` — as XPath axis steps,
//! * the **region index** and the **Basic** and **Loop-Lifted StandOff
//!   MergeJoin** algorithms that evaluate them in (near-)linear time,
//! * the substrate they need: a shredded XML store (pre/size/level
//!   encoding), a loop-lifted XQuery engine with Staircase Join, and the
//!   XMark benchmark generator with the paper's StandOff-ification.
//!
//! ## Quick example
//!
//! ```
//! use standoff::prelude::*;
//!
//! let mut engine = Engine::new();
//! engine.load_document("sample.xml", r#"<sample>
//!   <video>
//!     <shot id="Intro" start="0" end="8"/>
//!     <shot id="Interview" start="8" end="64"/>
//!     <shot id="Outro" start="64" end="94"/>
//!   </video>
//!   <audio>
//!     <music artist="U2" start="0" end="31"/>
//!     <music artist="Bach" start="52" end="94"/>
//!   </audio>
//! </sample>"#).unwrap();
//!
//! // All shots that overlap U2 music (paper §3.1, second table row).
//! let result = engine.run(
//!     r#"doc("sample.xml")//music[@artist = "U2"]/select-wide::shot/@id"#,
//! ).unwrap();
//! assert_eq!(result.as_strings(), ["Intro", "Interview"]);
//! ```
//!
//! See the crate-level docs of the member crates for details:
//! [`standoff_core`] (joins and region index), [`standoff_xquery`]
//! (query engine), [`standoff_xml`] (storage), [`standoff_algebra`]
//! (loop-lifted tables and Staircase Join), [`standoff_xmark`]
//! (benchmark workload).

pub use standoff_algebra as algebra;
pub use standoff_core as core;
pub use standoff_store as store;
pub use standoff_xmark as xmark;
pub use standoff_xml as xml;
pub use standoff_xquery as xquery;

/// Fixture documents used by examples, tests and the paper-table harness.
pub mod fixtures;

/// The `standoff-xq serve` TCP query service: length-prefixed frames,
/// governed executors, hot mount/unmount, graceful drain.
pub mod serve;

/// Common imports for applications.
pub mod prelude {
    pub use standoff_core::{
        Area, Region, RegionIndex, StandoffAxis, StandoffConfig, StandoffStrategy,
    };
    pub use standoff_store::{Layer, LayerSet};
    pub use standoff_xml::{Document, DocumentBuilder, NodeRef, Store};
    pub use standoff_xquery::{Engine, QueryResult};
}
