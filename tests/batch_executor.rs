//! Batch executor acceptance over the XMark fixture.
//!
//! * `--threads 4` must produce byte-identical results to `--threads 1`
//!   (submission order, serialized forms, error placement) — both at
//!   the library level and through the `standoff-xq batch` CLI.
//! * Mounted snapshot stores work through the shared engine: every
//!   worker session reuses the snapshot's prebuilt region indexes.

use std::path::PathBuf;
use std::process::{Command, Output};

use standoff::core::StandoffConfig;
use standoff::xmark::queries::XmarkQuery;
use standoff::xmark::{generate, standoffify, XmarkConfig};
use standoff::xquery::{Engine, Executor};

const SO_URI: &str = "xmark-standoff.xml";

fn xmark_shared() -> standoff::xquery::SharedEngine {
    let src = generate(&XmarkConfig::with_scale(0.002));
    let so = standoffify(&src, 7);
    let mut engine = Engine::new();
    engine.add_document(src, Some("xmark.xml"));
    let so_id = engine.add_document(so.doc, Some(SO_URI));
    engine
        .prebuild_region_index(so_id, &StandoffConfig::default())
        .unwrap();
    engine.into_shared()
}

/// A ≥100-query batch mixing the paper's XMark StandOff queries with
/// constructors, FLWORs, and a sprinkling of failures.
fn xmark_batch() -> Vec<String> {
    let mut queries = Vec::new();
    for k in 0..108 {
        queries.push(match k % 6 {
            0 => XmarkQuery::Q1.standoff(SO_URI),
            1 => XmarkQuery::Q2.standoff(SO_URI),
            2 => XmarkQuery::Q6.standoff(SO_URI),
            3 => format!(r#"<batch k="{k}">{{count(doc("{SO_URI}")//item)}}</batch>"#),
            4 => format!(
                r#"for $p in doc("{SO_URI}")//person[position() <= {}]
                   order by $p/@id descending return $p/@id"#,
                (k % 7) + 1
            ),
            _ => format!("this-query-is-broken({k}"),
        });
    }
    queries
}

#[test]
fn four_threads_match_one_thread_bytewise() {
    let shared = xmark_shared();
    let queries = xmark_batch();
    assert!(queries.len() >= 100);

    let one = Executor::new(shared.clone(), 1).run_batch(&queries);
    let four = Executor::new(shared, 4).run_batch(&queries);
    assert_eq!(one.len(), four.len());
    for (k, (a, b)) in one.iter().zip(&four).enumerate() {
        match (a, b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.as_xml(), y.as_xml(), "query {k} diverged");
                assert_eq!(x.as_strings(), y.as_strings(), "query {k} diverged");
            }
            (Err(x), Err(y)) => assert_eq!(x, y, "query {k} errors diverged"),
            _ => panic!("query {k}: Ok/Err status diverged between thread counts"),
        }
    }
    // The deliberate failures landed where they were submitted.
    for (k, r) in one.iter().enumerate() {
        assert_eq!(r.is_err(), k % 6 == 5, "query {k} status misplaced");
    }
}

// ---- CLI ----

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_standoff-xq"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("standoff-xq-batch-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(cmd: &mut Command, what: &str) -> Output {
    let out = cmd.output().unwrap();
    assert!(
        out.status.success(),
        "{what} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

#[test]
fn cli_batch_output_identical_across_thread_counts() {
    let dir = tmp_dir("threads");
    let base = dir.join("base.xml");
    std::fs::write(&base, "<text>Alice met Bob near the old mill</text>").unwrap();
    let tokens = dir.join("tokens.xml");
    std::fs::write(
        &tokens,
        r#"<tokens>
             <w word="Alice" start="0" end="4"/>
             <w word="met" start="6" end="8"/>
             <w word="Bob" start="10" end="12"/>
             <w word="mill" start="27" end="30"/>
           </tokens>"#,
    )
    .unwrap();
    let entities = dir.join("entities.xml");
    std::fs::write(
        &entities,
        r#"<entities>
             <person name="Alice" start="0" end="4"/>
             <person name="Bob" start="10" end="12"/>
             <place name="mill" start="23" end="30"/>
           </entities>"#,
    )
    .unwrap();
    let snap = dir.join("corpus.snap");
    run_ok(
        bin().args([
            "index",
            base.to_str().unwrap(),
            "-o",
            snap.to_str().unwrap(),
            "--uri",
            "corpus",
            "--layer",
            &format!("tokens={}", tokens.display()),
            "--layer",
            &format!("entities={}", entities.display()),
        ]),
        "index",
    );

    // Multi-line queries separated by %% lines, one of them failing.
    let queries = dir.join("queries.txt");
    std::fs::write(
        &queries,
        r#"count(doc("corpus#tokens")//w)
%%
for $p in doc("corpus#entities")//person
order by $p/@start
return $p/select-narrow::w/@word
%%
this one does not parse ((
%%
doc("corpus#entities")//place/select-wide::w/@word
"#,
    )
    .unwrap();

    let run = |threads: &str| {
        bin()
            .args([
                "batch",
                "--store",
                snap.to_str().unwrap(),
                "--threads",
                threads,
                queries.to_str().unwrap(),
            ])
            .output()
            .unwrap()
    };
    let one = run("1");
    let four = run("4");
    // One query fails → exit code 1, but the pool survives and the
    // remaining results print in submission order.
    assert_eq!(one.status.code(), Some(1));
    assert_eq!(four.status.code(), Some(1));
    assert_eq!(one.stdout, four.stdout, "stdout differs across --threads");
    let text = String::from_utf8_lossy(&one.stdout);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(
        lines,
        [
            "4",
            r#"word="Alice" word="Bob""#,
            "!! error: syntax error at line 1, column 6: unexpected trailing input: Name(\"one\")",
            r#"word="mill""#,
        ]
    );
}

#[test]
fn cli_batch_reports_missing_inputs_without_panicking() {
    let out = bin()
        .args(["batch", "/no/such/queries.txt"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    let dir = tmp_dir("missing");
    let queries = dir.join("q.txt");
    std::fs::write(&queries, "1 + 1\n").unwrap();
    let out = bin()
        .args([
            "batch",
            "--store",
            "/no/such/snapshot.snap",
            queries.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(!String::from_utf8_lossy(&out.stderr).is_empty());
}
