//! Crash-recovery torn-write harness: kill the process (simulated via
//! armed fault points and byte-level file surgery) at every seam of
//! the durability path and prove the invariant the README states —
//! recovery yields **exactly the committed prefix** (byte-identical
//! query results after remount) or a clean categorized error. Never a
//! panic, never silent loss of a committed batch, never a resurrected
//! uncommitted one.
//!
//! Fault points are process-global, so every test that arms one takes
//! [`crash_lock`] (shared pattern with `tests/chaos.rs`).

use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, OnceLock};

use standoff::core::fault::{self, FaultAction};
use standoff::core::StandoffConfig;
use standoff::store::{
    checkpoint_marker, checkpointed_seq, ops_to_text, parse_ops, save_snapshot, wal_path, DeltaSet,
    DeltaWal, LayerSet, Snapshot, StoreError,
};
use standoff::xml::parse_document;
use standoff::xquery::{Engine, EngineOptions, WritableEngine};

fn crash_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    fault::clear_all();
    guard
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("standoff-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const URI: &str = "mem://crash";

fn corpus() -> LayerSet {
    let base = parse_document("<text>Alice met Bob in Aachen</text>").unwrap();
    let mut set = LayerSet::build(URI, base, StandoffConfig::default()).unwrap();
    let tokens = parse_document(
        r#"<tokens>
             <w start="0" end="4"/>
             <w start="6" end="8"/>
             <w start="10" end="12"/>
             <w start="14" end="15"/>
             <w start="17" end="22"/>
           </tokens>"#,
    )
    .unwrap();
    set.add_layer("tokens", tokens, StandoffConfig::default())
        .unwrap();
    set
}

/// The batches a writer commits, in order, as sidecar ops text.
const BATCHES: [&str; 3] = [
    "insert tokens ner 0 4 class=PER\n",
    "insert tokens ner 10 12 class=PER\nretract tokens w 6 8\n",
    "insert tokens ner 17 22 class=LOC\n",
];

const PROBES: [&str; 3] = [
    r#"count(layer("mem://crash", "tokens")//w)"#,
    r#"count(layer("mem://crash", "tokens")//ner)"#,
    r#"layer("mem://crash", "tokens")//ner/@class"#,
];

/// Reference answers after committing `BATCHES[..n]`.
fn answers_after(n: usize) -> Vec<String> {
    let set = corpus();
    let mut delta = DeltaSet::new();
    for batch in &BATCHES[..n] {
        delta.apply_all(parse_ops(batch).unwrap(), &set).unwrap();
    }
    let mut engine = Engine::new();
    engine.mount_overlay(set, &delta).unwrap();
    PROBES
        .iter()
        .map(|q| engine.run(q).unwrap().as_xml())
        .collect()
}

/// Recover sidecar + WAL the way `standoff-xq` readers do and answer
/// the probes.
fn recovered_answers(set: &LayerSet, sidecar: &Path) -> Result<Vec<String>, String> {
    let mut delta = DeltaSet::new();
    let mut checkpointed = 0;
    if sidecar.exists() {
        let text = std::fs::read_to_string(sidecar).map_err(|e| e.to_string())?;
        checkpointed = checkpointed_seq(&text);
        delta
            .apply_all(parse_ops(&text).map_err(|e| e.to_string())?, set)
            .map_err(|e| e.to_string())?;
    }
    let scan = DeltaWal::scan(&wal_path(sidecar)).map_err(|e| e.to_string())?;
    for record in scan.records.iter().filter(|r| r.seq > checkpointed) {
        delta
            .apply_all(parse_ops(&record.ops).map_err(|e| e.to_string())?, set)
            .map_err(|e| e.to_string())?;
    }
    let mut engine = Engine::new();
    engine
        .mount_overlay(set.clone(), &delta)
        .map_err(|e| e.to_string())?;
    Ok(PROBES
        .iter()
        .map(|q| engine.run(q).unwrap().as_xml())
        .collect())
}

/// Truncate the journal at every byte offset: recovery must yield the
/// answers of exactly the batches whose append frames survived whole —
/// byte-identical query results, never an error, never a partial batch.
#[test]
fn wal_truncation_sweep_recovers_exactly_the_committed_prefix() {
    let _guard = crash_lock();
    let dir = temp_dir("wal-sweep");
    let sidecar = dir.join("corpus.delta");
    let wal_file = wal_path(&sidecar);
    let set = corpus();

    let (mut wal, _) = DeltaWal::open(&wal_file).unwrap();
    let mut frame_ends = vec![std::fs::metadata(&wal_file).unwrap().len()];
    for batch in &BATCHES {
        wal.append(batch).unwrap();
        frame_ends.push(std::fs::metadata(&wal_file).unwrap().len());
    }
    drop(wal);
    let full = std::fs::read(&wal_file).unwrap();
    let expected: Vec<Vec<String>> = (0..=BATCHES.len()).map(answers_after).collect();

    for cut in 0..=full.len() {
        std::fs::write(&wal_file, &full[..cut]).unwrap();
        let committed = frame_ends
            .iter()
            .filter(|&&e| e <= cut as u64)
            .count()
            .saturating_sub(1);
        let got = recovered_answers(&set, &sidecar)
            .unwrap_or_else(|e| panic!("cut at {cut}: recovery failed: {e}"));
        assert_eq!(
            got, expected[committed],
            "cut at {cut}: results diverge from the {committed}-batch prefix"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Single-byte flips inside committed journal records must surface as
/// categorized corruption through the reader path — not as silently
/// different query results.
#[test]
fn wal_bit_flip_is_categorized_never_silent() {
    let _guard = crash_lock();
    let dir = temp_dir("wal-flip");
    let sidecar = dir.join("corpus.delta");
    let wal_file = wal_path(&sidecar);
    let set = corpus();
    let (mut wal, _) = DeltaWal::open(&wal_file).unwrap();
    for batch in &BATCHES {
        wal.append(batch).unwrap();
    }
    drop(wal);
    let full = std::fs::read(&wal_file).unwrap();
    let committed = answers_after(BATCHES.len());
    // Every byte past the 8-byte file header participates in a record.
    for at in 8..full.len() {
        let mut bytes = full.clone();
        bytes[at] ^= 0x01;
        std::fs::write(&wal_file, &bytes).unwrap();
        match recovered_answers(&set, &sidecar) {
            Err(_) => {}
            Ok(got) => assert_eq!(
                got, committed,
                "flip at {at}: accepted with *different* results — silent corruption"
            ),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A writer crash *after* the WAL append fsync but *before* the
/// visibility swap: the batch reported nothing to the caller, but it
/// is durable — recovery must replay it (this is the "committed
/// batches survive SIGKILL" contract of `WritableEngine::apply`).
#[test]
fn crash_between_journal_and_swap_preserves_the_batch() {
    let _guard = crash_lock();
    let dir = temp_dir("mid-apply");
    let sidecar = dir.join("corpus.delta");
    let set = corpus();

    let mut w = WritableEngine::mount(set.clone(), EngineOptions::default()).unwrap();
    let (wal, _) = DeltaWal::open(&wal_path(&sidecar)).unwrap();
    w.set_wal(Some(wal));
    w.apply(parse_ops(BATCHES[0]).unwrap()).unwrap();

    fault::inject_times("engine.apply.before_swap", FaultAction::Panic, 1);
    let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        w.apply(parse_ops(BATCHES[1]).unwrap())
    }));
    fault::clear_all();
    assert!(crashed.is_err(), "armed fault point must fire");
    drop(w);

    // The crashed writer never swapped batch 2 in — but it journaled
    // it first, so recovery sees both batches.
    let got = recovered_answers(&set, &sidecar).unwrap();
    assert_eq!(got, answers_after(2));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A writer crash *inside* the append (before the fsync): the batch
/// was never committed, recovery must yield only the prior prefix.
#[test]
fn crash_inside_append_loses_only_the_uncommitted_batch() {
    let _guard = crash_lock();
    let dir = temp_dir("mid-append");
    let sidecar = dir.join("corpus.delta");
    let set = corpus();

    let (mut wal, _) = DeltaWal::open(&wal_path(&sidecar)).unwrap();
    wal.append(BATCHES[0]).unwrap();
    fault::inject_times("store.wal.append.start", FaultAction::Panic, 1);
    let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| wal.append(BATCHES[1])));
    fault::clear_all();
    assert!(crashed.is_err());
    drop(wal);

    let got = recovered_answers(&set, &sidecar).unwrap();
    assert_eq!(got, answers_after(1), "uncommitted batch must not surface");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash between the checkpoint rewrite landing and the journal
/// truncation: the checkpoint's high-water mark keeps the surviving
/// journal records from double-applying.
#[test]
fn crash_between_checkpoint_and_truncation_does_not_double_apply() {
    let _guard = crash_lock();
    let dir = temp_dir("checkpoint-window");
    let sidecar = dir.join("corpus.delta");
    let set = corpus();

    let (mut wal, _) = DeltaWal::open(&wal_path(&sidecar)).unwrap();
    let mut delta = DeltaSet::new();
    for batch in &BATCHES[..2] {
        delta.apply_all(parse_ops(batch).unwrap(), &set).unwrap();
        wal.append(batch).unwrap();
    }
    // Checkpoint lands (marker stamped), truncation never happens —
    // the crash window. Both journal records survive on disk.
    let mut text = checkpoint_marker(wal.last_seq());
    text.push_str(&ops_to_text(&delta.to_ops()));
    std::fs::write(&sidecar, &text).unwrap();
    drop(wal);

    let got = recovered_answers(&set, &sidecar).unwrap();
    assert_eq!(got, answers_after(2), "marker must suppress the replay");

    // And a post-crash writer sequences above the mark, so its fresh
    // batch replays while the folded ones stay suppressed.
    let (mut wal, _) = DeltaWal::open(&wal_path(&sidecar)).unwrap();
    wal.ensure_seq_above(checkpointed_seq(&text));
    wal.append(BATCHES[2]).unwrap();
    drop(wal);
    let got = recovered_answers(&set, &sidecar).unwrap();
    assert_eq!(got, answers_after(3));
    let _ = std::fs::remove_dir_all(&dir);
}

/// `save_snapshot` dies before the rename: the previous snapshot must
/// still mount and verify, byte-for-byte untouched.
#[test]
fn snapshot_rewrite_crash_leaves_the_old_snapshot_intact() {
    let _guard = crash_lock();
    let dir = temp_dir("snap-replace");
    let path = dir.join("corpus.snap");
    let set = corpus();
    save_snapshot(&set, &path).unwrap();
    let before = std::fs::read(&path).unwrap();

    let bigger = {
        let mut delta = DeltaSet::new();
        delta
            .apply_all(parse_ops(BATCHES[0]).unwrap(), &set)
            .unwrap();
        standoff::store::compact(&set, &delta).unwrap()
    };
    for point in ["store.atomic.before_sync", "store.atomic.before_rename"] {
        fault::inject_times(point, FaultAction::Panic, 1);
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            save_snapshot(&bigger, &path)
        }));
        fault::clear_all();
        assert!(crashed.is_err(), "{point} must fire");
        assert_eq!(
            std::fs::read(&path).unwrap(),
            before,
            "{point}: old snapshot bytes changed"
        );
        let (_snap, report) = Snapshot::open_verified(&path).unwrap();
        assert!(report.checksummed);
    }
    // Without a fault the replace goes through and verifies.
    save_snapshot(&bigger, &path).unwrap();
    let (snapshot, _report) = Snapshot::open_verified(&path).unwrap();
    assert_eq!(
        snapshot
            .to_layer_set()
            .unwrap()
            .layer("tokens")
            .unwrap()
            .annotation_count(),
        6
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The committed, never-applied tail of a torn WAL stays invisible
/// even when the *same* delta is later re-journaled: sequence numbers
/// in a file are strictly increasing, so a forged duplicate seq is
/// categorized corruption.
#[test]
fn duplicate_sequence_numbers_are_corruption() {
    let _guard = crash_lock();
    let dir = temp_dir("dup-seq");
    let wal_file = dir.join("corpus.delta.wal");
    let (mut wal, _) = DeltaWal::open(&wal_file).unwrap();
    wal.append(BATCHES[0]).unwrap();
    drop(wal);
    // Forge: duplicate the (valid) first record after itself.
    let bytes = std::fs::read(&wal_file).unwrap();
    let mut forged = bytes.clone();
    forged.extend_from_slice(&bytes[8..]);
    std::fs::write(&wal_file, &forged).unwrap();
    match DeltaWal::scan(&wal_file) {
        Err(StoreError::Corrupt { detail, .. }) => {
            assert!(detail.contains("non-monotonic"), "detail: {detail}")
        }
        other => panic!("forged duplicate seq accepted: {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// End-to-end: a v4 snapshot with a flipped payload byte fails at
/// layer access with a categorized error, and `verify` (the library
/// call the CLI subcommand wraps) reports it eagerly.
#[test]
fn flipped_snapshot_payload_fails_verification_not_queries() {
    let _guard = crash_lock();
    let dir = temp_dir("snap-flip");
    let path = dir.join("corpus.snap");
    save_snapshot(&corpus(), &path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    // Flip one byte deep in the payload region (past header + table).
    let at = bytes.len() - 9;
    bytes[at] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();
    match Snapshot::open_verified(&path) {
        Err(StoreError::Corrupt { .. }) => {}
        Err(other) => panic!("wrong category: {other}"),
        Ok(_) => panic!("flipped payload verified clean"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
