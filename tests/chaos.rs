//! Chaos suite: armed fault points prove the service **degrades
//! gracefully instead of wedging** — a panicking worker becomes a
//! clean error and the pool survives, a slow client is disconnected
//! without pinning a thread, a mid-request unmount never tears the
//! corpus out from under an in-flight query, a full queue sheds, and
//! a drain cancels in-flight work cooperatively.
//!
//! Fault points are process-global, so every test takes [`chaos_lock`]
//! and clears the registry on entry — tests stay independent even
//! though the test harness runs them on concurrent threads.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use standoff::core::fault::{self, FaultAction};
use standoff::core::StandoffConfig;
use standoff::serve::{call, Reply, ServeMount, ServeOptions, Server, ServerHandle};
use standoff::store::{write_snapshot, LayerSet, Snapshot};
use standoff::xquery::{Engine, Executor, Governance, QueryError};

fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    fault::clear_all();
    guard
}

/// A small two-layer corpus, assembled in memory.
fn corpus_set(uri: &str) -> LayerSet {
    let base = standoff::xml::parse_document("<text>hello stand-off world</text>").unwrap();
    let tokens = standoff::xml::parse_document(
        r#"<tokens><w start="0" end="4"/><w start="6" end="14"/><w start="16" end="20"/></tokens>"#,
    )
    .unwrap();
    let mut set = LayerSet::build(uri, base, StandoffConfig::default()).unwrap();
    set.add_layer("tokens", tokens, StandoffConfig::default())
        .unwrap();
    set
}

fn corpus_mount(uri: &str) -> ServeMount {
    let mut bytes = Vec::new();
    write_snapshot(&corpus_set(uri), &mut bytes).unwrap();
    ServeMount {
        path: "<mem>".to_string(),
        snapshot: std::sync::Arc::new(Snapshot::from_bytes(bytes).unwrap()),
    }
}

fn spawn_server(opts: ServeOptions) -> ServerHandle {
    Server::bind("127.0.0.1:0", vec![corpus_mount("corpus")], opts)
        .unwrap()
        .spawn()
        .unwrap()
}

fn query(addr: SocketAddr, text: &str) -> Reply {
    call(addr, &format!("query\n{text}")).expect("server reachable")
}

const COUNT_TOKENS: &str = r#"count(doc("corpus#tokens")//w)"#;

// ---- pool worker panics ----

#[test]
fn injected_pool_worker_panic_fails_batch_cleanly_and_pool_recovers() {
    let _guard = chaos_lock();
    let mut engine = Engine::new();
    engine
        .load_document(
            "d.xml",
            r#"<a><w start="0" end="4"/><w start="6" end="9"/></a>"#,
        )
        .unwrap();
    let exec = Executor::new(engine.into_shared(), 2);
    let queries = vec!["1 + 1"; 6];

    fault::inject_times("par.worker", FaultAction::Panic, 1);
    let results = exec.run_batch(&queries);
    assert_eq!(results.len(), queries.len(), "batch must stay complete");
    // A panicked pool worker means the batch cannot vouch for any slot:
    // every query reports the internal error, none is silently lost.
    for result in &results {
        match result {
            Err(QueryError::Internal(msg)) => {
                assert!(msg.contains("injected fault"), "unexpected payload: {msg}")
            }
            other => panic!("expected Internal from a panicked pool, got {other:?}"),
        }
    }

    // The pool recovers: the same executor serves the retry.
    fault::clear_all();
    let results = exec.run_batch(&queries);
    for result in results {
        assert_eq!(result.unwrap().as_strings(), ["2"]);
    }
}

#[test]
fn injected_morsel_panic_fails_only_that_query() {
    let _guard = chaos_lock();
    // Dense enough (10k entries > 2 × MORSEL_ENTRIES) that the scan
    // splits into morsels at threads = 4.
    let mut xml = String::from("<d>");
    for k in 0..4 {
        let lo = k * 5_000;
        xml.push_str(&format!("<big start=\"{}\" end=\"{}\"/>", lo, lo + 4_999));
    }
    for k in 0..10_000 {
        let lo = k * 2;
        xml.push_str(&format!("<w start=\"{}\" end=\"{}\"/>", lo, lo + 1));
    }
    xml.push_str("</d>");
    let mut engine = Engine::new();
    engine.load_document("dense.xml", &xml).unwrap();
    engine.set_threads(4);
    let exec = Executor::new(engine.into_shared(), 1);

    let join = r#"count(doc("dense.xml")//big/select-narrow::w)"#;
    let baseline = exec.run_batch(&[join]);
    assert_eq!(baseline[0].as_ref().unwrap().as_strings(), ["10000"]);

    // One morsel worker panics mid-scan: that query degrades to an
    // internal error; the next one (same executor, same session pool)
    // answers correctly again.
    fault::inject_times("index.morsel", FaultAction::Panic, 1);
    let results = exec.run_batch(&[join, join]);
    fault::clear_all();
    let failed = results.iter().filter(|r| r.is_err()).count();
    assert_eq!(failed, 1, "exactly the faulted query fails: {results:?}");
    let ok: Vec<_> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
    assert_eq!(ok[0].as_strings(), ["10000"]);
}

// ---- server chaos ----

#[test]
fn injected_request_panic_degrades_to_internal_and_connection_survives() {
    let _guard = chaos_lock();
    let server = spawn_server(ServeOptions::default());
    let addr = server.addr();

    fault::inject_times("serve.request", FaultAction::Panic, 1);
    let reply = query(addr, COUNT_TOKENS);
    assert!(!reply.ok);
    assert_eq!(reply.error_category(), Some("internal"));

    // Same server, next request: fully responsive.
    let reply = query(addr, COUNT_TOKENS);
    assert!(reply.ok, "server wedged after panic: {reply:?}");
    assert_eq!(reply.body, "3");
    server.stop().unwrap();
}

#[test]
fn slow_client_is_disconnected_without_pinning_the_server() {
    let _guard = chaos_lock();
    let server = spawn_server(ServeOptions {
        read_timeout: Duration::from_millis(300),
        ..ServeOptions::default()
    });
    let addr = server.addr();

    // A client that promises 100 bytes and stalls after 3.
    let mut slow = TcpStream::connect(addr).unwrap();
    slow.write_all(b"100\nabc").unwrap();

    // While it stalls, other clients are served normally.
    let reply = query(addr, COUNT_TOKENS);
    assert!(reply.ok && reply.body == "3");

    // The stalled connection is cut with a proto error, not held open.
    slow.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut response = String::new();
    slow.read_to_string(&mut response).unwrap();
    assert!(
        response.starts_with("err ") && response.contains("slow client"),
        "expected a slow-client disconnect, got {response:?}"
    );
    server.stop().unwrap();
}

#[test]
fn full_queue_sheds_and_recovers_after_the_spike() {
    let _guard = chaos_lock();
    let server = spawn_server(ServeOptions {
        governance: Governance {
            queue_cap: Some(1),
            ..Governance::default()
        },
        ..ServeOptions::default()
    });
    let addr = server.addr();

    // Hold the only admission slot open for 800ms (the delay fires
    // post-admission, inside the executor).
    fault::inject_times(
        "executor.query",
        FaultAction::Delay(Duration::from_millis(800)),
        1,
    );
    let slow = std::thread::spawn(move || query(addr, COUNT_TOKENS));
    std::thread::sleep(Duration::from_millis(200));

    let shed = query(addr, COUNT_TOKENS);
    assert!(!shed.ok, "second request must be shed: {shed:?}");
    assert_eq!(shed.error_category(), Some("overloaded"));

    // The delayed request itself completes fine...
    let slow = slow.join().unwrap();
    assert!(slow.ok && slow.body == "3", "delayed request: {slow:?}");
    // ...the queue empties, and the next request is admitted again.
    let after = query(addr, COUNT_TOKENS);
    assert!(after.ok && after.body == "3");
    // The shed is visible in stats.
    let stats = call(addr, "stats").unwrap();
    assert!(stats.ok);
    assert!(
        stats.body.contains("\"executor.sheds\": 1"),
        "shed missing from stats: {}",
        stats.body
    );
    server.stop().unwrap();
}

#[test]
fn mid_request_unmount_never_tears_the_corpus_from_an_inflight_query() {
    let _guard = chaos_lock();
    let server = spawn_server(ServeOptions::default());
    let addr = server.addr();

    // Park a query inside the executor, then swap the corpus out from
    // under it.
    fault::inject_times(
        "executor.query",
        FaultAction::Delay(Duration::from_millis(800)),
        1,
    );
    let inflight = std::thread::spawn(move || query(addr, COUNT_TOKENS));
    std::thread::sleep(Duration::from_millis(200));

    let unmount = call(addr, "unmount corpus").unwrap();
    assert!(unmount.ok, "unmount failed: {unmount:?}");

    // The in-flight query still answers from the corpus it started
    // with — executor swaps are snapshots, not rug-pulls.
    let inflight = inflight.join().unwrap();
    assert!(
        inflight.ok && inflight.body == "3",
        "inflight: {inflight:?}"
    );

    // New queries see the unmounted state...
    let after = query(addr, COUNT_TOKENS);
    assert!(!after.ok);
    assert_eq!(after.error_category(), Some("dynamic"));
    // ...and the server is otherwise fully responsive.
    let ping = call(addr, "ping").unwrap();
    assert!(ping.ok && ping.body == "pong");
    server.stop().unwrap();
}

#[test]
fn hot_mount_serves_new_corpus_without_restart() {
    let _guard = chaos_lock();
    let server = spawn_server(ServeOptions::default());
    let addr = server.addr();

    // A second corpus written to disk (the mount verb takes a path).
    let dir = std::env::temp_dir().join(format!("standoff-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("second.snap");
    standoff::store::save_snapshot(&corpus_set("second"), &path).unwrap();

    let mounted = call(addr, &format!("mount {}", path.display())).unwrap();
    assert!(mounted.ok, "mount failed: {mounted:?}");
    assert_eq!(mounted.body, "mounted second");

    let reply = query(addr, r#"count(doc("second#tokens")//w)"#);
    assert!(reply.ok && reply.body == "3", "new corpus: {reply:?}");
    // The original corpus still answers too.
    let reply = query(addr, COUNT_TOKENS);
    assert!(reply.ok && reply.body == "3");

    // Double-mounting the same URI is refused, not corrupting.
    let again = call(addr, &format!("mount {}", path.display())).unwrap();
    assert!(!again.ok);
    assert_eq!(again.error_category(), Some("dynamic"));

    server.stop().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn drain_cancels_inflight_queries_cooperatively() {
    let _guard = chaos_lock();
    let server = spawn_server(ServeOptions::default());
    let addr = server.addr();

    // Park a request post-admission so it is reliably mid-flight when
    // the drain starts; its budget is cancelled during the park, and
    // the first evaluation check observes the trip.
    fault::inject_times(
        "executor.query",
        FaultAction::Delay(Duration::from_millis(800)),
        1,
    );
    let inflight = std::thread::spawn(move || query(addr, COUNT_TOKENS));
    std::thread::sleep(Duration::from_millis(200));

    let started = Instant::now();
    server.stop().unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "drain must not wait out the whole query"
    );

    let reply = inflight.join().unwrap();
    assert!(!reply.ok, "in-flight query must be cancelled: {reply:?}");
    assert_eq!(reply.error_category(), Some("cancelled"));

    // The listener is gone afterwards.
    assert!(call(addr, "ping").is_err());
}
