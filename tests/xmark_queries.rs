//! Cross-crate integration: the paper's §4.6 workload.
//!
//! The StandOff rewrites of XMark Q1/Q2/Q6/Q7 must return the same
//! answers on the StandOff-ified document as the original queries do on
//! the original document — the permutation destroyed the tree edges, so
//! any agreement comes purely from region containment. All strategies
//! must agree with each other.

use standoff::core::StandoffStrategy;
use standoff::xmark::queries::XmarkQuery;
use standoff::xmark::{generate, standoffify, XmarkConfig};
use standoff::xquery::{Engine, EngineOptions};

const STD_URI: &str = "xmark.xml";
const SO_URI: &str = "xmark-standoff.xml";

fn setup(scale: f64) -> (Engine, standoff::xmark::StandoffDoc) {
    let src = generate(&XmarkConfig::with_scale(scale));
    let so = standoffify(&src, 7);
    let mut engine = Engine::new();
    engine.add_document(src, Some(STD_URI));
    // The engine stores a clone of the standoff document; the blob stays
    // with the caller for content checks.
    let so_doc_xml = standoff::xml::serialize_document(&so.doc, Default::default());
    engine.load_document(SO_URI, &so_doc_xml).unwrap();
    (engine, so)
}

#[test]
fn q1_standoff_matches_standard() {
    let (mut engine, so) = setup(0.002);
    let std = engine.run(&XmarkQuery::Q1.standard(STD_URI)).unwrap();
    let sof = engine.run(&XmarkQuery::Q1.standoff(SO_URI)).unwrap();
    assert_eq!(std.len(), 1, "person0 exists exactly once");
    assert_eq!(sof.len(), 1);
    // The standoff result is the <name> annotation element; its region
    // must cover exactly the original name text in the BLOB.
    let serialized = &sof.as_serialized()[0];
    let start: i64 = attr_value(serialized, "start").parse().unwrap();
    let end: i64 = attr_value(serialized, "end").parse().unwrap();
    assert_eq!(so.region_text(start, end), std.as_strings()[0]);
}

#[test]
fn q2_standoff_matches_standard_counts() {
    let (mut engine, _) = setup(0.002);
    let std = engine.run(&XmarkQuery::Q2.standard(STD_URI)).unwrap();
    let sof = engine.run(&XmarkQuery::Q2.standoff(SO_URI)).unwrap();
    // One <increase> element per open auction in both versions.
    assert_eq!(std.len(), sof.len());
    // Auctions WITH bidders yield non-empty constructor content in both.
    let std_nonempty = std
        .as_serialized()
        .iter()
        .filter(|s| !s.contains("<increase/>") && !s.ends_with("<increase> </increase>"))
        .count();
    let so_nonempty = sof
        .as_serialized()
        .iter()
        .filter(|s| s.contains("<increase start"))
        .count();
    assert_eq!(std_nonempty, so_nonempty);
    assert!(std_nonempty > 0, "workload contains auctions with bids");
}

#[test]
fn q6_and_q7_standoff_match_standard() {
    let (mut engine, _) = setup(0.002);
    for q in [XmarkQuery::Q6, XmarkQuery::Q7] {
        let std = engine.run(&q.standard(STD_URI)).unwrap();
        let sof = engine.run(&q.standoff(SO_URI)).unwrap();
        assert_eq!(std.as_strings(), sof.as_strings(), "{q}");
        assert!(!std.is_empty());
    }
}

#[test]
fn all_strategies_agree_on_every_query() {
    let src = generate(&XmarkConfig::with_scale(0.001));
    let so = standoffify(&src, 7);
    let so_xml = standoff::xml::serialize_document(&so.doc, Default::default());

    for q in XmarkQuery::ALL {
        let mut reference: Option<Vec<String>> = None;
        for strategy in StandoffStrategy::ALL {
            let mut engine = Engine::with_options(EngineOptions {
                strategy,
                ..Default::default()
            });
            engine.load_document(SO_URI, &so_xml).unwrap();
            let got: Vec<String> = engine
                .run(&q.standoff(SO_URI))
                .unwrap()
                .as_serialized()
                .to_vec();
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(&got, r, "{q} under {strategy}"),
            }
        }
    }
}

/// Intra-query morsel parallelism is invisible in the results: every
/// XMark query (standard and StandOff rewrite, every strategy) returns
/// byte-identical serialized output at `threads = 4` and `threads = 1`.
#[test]
fn morsel_threads_agree_on_every_query() {
    let src = generate(&XmarkConfig::with_scale(0.002));
    let so = standoffify(&src, 7);
    let so_xml = standoff::xml::serialize_document(&so.doc, Default::default());

    for q in XmarkQuery::ALL {
        for strategy in StandoffStrategy::ALL {
            let mut outputs: Vec<Vec<String>> = Vec::new();
            for threads in [1usize, 4] {
                let mut engine = Engine::with_options(EngineOptions {
                    strategy,
                    ..Default::default()
                });
                engine.set_threads(threads);
                engine.add_document(src.clone(), Some(STD_URI));
                engine.load_document(SO_URI, &so_xml).unwrap();
                for query in [q.standard(STD_URI), q.standoff(SO_URI)] {
                    outputs.push(engine.run(&query).unwrap().as_serialized().to_vec());
                }
            }
            assert_eq!(outputs[0], outputs[2], "{q} standard under {strategy}");
            assert_eq!(outputs[1], outputs[3], "{q} standoff under {strategy}");
        }
    }
}

#[test]
fn candidate_pushdown_does_not_change_results() {
    let src = generate(&XmarkConfig::with_scale(0.001));
    let so = standoffify(&src, 7);
    let so_xml = standoff::xml::serialize_document(&so.doc, Default::default());
    for q in XmarkQuery::ALL {
        let mut with = Engine::new();
        with.load_document(SO_URI, &so_xml).unwrap();
        let mut without = Engine::new();
        without.set_candidate_pushdown(false);
        without.load_document(SO_URI, &so_xml).unwrap();
        assert_eq!(
            with.run(&q.standoff(SO_URI)).unwrap().as_serialized(),
            without.run(&q.standoff(SO_URI)).unwrap().as_serialized(),
            "{q}"
        );
    }
}

#[test]
fn q6_counts_equal_item_totals() {
    let (mut engine, _) = setup(0.002);
    // Q6 returns one count (for the single <regions>); it must equal the
    // total number of items.
    let std = engine.run(&XmarkQuery::Q6.standard(STD_URI)).unwrap();
    let expected = XmarkConfig::with_scale(0.002).n_items();
    assert_eq!(std.as_strings(), [expected.to_string()]);
}

/// Minimal attribute scraping for serialized test output.
fn attr_value<'a>(xml: &'a str, name: &str) -> &'a str {
    let pat = format!("{name}=\"");
    let s = xml.find(&pat).map(|i| i + pat.len()).unwrap();
    let e = xml[s..].find('"').unwrap();
    &xml[s..s + e]
}
