//! The application scenarios from the paper's introduction (multimedia
//! retrieval, digital forensics, NLP, and §6's bioinformatics outlook),
//! as executable assertions. These mirror the `examples/` binaries so
//! their behaviour is CI-checked.

use standoff::prelude::*;

#[test]
fn forensics_fragmented_files() {
    let mut engine = Engine::new();
    engine
        .load_document(
            "case.xml",
            r#"<case>
              <file name="archive.zip">
                <region><start>16384</start><end>20479</end></region>
                <region><start>40960</start><end>45055</end></region>
              </file>
              <hit kind="email"><region><start>17000</start><end>17030</end></region></hit>
              <hit kind="ccn"><region><start>42000</start><end>42015</end></region></hit>
              <hit kind="gap"><region><start>30000</start><end>30015</end></region></hit>
            </case>"#,
        )
        .unwrap();
    let prolog = r#"declare option standoff-region "region";"#;
    // Hits inside either fragment count; the one between fragments does
    // not (non-contiguous area containment).
    let r = engine
        .run(&format!(
            r#"{prolog} doc("case.xml")//file/select-narrow::hit/@kind"#
        ))
        .unwrap();
    assert_eq!(r.as_strings(), ["email", "ccn"]);
    let r = engine
        .run(&format!(
            r#"{prolog} doc("case.xml")//file/reject-narrow::hit/@kind"#
        ))
        .unwrap();
    assert_eq!(r.as_strings(), ["gap"]);
}

#[test]
fn nlp_overlapping_hierarchies() {
    let mut engine = Engine::new();
    engine
        .load_document(
            "corpus.xml",
            r#"<corpus>
              <np start="0" end="7"/>
              <vp start="8" end="16"/>
              <quote start="4" end="9"/>
              <org start="1" end="5"/>
            </corpus>"#,
        )
        .unwrap();
    // The quote crosses the NP/VP boundary: overlaps both, contained in
    // neither — representable only with stand-off regions.
    let r = engine
        .run(r#"count(doc("corpus.xml")//quote/select-wide::np | doc("corpus.xml")//quote/select-wide::vp)"#)
        .unwrap();
    assert_eq!(r.as_strings(), ["2"]);
    let r = engine
        .run(r#"count((doc("corpus.xml")//np | doc("corpus.xml")//vp)/select-narrow::quote)"#)
        .unwrap();
    assert_eq!(r.as_strings(), ["0"]);
    // The org is inside the NP.
    let r = engine
        .run(r#"count(doc("corpus.xml")//np/select-narrow::org)"#)
        .unwrap();
    assert_eq!(r.as_strings(), ["1"]);
}

#[test]
fn genomics_spliced_reads() {
    let mut engine = Engine::new();
    engine
        .load_document(
            "genome.xml",
            r#"<genome>
              <gene name="ALPHA">
                <exon><start>100</start><end>199</end></exon>
                <exon><start>300</start><end>449</end></exon>
              </gene>
              <read id="spliced">
                <exon><start>180</start><end>199</end></exon>
                <exon><start>300</start><end>329</end></exon>
              </read>
              <read id="dangling">
                <exon><start>190</start><end>230</end></exon>
              </read>
            </genome>"#,
        )
        .unwrap();
    let prolog = r#"declare option standoff-region "exon";"#;
    // The spliced read's two segments each land in an exon of the SAME
    // gene → contained (∀∃). The dangling read pokes into the intron →
    // overlap only.
    let narrow = engine
        .run(&format!(
            r#"{prolog} doc("genome.xml")//gene/select-narrow::read/@id"#
        ))
        .unwrap();
    assert_eq!(narrow.as_strings(), ["spliced"]);
    let wide = engine
        .run(&format!(
            r#"{prolog} doc("genome.xml")//gene/select-wide::read/@id"#
        ))
        .unwrap();
    assert_eq!(wide.as_strings(), ["spliced", "dangling"]);
}

#[test]
fn multimedia_temporal_composition() {
    // MPEG-7/SMIL-style temporal query: scenes fully covered by any
    // music, expressed compositionally.
    let mut engine = standoff::fixtures::engine_with_figure1();
    let r = engine
        .run(
            r#"for $s in doc("sample.xml")//shot
               where exists(doc("sample.xml")//music/select-narrow::shot[. is $s])
               return $s/@id"#,
        )
        .unwrap();
    assert_eq!(r.as_strings(), ["Intro", "Outro"]);
}

#[test]
fn binary_store_cli_pipeline() {
    // write a store to disk, reopen it, run a query — the --load-bin path.
    let mut store = standoff::xml::Store::new();
    store
        .load("sample.xml", standoff::fixtures::FIGURE1_XML)
        .unwrap();
    let path = std::env::temp_dir().join("standoff-test-store.bin");
    let mut file = std::fs::File::create(&path).unwrap();
    standoff::xml::write_store(&store, &mut file).unwrap();
    drop(file);

    let mut reopened = standoff::xml::read_store(&mut std::fs::File::open(&path).unwrap()).unwrap();
    let mut engine = Engine::new();
    for doc in std::mem::take(&mut reopened).into_docs() {
        let uri = doc.uri().map(|u| u.to_string());
        engine.add_document(doc, uri.as_deref());
    }
    let r = engine
        .run(r#"doc("sample.xml")//music[@artist = "U2"]/select-narrow::shot/@id"#)
        .unwrap();
    assert_eq!(r.as_strings(), ["Intro"]);
    let _ = std::fs::remove_file(&path);
}
