//! Plan/AST equivalence: the optimized compilation pipeline must be
//! observably identical to the direct-AST reference path.
//!
//! Every query runs twice — through `Engine::run` (parse → lower →
//! **optimize** → execute) and through the `#[doc(hidden)]`
//! `Engine::run_unoptimized` reference (parse → lower → execute, a 1:1
//! transliteration of the AST with no constant folding, no hoisting, no
//! pushdown annotation) — and the serialized results must be
//! byte-identical. The sweep covers the full XMark workload (standard
//! *and* StandOff rewrites, plus the Figure 2/3 UDF baselines) under
//! **all four StandOff strategies × candidate pushdown on/off**, so an
//! optimizer pass that changes results anywhere in that matrix fails
//! here with a readable query/option label.

use standoff::core::StandoffStrategy;
use standoff::xmark::queries::XmarkQuery;
use standoff::xmark::{generate, standoffify, XmarkConfig};
use standoff::xquery::Engine;

const STD_URI: &str = "xmark.xml";
const SO_URI: &str = "xmark-standoff.xml";

fn engine_with(strategy: StandoffStrategy, pushdown: bool) -> Engine {
    let src = generate(&XmarkConfig::with_scale(0.002));
    let so = standoffify(&src, 7);
    let so_xml = standoff::xml::serialize_document(&so.doc, Default::default());
    let mut engine = Engine::new();
    engine.add_document(src, Some(STD_URI));
    engine.load_document(SO_URI, &so_xml).unwrap();
    engine.set_strategy(strategy);
    engine.set_candidate_pushdown(pushdown);
    engine
}

/// Queries exercising the operator classes the optimizer rewrites:
/// foldable constants, hoistable invariants, StandOff joins in axis and
/// function form, quantifiers, set operations, predicates.
fn feature_queries() -> Vec<String> {
    vec![
        // Constant folding must not change arithmetic/comparison results.
        "1 + 2 * 3 - (10 idiv 3)".to_string(),
        "if (2 < 1) then \"a\" else concat(\"b\", \"c\")".to_string(),
        // Hoisting: invariant StandOff join and aggregate in a loop.
        format!(r#"for $i in 1 to 5 return count(doc("{SO_URI}")//person)"#),
        format!(
            r#"for $i in 1 to 3, $p in doc("{SO_URI}")//person
               order by $p/@id return ($i, $p/@id)"#
        ),
        // Hoisting must respect where-filtered scopes.
        format!(
            r#"for $i in 1 to 4 where $i > 2
               return count(doc("{SO_URI}")//item/select-wide::description)"#
        ),
        // StandOff joins in function form with and without candidates.
        format!(r#"count(select-narrow(doc("{SO_URI}")//open_auction, doc("{SO_URI}")//bidder))"#),
        format!(r#"count(reject-narrow(doc("{SO_URI}")//open_auction))"#),
        // Quantified + set operations + predicates.
        format!(r#"some $p in doc("{SO_URI}")//person satisfies $p/@id = "person0""#),
        format!(r#"count((doc("{SO_URI}")//person | doc("{SO_URI}")//item)[position() <= 7])"#),
        format!(r#"count(doc("{SO_URI}")//person except doc("{SO_URI}")//person[1])"#),
        // Constructors stay per-iteration (never hoisted).
        format!(r#"for $i in 1 to 3 return <n c="{{count(doc("{SO_URI}")//person)}}"/>"#),
    ]
}

#[test]
fn xmark_suite_matches_reference_across_all_strategies_and_pushdown() {
    for strategy in StandoffStrategy::ALL {
        for pushdown in [true, false] {
            let mut engine = engine_with(strategy, pushdown);
            let mut texts: Vec<String> = Vec::new();
            for q in XmarkQuery::ALL {
                texts.push(q.standard(STD_URI));
                texts.push(q.standoff(SO_URI));
                texts.push(q.standoff_udf_candidates(SO_URI));
                texts.push(q.standoff_udf_no_candidates(SO_URI));
            }
            for text in texts {
                let optimized = engine
                    .run(&text)
                    .unwrap_or_else(|e| panic!("[{strategy}/pushdown={pushdown}] {text}: {e}"));
                let reference = engine
                    .run_unoptimized(&text)
                    .unwrap_or_else(|e| panic!("[{strategy}/pushdown={pushdown}] ref {text}: {e}"));
                assert_eq!(
                    optimized.as_serialized(),
                    reference.as_serialized(),
                    "serialized results diverge [{strategy}/pushdown={pushdown}]: {text}"
                );
                assert_eq!(
                    optimized.as_strings(),
                    reference.as_strings(),
                    "string values diverge [{strategy}/pushdown={pushdown}]: {text}"
                );
            }
        }
    }
}

#[test]
fn feature_queries_match_reference_across_all_strategies_and_pushdown() {
    for strategy in StandoffStrategy::ALL {
        for pushdown in [true, false] {
            let mut engine = engine_with(strategy, pushdown);
            for text in feature_queries() {
                let optimized = engine
                    .run(&text)
                    .unwrap_or_else(|e| panic!("[{strategy}/pushdown={pushdown}] {text}: {e}"));
                let reference = engine
                    .run_unoptimized(&text)
                    .unwrap_or_else(|e| panic!("[{strategy}/pushdown={pushdown}] ref {text}: {e}"));
                assert_eq!(
                    optimized.as_serialized(),
                    reference.as_serialized(),
                    "serialized results diverge [{strategy}/pushdown={pushdown}]: {text}"
                );
            }
        }
    }
}

/// Auto strategy selection changes only the join algorithm, never the
/// answer: results under `auto_strategy` equal the forced-strategy
/// reference.
#[test]
fn auto_strategy_agrees_with_reference() {
    let mut auto_engine = engine_with(StandoffStrategy::LoopLiftedMergeJoin, true);
    auto_engine.set_auto_strategy(true);
    let mut fixed = engine_with(StandoffStrategy::LoopLiftedMergeJoin, true);
    for q in XmarkQuery::ALL {
        let text = q.standoff(SO_URI);
        let a = auto_engine.run(&text).unwrap();
        let b = fixed.run(&text).unwrap();
        assert_eq!(a.as_serialized(), b.as_serialized(), "{text}");
    }
}
