//! The observability subsystem, end to end: per-operator profiling and
//! `explain analyze`, the metrics registry counters the engine/executor/
//! store feed, `JoinStats` reset semantics, plan-cache statistics, and
//! snapshot section introspection.
//!
//! The golden cases use `QueryProfile::render_redacted()` (times print
//! as `~`) so the snapshots are deterministic; regenerate intentional
//! changes with `BLESS=1 cargo test --test observability`.

use standoff::core::obs::MetricsRegistry;
use standoff::core::StandoffConfig;
use standoff::xmark::queries::XmarkQuery;
use standoff::xmark::{generate, standoffify, XmarkConfig};
use standoff::xquery::{Engine, Executor, JoinStats, QueryCache};

/// The deterministic corpus of the `explain` goldens, plus the crate's
/// video sample so joins have same-document annotations to hit (the
/// token/entity pair live in *separate* documents, so StandOff steps
/// across them are legal but empty).
fn corpus() -> Engine {
    let mut engine = Engine::new();
    let sample = engine
        .load_document(
            "sample.xml",
            r#"<sample>
                 <shot id="Intro" start="0" end="8"/>
                 <shot id="Interview" start="8" end="64"/>
                 <shot id="Outro" start="64" end="94"/>
                 <music artist="U2" start="0" end="31"/>
                 <music artist="Bach" start="52" end="94"/>
               </sample>"#,
        )
        .unwrap();
    engine
        .prebuild_region_index(sample, &StandoffConfig::default())
        .unwrap();
    let tokens = engine
        .load_document(
            "tokens.xml",
            r#"<tokens><w start="0" end="5"/><w start="6" end="11"/><w start="12" end="22"/><w start="23" end="29"/></tokens>"#,
        )
        .unwrap();
    let entities = engine
        .load_document(
            "entities.xml",
            r#"<entities><place start="6" end="11"/><thing start="12" end="29"/></entities>"#,
        )
        .unwrap();
    engine
        .prebuild_region_index(tokens, &StandoffConfig::default())
        .unwrap();
    engine
        .prebuild_region_index(entities, &StandoffConfig::default())
        .unwrap();
    engine
}

fn check_analyze(name: &str, engine: &mut Engine, query: &str) {
    let (_, profile) = engine
        .run_profiled(query)
        .unwrap_or_else(|e| panic!("{name}: profiled run failed: {e}"));
    let actual = profile.render_redacted();
    let path = format!("{}/tests/golden/{name}.txt", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{name}: cannot read {path}: {e} (run with BLESS=1 to create)"));
    assert_eq!(
        actual, expected,
        "\n{name}: explain-analyze text changed. If intentional, regenerate \
         with `BLESS=1 cargo test --test observability` and review the diff.\n"
    );
}

// ---- explain analyze goldens -------------------------------------------

#[test]
fn analyze_standoff_step_with_pushdown() {
    let mut engine = corpus();
    check_analyze(
        "analyze_step_pushdown",
        &mut engine,
        r#"doc("sample.xml")//music[@artist = "U2"]/select-wide::shot"#,
    );
}

#[test]
fn analyze_flwor_with_hoisted_invariant() {
    let mut engine = corpus();
    check_analyze(
        "analyze_flwor_hoisted",
        &mut engine,
        r#"for $m in doc("sample.xml")//music
           where count(doc("sample.xml")//shot) > 2
           order by $m/@start
           return ($m/select-wide::shot, count(doc("sample.xml")//shot))"#,
    );
}

/// A branch the evaluator never takes renders `not executed` instead of
/// fabricated measurements.
#[test]
fn analyze_marks_unexecuted_operators() {
    let mut engine = corpus();
    // Non-constant condition, so const-folding can't drop the dead arm.
    let (_, profile) = engine
        .run_profiled(
            r#"if (count(doc("tokens.xml")//w) = 0) then doc("entities.xml")//place else 42"#,
        )
        .unwrap();
    let text = profile.render_redacted();
    assert!(
        text.contains("not executed"),
        "dead branch not marked:\n{text}"
    );
}

// ---- profiled execution is observation-only ----------------------------

/// Profiling must not change a single output byte: the XMark workload
/// (standard + StandOff forms) serialized under `--profile` semantics is
/// identical to the unprofiled run.
#[test]
fn profiled_run_is_byte_identical_across_xmark() {
    let src = generate(&XmarkConfig::with_scale(0.002));
    let so = standoffify(&src, 7);
    let mut engine = Engine::new();
    engine.add_document(src, Some("xmark.xml"));
    let so_xml = standoff::xml::serialize_document(&so.doc, Default::default());
    engine.load_document("xmark-standoff.xml", &so_xml).unwrap();

    for q in [
        XmarkQuery::Q1,
        XmarkQuery::Q2,
        XmarkQuery::Q6,
        XmarkQuery::Q7,
    ] {
        for query in [q.standard("xmark.xml"), q.standoff("xmark-standoff.xml")] {
            let plain = engine.run(&query).unwrap();
            let (profiled, profile) = engine.run_profiled(&query).unwrap();
            assert_eq!(
                plain.as_serialized(),
                profiled.as_serialized(),
                "{q}: profiling changed the result of {query}"
            );
            assert!(!profile.ops.is_empty(), "{q}: empty profile");
        }
    }
}

/// The profile actually measured the join: context/candidate
/// cardinalities and the per-operator `JoinStats` are populated.
#[test]
fn profile_captures_join_cardinalities() {
    let mut engine = corpus();
    let (result, profile) = engine
        .run_profiled(r#"doc("sample.xml")//music[@artist = "U2"]/select-wide::shot"#)
        .unwrap();
    assert_eq!(result.len(), 2, "U2 overlaps Intro and Interview");
    let mut join = None;
    profile.plan.visit_exprs(&mut |expr| {
        if join.is_none() {
            join = profile.ops.get(expr).and_then(|m| m.join.clone());
        }
    });
    let join = join.expect("a join operator was profiled");
    assert_eq!(join.ctx_rows, 1, "one U2 context row");
    assert!(join.cand_rows > 0, "candidates were gathered");
    assert!(
        join.stats.result_sorts + join.stats.result_sorts_elided > 0,
        "join stats recorded"
    );
}

// ---- JoinStats reset semantics -----------------------------------------

#[test]
fn join_stats_accumulate_and_reset() {
    let mut engine = corpus();
    let query = r#"doc("entities.xml")//place/select-narrow::w"#;

    engine.run(query).unwrap();
    let after_one = engine.join_stats();
    assert_ne!(after_one, JoinStats::default(), "join ran");

    // Cumulative: a second run doubles every counter.
    engine.run(query).unwrap();
    let after_two = engine.join_stats();
    assert_eq!(after_two.result_sorts, 2 * after_one.result_sorts);
    assert_eq!(
        after_two.post_filters_elided,
        2 * after_one.post_filters_elided
    );

    // take_delta: returns the accumulation and zeroes the counters.
    let taken = engine.take_join_stats();
    assert_eq!(taken, after_two);
    assert_eq!(engine.join_stats(), JoinStats::default());

    // reset: back to zero regardless of accumulated state.
    engine.run(query).unwrap();
    engine.reset_join_stats();
    assert_eq!(engine.join_stats(), JoinStats::default());
}

/// A fresh `Session` starts with zeroed stats even when the engine had
/// accumulated some before `into_shared()`.
#[test]
fn fresh_session_starts_with_zero_join_stats() {
    let mut engine = corpus();
    engine
        .run(r#"doc("entities.xml")//place/select-narrow::w"#)
        .unwrap();
    assert_ne!(engine.join_stats(), JoinStats::default());

    let shared = engine.into_shared();
    let mut session = shared.session();
    assert_eq!(session.join_stats(), JoinStats::default());

    session
        .run(r#"doc("entities.xml")//place/select-narrow::w"#)
        .unwrap();
    assert_ne!(session.join_stats(), JoinStats::default());
    // ...and its sibling session is unaffected.
    assert_eq!(shared.session().join_stats(), JoinStats::default());
}

// ---- registry counters -------------------------------------------------

#[test]
fn engine_metrics_count_query_executions() {
    let mut engine = corpus();
    engine.run("1 + 1").unwrap();
    engine.run("2 + 2").unwrap();
    let snap = engine.metrics().snapshot();
    assert_eq!(snap.counters["query.executions"], 2);
    let exec_ns = &snap.histograms["query.exec_ns"];
    assert_eq!(exec_ns.count, 2);
    assert!(exec_ns.sum > 0, "wall time was recorded");
}

#[test]
fn join_metrics_mirror_join_stats() {
    let mut engine = corpus();
    engine
        .run(r#"doc("entities.xml")//place/select-narrow::w"#)
        .unwrap();
    let stats = engine.join_stats();
    let snap = engine.metrics().snapshot();
    assert_eq!(snap.counters["join.result_sorts"], stats.result_sorts);
    assert_eq!(
        snap.counters["join.post_filters_elided"],
        stats.post_filters_elided
    );
    assert_eq!(
        snap.counters["join.candidate_node_view"] + snap.counters["join.candidate_scans"],
        stats.candidate_node_view + stats.candidate_scans
    );
}

/// A corpus dense enough that the scan kernel picks the bitset
/// representation and (at `threads > 1`) splits into morsels: one
/// document holding a few wide `big` spans over 10k adjacent `w`
/// tokens.
fn dense_corpus() -> Engine {
    let mut xml = String::from("<d>");
    for k in 0..4 {
        let lo = k * 5_000;
        xml.push_str(&format!("<big start=\"{}\" end=\"{}\"/>", lo, lo + 4_999));
    }
    for k in 0..10_000 {
        let lo = k * 2;
        xml.push_str(&format!("<w start=\"{}\" end=\"{}\"/>", lo, lo + 1));
    }
    xml.push_str("</d>");
    let mut engine = Engine::new();
    let doc = engine.load_document("dense.xml", &xml).unwrap();
    engine
        .prebuild_region_index(doc, &StandoffConfig::default())
        .unwrap();
    engine
}

/// The dense-kernel counters fire on a dense pushdown, mirror into the
/// metrics registry, and the morsel pool engages — byte-identically —
/// once the engine runs with `threads > 1`.
#[test]
fn dense_kernel_and_morsel_counters_fire() {
    let query = r#"count(doc("dense.xml")//big/select-narrow::w)"#;

    let mut engine = dense_corpus();
    let sequential = engine.run(query).unwrap();
    assert_eq!(sequential.as_strings(), ["10000"]);
    let stats = engine.join_stats();
    assert!(
        stats.candidate_repr_dense > 0,
        "dense repr chosen: {stats:?}"
    );
    assert!(
        stats.candidate_dense_blocks > 0,
        "blocks counted: {stats:?}"
    );
    assert_eq!(
        stats.morsels_dispatched, 0,
        "threads=1 must stay sequential: {stats:?}"
    );
    let snap = engine.metrics().snapshot();
    assert_eq!(
        snap.counters["join.candidate_repr_dense"],
        stats.candidate_repr_dense
    );
    assert_eq!(
        snap.counters["join.candidate_dense_blocks"],
        stats.candidate_dense_blocks
    );
    assert_eq!(
        snap.counters["join.morsels_dispatched"],
        stats.morsels_dispatched
    );

    engine.set_threads(4);
    engine.reset_join_stats();
    let parallel = engine.run(query).unwrap();
    assert_eq!(sequential.as_serialized(), parallel.as_serialized());
    let stats = engine.join_stats();
    assert!(
        stats.morsels_dispatched >= 2,
        "10k entries at threads=4 must split: {stats:?}"
    );
    assert!(stats.candidate_repr_dense > 0);
}

/// A sparse (selective) pushdown must keep taking the sparse/gather
/// paths: the dense counters stay at zero.
#[test]
fn sparse_pushdown_leaves_dense_counters_at_zero() {
    let mut engine = dense_corpus();
    engine
        .run(r#"doc("dense.xml")//w[@start = 0]/select-wide::big"#)
        .unwrap();
    let stats = engine.join_stats();
    assert_eq!(stats.candidate_repr_dense, 0, "{stats:?}");
    assert_eq!(stats.candidate_dense_blocks, 0, "{stats:?}");
    assert_eq!(stats.morsels_dispatched, 0, "{stats:?}");
}

#[test]
fn executor_metrics_and_plan_cache_counters() {
    // Single worker: the hit/miss counts below stay deterministic (two
    // racing workers could both miss on the repeated query).
    let engine = corpus().into_shared();
    let executor = Executor::new(engine, 1);
    let queries = [
        r#"count(doc("tokens.xml")//w)"#,
        r#"count(doc("entities.xml")//place)"#,
        r#"count(doc("tokens.xml")//w)"#, // repeat: a cache hit
    ];
    let results = executor.run_batch(&queries);
    assert!(results.iter().all(|r| r.is_ok()));

    let snap = executor.metrics_snapshot();
    assert_eq!(snap.counters["executor.batches"], 1);
    assert_eq!(snap.counters["executor.queries"], 3);
    assert_eq!(snap.histograms["executor.queue_depth"].count, 3);
    assert_eq!(snap.histograms["executor.queue_wait_ns"].count, 3);
    // Plan-cache counters are folded into the same snapshot.
    assert_eq!(snap.counters["plan_cache.misses"], 2);
    assert_eq!(snap.counters["plan_cache.hits"], 1);
    assert_eq!(snap.counters["plan_cache.evictions"], 0);
}

#[test]
fn plan_cache_eviction_counter() {
    let engine = corpus().into_shared();
    let cache = std::sync::Arc::new(QueryCache::new(2));
    let executor = Executor::with_cache(engine, 1, cache);
    // Three distinct queries through a two-entry cache: one eviction.
    let queries = ["1", "2", "3"];
    executor.run_batch(&queries);
    let stats = executor.cache().stats();
    assert_eq!(stats.misses, 3);
    assert_eq!(stats.evictions, 1);
    assert_eq!(stats.entries, 2);
    assert_eq!(stats.capacity, 2);
    // The LRU survivor is still a hit.
    executor.run_batch(&["3"]);
    assert_eq!(executor.cache().stats().hits, 1);
}

// ---- store instrumentation and snapshot sections -----------------------

#[test]
fn snapshot_info_reports_v3_sections() {
    use standoff::store::{write_snapshot, LayerSet, Snapshot};
    let cfg = StandoffConfig::default();
    let base = standoff::xml::parse_document("<text>Alice met Bob</text>").unwrap();
    let tokens = standoff::xml::parse_document(
        r#"<tokens><w start="0" end="4"/><w start="10" end="12"/></tokens>"#,
    )
    .unwrap();
    let mut set = LayerSet::build("corpus", base, cfg.clone()).unwrap();
    set.add_layer("tokens", tokens, cfg).unwrap();

    let dir = std::env::temp_dir().join(format!("obs-sections-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corpus.snap");
    let mut buf = Vec::new();
    write_snapshot(&set, &mut buf).unwrap();
    std::fs::write(&path, &buf).unwrap();

    let before = MetricsRegistry::global().snapshot();
    let snapshot = Snapshot::open(&path).unwrap();
    let info = snapshot.info();
    assert_eq!(info.layers.len(), 2);
    for layer in &info.layers {
        assert!(
            !layer.sections.is_empty(),
            "v3 layer {} has no section info",
            layer.name
        );
        // Per-section bytes add up to the layer total, and the catalog
        // resolved every tag to a name.
        let sum: u64 = layer.sections.iter().map(|s| s.bytes).sum();
        assert_eq!(sum, layer.bytes, "{}: section sizes disagree", layer.name);
        for section in &layer.sections {
            assert_ne!(section.name, "unknown", "tag {} unnamed", section.tag);
        }
        let names: Vec<_> = layer.sections.iter().map(|s| s.name).collect();
        assert!(names.contains(&"doc.kind"), "{names:?}");
    }

    // Opening + materializing fed the process-global registry. Other
    // tests share it, so check the delta, not absolute values.
    let _ = snapshot.layer("tokens").unwrap();
    let after = MetricsRegistry::global().snapshot();
    let delta = after.delta(&before);
    assert!(delta.counters["store.snapshots_opened"] >= 1);
    assert!(delta.counters["store.layers_materialized"] >= 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn legacy_snapshot_has_no_section_info() {
    use standoff::store::{inspect_snapshot, write_snapshot_legacy, LayerSet};
    let base = standoff::xml::parse_document("<d><a start='0' end='3'/></d>").unwrap();
    let set = LayerSet::build("corpus", base, StandoffConfig::default()).unwrap();
    let mut buf = Vec::new();
    write_snapshot_legacy(&set, &mut buf).unwrap();
    let info = inspect_snapshot(&mut std::io::Cursor::new(&buf)).unwrap();
    assert!(info.layers.iter().all(|l| l.sections.is_empty()));
}

// ---- snapshot JSON -----------------------------------------------------

#[test]
fn metrics_snapshot_json_is_parseable_shape() {
    let mut engine = corpus();
    engine
        .run(r#"doc("entities.xml")//place/select-narrow::w"#)
        .unwrap();
    let json = engine.metrics().snapshot().to_json();
    // Hand-rolled writer, so sanity-check the envelope and a couple of
    // required keys rather than fully parsing.
    assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    for key in [
        "\"counters\"",
        "\"histograms\"",
        "\"query.executions\"",
        "\"query.exec_ns\"",
    ] {
        assert!(json.contains(key), "snapshot JSON missing {key}:\n{json}");
    }
    assert_eq!(json.matches("\"counters\"").count(), 1);
}
