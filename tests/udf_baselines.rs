//! The UDF baselines (Figures 2 and 3) as whole-query rewrites of the
//! XMark workload: the texts the Figure 6 harness measures for its
//! "XQuery Function" columns must return exactly the same answers as the
//! axis-step queries under the merge joins.

use standoff::xmark::queries::XmarkQuery;
use standoff::xmark::{generate, standoffify, XmarkConfig};
use standoff::xquery::Engine;

const SO_URI: &str = "xmark-standoff.xml";

fn engine() -> Engine {
    let src = generate(&XmarkConfig::with_scale(0.001));
    let so = standoffify(&src, 7);
    let mut engine = Engine::new();
    engine.add_document(so.doc, Some(SO_URI));
    engine
}

#[test]
fn udf_with_candidates_matches_axis_steps() {
    let mut engine = engine();
    for q in XmarkQuery::ALL {
        let steps = engine
            .run(&q.standoff(SO_URI))
            .unwrap()
            .as_serialized()
            .to_vec();
        let udf = engine
            .run(&q.standoff_udf_candidates(SO_URI))
            .unwrap()
            .as_serialized()
            .to_vec();
        assert_eq!(steps, udf, "{q}: Figure 3 UDF diverges from axis steps");
    }
}

#[test]
fn udf_without_candidates_matches_axis_steps() {
    let mut engine = engine();
    for q in XmarkQuery::ALL {
        let steps = engine
            .run(&q.standoff(SO_URI))
            .unwrap()
            .as_serialized()
            .to_vec();
        let udf = engine
            .run(&q.standoff_udf_no_candidates(SO_URI))
            .unwrap()
            .as_serialized()
            .to_vec();
        assert_eq!(steps, udf, "{q}: Figure 2 UDF diverges from axis steps");
    }
}

#[test]
fn explain_shows_strategy_difference() {
    let engine = engine();
    let plan = engine.explain(&XmarkQuery::Q2.standoff(SO_URI)).unwrap();
    assert!(plan.contains("loop-lifted StandOff MergeJoin"), "{plan}");
    assert!(plan.contains("select-narrow::open_auction"), "{plan}");
    assert!(
        plan.contains("element index 'bidder'"),
        "pushdown should be visible:\n{plan}"
    );
}
