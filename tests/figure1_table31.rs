//! Reproduces the paper's §3.1 example table ("StandOff Joins between U2
//! and Shots") on the Figure 1 multimedia document, both through the
//! XQuery engine (axis steps, all strategies) and directly through the
//! core join API.

use standoff::core::{
    evaluate_standoff_join, IterNode, JoinInput, RegionIndex, StandoffAxis, StandoffConfig,
    StandoffStrategy,
};
use standoff::fixtures::{engine_with_figure1, FIGURE1_URI, FIGURE1_XML};

/// The expected table from §3.1.
const EXPECTED: [(StandoffAxis, &[&str]); 4] = [
    (StandoffAxis::SelectNarrow, &["Intro"]),
    (StandoffAxis::SelectWide, &["Intro", "Interview"]),
    (StandoffAxis::RejectNarrow, &["Interview", "Outro"]),
    (StandoffAxis::RejectWide, &["Outro"]),
];

#[test]
fn table31_via_axis_steps() {
    let mut engine = engine_with_figure1();
    for (axis, expected) in EXPECTED {
        let q = format!(
            r#"doc("{FIGURE1_URI}")//music[@artist = "U2"]/{}::shot/@id"#,
            axis.as_str()
        );
        let got = engine.run(&q).unwrap();
        assert_eq!(got.as_strings(), expected, "{axis}");
    }
}

#[test]
fn table31_via_builtin_functions() {
    let mut engine = engine_with_figure1();
    for (axis, expected) in EXPECTED {
        let q = format!(
            r#"{}(doc("{FIGURE1_URI}")//music[@artist = "U2"],
                  doc("{FIGURE1_URI}")//shot)/@id"#,
            axis.as_str()
        );
        let got = engine.run(&q).unwrap();
        assert_eq!(got.as_strings(), expected, "{axis} as function");
    }
}

#[test]
fn table31_identical_across_all_strategies() {
    for strategy in StandoffStrategy::ALL {
        let mut engine = standoff::xquery::Engine::with_options(standoff::xquery::EngineOptions {
            strategy,
            ..Default::default()
        });
        engine.load_document(FIGURE1_URI, FIGURE1_XML).unwrap();
        for (axis, expected) in EXPECTED {
            let q = format!(
                r#"doc("{FIGURE1_URI}")//music[@artist = "U2"]/{}::shot/@id"#,
                axis.as_str()
            );
            let got = engine.run(&q).unwrap();
            assert_eq!(got.as_strings(), expected, "{axis} under {strategy}");
        }
    }
}

#[test]
fn table31_via_core_join_api() {
    let doc = standoff::xml::parse_document(FIGURE1_XML).unwrap();
    let index = RegionIndex::build(&doc, &StandoffConfig::default()).unwrap();
    let u2 = doc
        .elements_named("music")
        .iter()
        .copied()
        .find(|&m| doc.attribute(m, "artist") == Some("U2"))
        .unwrap();
    let shots = doc.elements_named("shot");
    let context = [IterNode { iter: 0, node: u2 }];
    let input = JoinInput {
        doc: &doc,
        index: (&index).into(),
        ctx_index: None,
        context: &context,
        candidates: Some(shots),
        iter_domain: &[0],
    };
    for (axis, expected) in EXPECTED {
        let result =
            evaluate_standoff_join(axis, StandoffStrategy::LoopLiftedMergeJoin, &input, None);
        let ids: Vec<&str> = result
            .iter()
            .map(|e| doc.attribute(e.node, "id").unwrap())
            .collect();
        assert_eq!(ids, expected, "{axis} via core API");
    }
}

#[test]
fn bach_row_for_completeness() {
    // Not printed in the paper but fully determined by Figure 1:
    // Bach [52,94] contains Outro [64,94], overlaps Interview and Outro.
    let mut engine = engine_with_figure1();
    let bach = format!(r#"doc("{FIGURE1_URI}")//music[@artist = "Bach"]"#);
    assert_eq!(
        engine
            .run(&format!("{bach}/select-narrow::shot/@id"))
            .unwrap()
            .as_strings(),
        ["Outro"]
    );
    assert_eq!(
        engine
            .run(&format!("{bach}/select-wide::shot/@id"))
            .unwrap()
            .as_strings(),
        ["Interview", "Outro"]
    );
    assert_eq!(
        engine
            .run(&format!("{bach}/reject-wide::shot/@id"))
            .unwrap()
            .as_strings(),
        ["Intro"]
    );
}

#[test]
fn whole_music_sequence_as_context() {
    // Context = both music annotations: select-wide covers every shot,
    // reject-wide nothing.
    let mut engine = engine_with_figure1();
    assert_eq!(
        engine
            .run(&format!(
                r#"doc("{FIGURE1_URI}")//music/select-wide::shot/@id"#
            ))
            .unwrap()
            .as_strings(),
        ["Intro", "Interview", "Outro"]
    );
    assert!(engine
        .run(&format!(r#"doc("{FIGURE1_URI}")//music/reject-wide::shot"#))
        .unwrap()
        .is_empty());
}
