//! Golden snapshot tests of `explain` output.
//!
//! Each case compiles a query against a small, fully deterministic
//! corpus and compares the rendered optimized plan against a checked-in
//! snapshot under `tests/golden/`. Optimizer regressions — a pass
//! reordered, a pushdown decision flipped, an estimate miscounted —
//! show up as a readable text diff instead of a silent plan change.
//!
//! To regenerate after an *intentional* plan-format change:
//! `BLESS=1 cargo test --test explain_golden` rewrites the snapshots;
//! review the diff before committing.

use standoff::core::{StandoffConfig, StandoffStrategy};
use standoff::xquery::Engine;

/// A tiny annotation corpus: one BLOB with a token layer and an entity
/// layer as plain StandOff documents, region indexes pre-built so
/// explain shows estimates.
fn corpus() -> Engine {
    let mut engine = Engine::new();
    let tokens = engine
        .load_document(
            "tokens.xml",
            r#"<tokens><w start="0" end="5"/><w start="6" end="11"/><w start="12" end="22"/><w start="23" end="29"/></tokens>"#,
        )
        .unwrap();
    let entities = engine
        .load_document(
            "entities.xml",
            r#"<entities><place start="6" end="11"/><thing start="12" end="29"/></entities>"#,
        )
        .unwrap();
    engine
        .prebuild_region_index(tokens, &StandoffConfig::default())
        .unwrap();
    engine
        .prebuild_region_index(entities, &StandoffConfig::default())
        .unwrap();
    engine
}

fn check(name: &str, engine: &Engine, query: &str) {
    let actual = engine
        .explain(query)
        .unwrap_or_else(|e| panic!("{name}: explain failed: {e}"));
    let path = format!("{}/tests/golden/{name}.txt", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{name}: cannot read {path}: {e} (run with BLESS=1 to create)"));
    assert_eq!(
        actual, expected,
        "\n{name}: plan text changed. If intentional, regenerate with \
         `BLESS=1 cargo test --test explain_golden` and review the diff.\n"
    );
}

#[test]
fn standoff_step_with_pushdown_and_estimates() {
    let engine = corpus();
    check(
        "standoff_step_pushdown",
        &engine,
        r#"doc("entities.xml")//place/select-narrow::w"#,
    );
}

/// A rare pushed-down name (1 `place` across the corpus): the estimate
/// predicts the node-view candidate gather, and the pushed name test is
/// plan-guaranteed so the post-filter annotation reads `elided`.
#[test]
fn sparse_pushdown_node_view_access() {
    let engine = corpus();
    check(
        "standoff_step_node_view",
        &engine,
        r#"doc("entities.xml")//thing/select-narrow::place"#,
    );
}

#[test]
fn naive_strategy_without_pushdown() {
    let mut engine = corpus();
    engine.set_strategy(StandoffStrategy::NaiveNoCandidates);
    engine.set_candidate_pushdown(false);
    check(
        "naive_no_pushdown",
        &engine,
        r#"doc("entities.xml")//place/select-narrow::w"#,
    );
}

#[test]
fn flwor_with_hoisted_invariant() {
    let engine = corpus();
    check(
        "flwor_hoisted",
        &engine,
        r#"for $p in doc("entities.xml")//place
           where count(doc("tokens.xml")//w) > 2
           order by $p/@start
           return ($p/select-wide::w, count(doc("tokens.xml")//w))"#,
    );
}

#[test]
fn standoff_function_form_and_udf() {
    let engine = corpus();
    check(
        "standoff_fn_and_udf",
        &engine,
        r#"declare function hits($ctx) { count(select-narrow($ctx, doc("tokens.xml")//w)) };
           hits(doc("entities.xml")//thing)"#,
    );
}

#[test]
fn xmark_q2_shape() {
    // No corpus statistics here: the paper's Q2 rewrite explained
    // against an empty engine (estimates show zero entries).
    let engine = Engine::new();
    check(
        "xmark_q2",
        &engine,
        &standoff::xmark::queries::XmarkQuery::Q2.standoff("xmark-standoff.xml"),
    );
}
