//! Resource-governance determinism and admission control.
//!
//! The contract under test: a query that trips its [`Budget`] fails
//! with a **clean, deterministic error** — the recorded trip reason,
//! not the observation site, picks the [`QueryError`] variant, so the
//! same over-budget query fails identically across all four StandOff
//! strategies and any thread count — and a query that finishes under
//! budget is byte-identical to an ungoverned run (governance must
//! never change results, only refuse them). The executor half: a full
//! admission queue sheds with [`QueryError::Overloaded`] and the
//! `executor.*` counters make overload visible in `stats` output.

use std::time::Duration;

use standoff::core::{Budget, BudgetLimits, StandoffStrategy};
use standoff::xmark::queries::XmarkQuery;
use standoff::xmark::{generate, standoffify, XmarkConfig};
use standoff::xquery::{Engine, Executor, Governance, QueryError};

const SO_URI: &str = "xmark-standoff.xml";

fn engine_with(strategy: StandoffStrategy, threads: usize) -> Engine {
    let src = generate(&XmarkConfig::with_scale(0.002));
    let so = standoffify(&src, 7);
    let so_xml = standoff::xml::serialize_document(&so.doc, Default::default());
    let mut engine = Engine::new();
    engine.load_document(SO_URI, &so_xml).unwrap();
    engine.set_strategy(strategy);
    engine.set_threads(threads);
    engine
}

fn budget(limits: BudgetLimits) -> Option<Budget> {
    Some(Budget::new(limits))
}

/// A join-heavy query whose StandOff steps run under every strategy.
fn join_query() -> String {
    format!(r#"count(select-narrow(doc("{SO_URI}")//open_auction, doc("{SO_URI}")//bidder))"#)
}

/// The same join repeated enough that a short mid-flight deadline is
/// guaranteed to trip while kernels are still working.
fn heavy_query() -> String {
    format!(
        r#"for $i in 1 to 1000
           return count(select-narrow(doc("{SO_URI}")//open_auction, doc("{SO_URI}")//bidder))"#
    )
}

const MATRIX_THREADS: [usize; 2] = [1, 4];

#[test]
fn expired_deadline_is_timeout_across_all_strategies_and_threads() {
    for strategy in StandoffStrategy::ALL {
        for threads in MATRIX_THREADS {
            let mut engine = engine_with(strategy, threads);
            engine.set_budget(budget(BudgetLimits {
                deadline: Some(Duration::ZERO),
                ..BudgetLimits::default()
            }));
            let err = engine.run(&join_query()).unwrap_err();
            assert_eq!(
                err,
                QueryError::Timeout,
                "[{strategy}/threads={threads}] expired deadline must be a clean Timeout"
            );
        }
    }
}

#[test]
fn mid_flight_deadline_is_timeout_across_all_strategies_and_threads() {
    for strategy in StandoffStrategy::ALL {
        for threads in MATRIX_THREADS {
            let mut engine = engine_with(strategy, threads);
            engine.set_budget(budget(BudgetLimits {
                deadline: Some(Duration::from_millis(1)),
                ..BudgetLimits::default()
            }));
            // Wherever the trip is *observed* — a kernel poll deep in a
            // merge loop, an operator-boundary check, a morsel worker —
            // the reported error is the recorded reason: Timeout.
            let err = engine.run(&heavy_query()).unwrap_err();
            assert_eq!(
                err,
                QueryError::Timeout,
                "[{strategy}/threads={threads}] mid-flight deadline must be a clean Timeout"
            );
        }
    }
}

#[test]
fn result_cap_error_is_identical_across_all_strategies_and_threads() {
    let mut seen: Option<QueryError> = None;
    for strategy in StandoffStrategy::ALL {
        for threads in MATRIX_THREADS {
            let mut engine = engine_with(strategy, threads);
            engine.set_budget(budget(BudgetLimits {
                max_results: Some(8),
                ..BudgetLimits::default()
            }));
            let err = engine.run(&join_query()).unwrap_err();
            assert!(
                matches!(err, QueryError::ResultLimit(_)),
                "[{strategy}/threads={threads}] expected ResultLimit, got {err:?}"
            );
            // Cardinality is charged at operator boundaries, which are
            // plan-shaped — so not just the variant but the *message*
            // agrees across the whole matrix.
            match &seen {
                None => seen = Some(err),
                Some(first) => assert_eq!(
                    &err, first,
                    "[{strategy}/threads={threads}] result-cap error diverged"
                ),
            }
        }
    }
}

#[test]
fn cancellation_is_clean_across_all_strategies_and_threads() {
    for strategy in StandoffStrategy::ALL {
        for threads in MATRIX_THREADS {
            let mut engine = engine_with(strategy, threads);
            let handle = Budget::cancel_token();
            handle.cancel();
            engine.set_budget(Some(handle));
            let err = engine.run(&join_query()).unwrap_err();
            assert_eq!(
                err,
                QueryError::Cancelled,
                "[{strategy}/threads={threads}] cancelled budget must report Cancelled"
            );
        }
    }
}

#[test]
fn scratch_cap_refuses_cleanly() {
    // Scratch is what the join *buffers* pin, which depends on the
    // algorithm — so this cap is exercised per strategy, not asserted
    // identical across them.
    let mut engine = engine_with(StandoffStrategy::LoopLiftedMergeJoin, 1);
    engine.set_budget(budget(BudgetLimits {
        max_scratch_bytes: Some(1),
        ..BudgetLimits::default()
    }));
    let err = engine.run(&join_query()).unwrap_err();
    assert_eq!(
        err,
        QueryError::ResultLimit("scratch memory cap exceeded".into())
    );
}

#[test]
fn under_budget_runs_are_byte_identical_to_ungoverned() {
    let generous = BudgetLimits {
        deadline: Some(Duration::from_secs(120)),
        max_results: Some(u64::MAX / 2),
        max_scratch_bytes: Some(u64::MAX / 2),
    };
    let queries: Vec<String> = XmarkQuery::ALL
        .iter()
        .map(|q| q.standoff(SO_URI))
        .chain([join_query()])
        .collect();
    for strategy in StandoffStrategy::ALL {
        for threads in MATRIX_THREADS {
            let mut governed = engine_with(strategy, threads);
            governed.set_budget(budget(generous));
            let mut plain = engine_with(strategy, threads);
            for text in &queries {
                // A fresh budget per query: the caps are per-request.
                governed.set_budget(budget(generous));
                let g = governed
                    .run(text)
                    .unwrap_or_else(|e| panic!("[{strategy}/threads={threads}] {text}: {e}"));
                let p = plain.run(text).unwrap();
                assert_eq!(
                    g.as_serialized(),
                    p.as_serialized(),
                    "[{strategy}/threads={threads}] governed result diverged: {text}"
                );
                assert_eq!(g.as_strings(), p.as_strings());
            }
        }
    }
}

// ---- executor admission control ----

fn shared_fixture() -> standoff::xquery::SharedEngine {
    let mut engine = Engine::new();
    engine
        .load_document(
            "d.xml",
            r#"<a><w start="0" end="9"/><w start="3" end="5"/><w start="12" end="14"/></a>"#,
        )
        .unwrap();
    engine.into_shared()
}

#[test]
fn zero_capacity_queue_sheds_with_overloaded() {
    let exec = Executor::governed(
        shared_fixture(),
        1,
        Governance {
            queue_cap: Some(0),
            ..Governance::default()
        },
    );
    let err = exec.run_governed("1 + 1").unwrap_err();
    assert!(
        matches!(err, QueryError::Overloaded(_)),
        "expected Overloaded, got {err:?}"
    );
    let snapshot = exec.metrics_snapshot();
    assert_eq!(snapshot.counters.get("executor.sheds"), Some(&1));
    // Shed requests never occupy the queue, so no high-water mark.
    assert_eq!(snapshot.counters.get("executor.queue_depth_hwm"), Some(&0));
    assert_eq!(exec.queue_depth(), 0, "shed request must release its slot");
}

#[test]
fn admission_counters_show_up_in_stats() {
    let exec = Executor::governed(
        shared_fixture(),
        1,
        Governance {
            queue_cap: Some(4),
            deadline: Some(Duration::ZERO),
            ..Governance::default()
        },
    );
    let err = exec.run_governed("1 + 1").unwrap_err();
    assert_eq!(err, QueryError::Timeout);
    let snapshot = exec.metrics_snapshot();
    assert_eq!(snapshot.counters.get("executor.timeouts"), Some(&1));
    assert_eq!(snapshot.counters.get("executor.queue_depth_hwm"), Some(&1));
    assert_eq!(snapshot.counters.get("executor.sheds"), Some(&0));
}

#[test]
fn governed_batch_times_out_every_query_and_stays_complete() {
    let exec = Executor::governed(
        shared_fixture(),
        2,
        Governance {
            deadline: Some(Duration::ZERO),
            ..Governance::default()
        },
    );
    let queries = vec!["1 + 1"; 8];
    let results = exec.run_batch(&queries);
    assert_eq!(results.len(), queries.len(), "batch must stay complete");
    for result in &results {
        assert_eq!(result.as_ref().unwrap_err(), &QueryError::Timeout);
    }
    let snapshot = exec.metrics_snapshot();
    assert_eq!(
        snapshot.counters.get("executor.timeouts"),
        Some(&(queries.len() as u64))
    );
}

#[test]
fn ungoverned_executor_still_runs_requests() {
    // `run_governed` without any policy: admission always succeeds,
    // queries run without a budget.
    let exec = Executor::new(shared_fixture(), 1);
    let result = exec.run_governed(r#"count(doc("d.xml")//w)"#).unwrap();
    assert_eq!(result.as_strings(), ["3"]);
    let snapshot = exec.metrics_snapshot();
    assert_eq!(snapshot.counters.get("executor.sheds"), Some(&0));
}
