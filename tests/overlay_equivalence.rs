//! Merge-on-read equivalence: a corpus mounted as *base + delta
//! overlay* must answer every query **byte-identically** to the same
//! corpus after [`standoff::store::compact`] folded the delta into a
//! fresh snapshot. This is the contract that makes compaction a pure
//! space/speed optimization — callers can compact (or not) without any
//! observable change.
//!
//! Coverage: randomized cross-layer corpora and delta batches
//! (proptest), the XMark §4.6 workload with a hand-built delta, and all
//! four join strategies on both sides of every comparison.

use proptest::prelude::*;

use standoff::core::{StandoffConfig, StandoffStrategy};
use standoff::store::{DeltaOp, DeltaSet, LayerSet};
use standoff::xml::parse_document;
use standoff::xquery::{Engine, EngineOptions};

const STRATEGIES: [StandoffStrategy; 4] = [
    StandoffStrategy::NaiveNoCandidates,
    StandoffStrategy::NaiveWithCandidates,
    StandoffStrategy::BasicMergeJoin,
    StandoffStrategy::LoopLiftedMergeJoin,
];

fn engine_with(strategy: StandoffStrategy) -> Engine {
    Engine::with_options(EngineOptions {
        strategy,
        ..EngineOptions::default()
    })
}

/// Run `queries` against (set + delta, merge-on-read) and against
/// compact(set, delta), under every strategy, and demand byte-identical
/// serialized answers.
fn assert_overlay_equals_compacted(set: &LayerSet, delta: &DeltaSet, queries: &[String]) {
    let folded = standoff::store::compact(set, delta).expect("compaction succeeds");
    for strategy in STRATEGIES {
        let mut overlay = engine_with(strategy);
        overlay
            .mount_overlay(set.clone(), delta)
            .expect("overlay mounts");
        let mut compacted = engine_with(strategy);
        compacted
            .mount_store(folded.clone())
            .expect("compacted snapshot mounts");
        for query in queries {
            let a = overlay.run(query).expect("overlay query runs").as_xml();
            let b = compacted.run(query).expect("compacted query runs").as_xml();
            assert_eq!(a, b, "overlay != compacted for {strategy:?}: {query}");
        }
    }
}

// ---- randomized cross-layer corpora ----

/// Random annotation spans (start, end), sorted by start.
fn spans_strategy(max: usize) -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0i64..120, 1i64..25), 1..max).prop_map(|raw| {
        let mut spans: Vec<(i64, i64)> = raw.into_iter().map(|(s, l)| (s, s + l)).collect();
        spans.sort_unstable();
        spans
    })
}

fn layer_doc(root: &str, elem: &str, spans: &[(i64, i64)]) -> standoff::xml::Document {
    let mut xml = format!("<{root}>");
    for (k, (s, e)) in spans.iter().enumerate() {
        xml.push_str(&format!(r#"<{elem} n="{k}" start="{s}" end="{e}"/>"#));
    }
    xml.push_str(&format!("</{root}>"));
    parse_document(&xml).unwrap()
}

const URI: &str = "mem://prop";

/// Tree navigation, attribute reads, and every join axis across the two
/// annotation layers (context layer != target layer, so merge-on-read
/// has to interleave base and delta regions of *both* sides).
fn cross_layer_queries() -> Vec<String> {
    let mut q = vec![
        format!(r#"layer("{URI}", "tokens")//w"#),
        format!(r#"count(layer("{URI}", "entities")//person)"#),
        format!(r#"for $w in layer("{URI}", "tokens")//w return string($w/@start)"#),
    ];
    for axis in [
        "select-narrow",
        "select-wide",
        "reject-narrow",
        "reject-wide",
    ] {
        q.push(format!(
            r#"for $p in layer("{URI}", "entities")//person return $p/{axis}::w"#
        ));
        q.push(format!(
            r#"count(layer("{URI}", "tokens")//w/{axis}::person)"#
        ));
    }
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary two-layer corpora with arbitrary (valid) insert and
    /// retract batches: querying through the overlay is byte-identical
    /// to querying the compacted snapshot.
    #[test]
    fn overlay_matches_compaction(
        token_spans in spans_strategy(14),
        entity_spans in spans_strategy(8),
        inserts in prop::collection::vec((0i64..120, 1i64..25, 0usize..2), 0..6),
        retract_picks in prop::collection::vec(0usize..64, 0..6),
    ) {
        let base = parse_document(
            "<text>the quick brown fox jumps over the lazy dog again and again</text>",
        )
        .unwrap();
        let mut set = LayerSet::build(URI, base, StandoffConfig::default()).unwrap();
        set.add_layer("tokens", layer_doc("tokens", "w", &token_spans), StandoffConfig::default())
            .unwrap();
        set.add_layer(
            "entities",
            layer_doc("entities", "person", &entity_spans),
            StandoffConfig::default(),
        )
        .unwrap();

        // Valid-by-construction delta: inserts go to alternating layers;
        // retracts pick from the spans we just indexed. Duplicate picks
        // double-retract, which `apply` rejects — skip those.
        let mut delta = DeltaSet::new();
        for (k, (s, l, layer_pick)) in inserts.iter().enumerate() {
            let (layer, name) = if *layer_pick == 0 { ("tokens", "w") } else { ("entities", "person") };
            delta.apply(
                DeltaOp::Insert {
                    layer: layer.into(),
                    name: name.into(),
                    start: *s,
                    end: s + l,
                    attrs: vec![("k".into(), k.to_string())],
                },
                &set,
            )
            .unwrap();
        }
        for pick in &retract_picks {
            let (layer, name, spans): (&str, &str, &[(i64, i64)]) = if pick % 2 == 0 {
                ("tokens", "w", &token_spans)
            } else {
                ("entities", "person", &entity_spans)
            };
            let (s, e) = spans[(pick / 2) % spans.len()];
            let _ = delta.apply(
                DeltaOp::Retract { layer: layer.into(), name: name.into(), start: s, end: e },
                &set,
            );
        }

        assert_overlay_equals_compacted(&set, &delta, &cross_layer_queries());
    }
}

// ---- the XMark workload ----

/// XMark Q1/Q2/Q6/Q7 (the paper's §4.6 rewrites) over a standoffified
/// XMark corpus mounted as an annotation layer, with a delta that
/// retracts real annotations and inserts new ones: overlay and
/// compacted snapshot agree byte-for-byte under all four strategies.
#[test]
fn xmark_overlay_matches_compaction() {
    use standoff::xmark::queries::XmarkQuery;
    use standoff::xmark::{generate, standoffify, XmarkConfig};

    let src = generate(&XmarkConfig::with_scale(0.002));
    let so = standoffify(&src, 7);
    let mut set = LayerSet::build("xmark", src, StandoffConfig::default()).unwrap();
    set.add_layer("anno", so.doc.clone(), StandoffConfig::default())
        .unwrap();

    // Retract some real annotations (regions read straight off the
    // layer document) and insert fresh ones next to them.
    let doc = set.layer("anno").unwrap().doc().clone();
    let region_of = |pre: u32| -> (i64, i64) {
        let mut start = None;
        let mut end = None;
        for attr in doc.attributes(pre) {
            let a = attr.attr_index().unwrap();
            match doc.names().lexical(doc.attr_name_id(a)).as_str() {
                "start" => start = doc.attr_value(a).parse().ok(),
                "end" => end = doc.attr_value(a).parse().ok(),
                _ => {}
            }
        }
        (start.unwrap(), end.unwrap())
    };
    let mut delta = DeltaSet::new();
    for (name, take) in [("bold", 2usize), ("emph", 2), ("increase", 1)] {
        for &pre in doc.elements_named(name).iter().take(take) {
            let (s, e) = region_of(pre);
            delta
                .apply(
                    DeltaOp::Retract {
                        layer: "anno".into(),
                        name: name.into(),
                        start: s,
                        end: e,
                    },
                    &set,
                )
                .unwrap();
        }
    }
    for (k, &pre) in doc.elements_named("name").iter().take(3).enumerate() {
        let (s, e) = region_of(pre);
        delta
            .apply(
                DeltaOp::Insert {
                    layer: "anno".into(),
                    name: "highlight".into(),
                    start: s,
                    end: e,
                    attrs: vec![("n".into(), k.to_string())],
                },
                &set,
            )
            .unwrap();
    }
    assert!(delta.insert_count() > 0 && delta.retract_count() > 0);

    // The standoff rewrites address the annotation layer by its mounted
    // URI (`base-uri#layer`); add overlay-sensitive probes on top.
    let mut queries: Vec<String> = [
        XmarkQuery::Q1,
        XmarkQuery::Q2,
        XmarkQuery::Q6,
        XmarkQuery::Q7,
    ]
    .iter()
    .map(|q| q.standoff("xmark#anno"))
    .collect();
    queries.push(r#"count(doc("xmark#anno")//bold)"#.into());
    queries.push(r#"doc("xmark#anno")//highlight"#.into());
    queries.push(r#"for $h in doc("xmark#anno")//highlight return $h/select-wide::item"#.into());

    assert_overlay_equals_compacted(&set, &delta, &queries);
}

/// The dense candidate kernel through the overlay seam: a corpus big
/// and dense enough that the scan picks the bitset representation (and
/// splits into morsels at `threads = 4`), with retractions that force
/// the impure post-filter. Overlay and compacted answers must agree
/// byte-for-byte under every strategy and thread count, and the dense
/// counters must actually have fired.
#[test]
fn dense_kernel_matches_through_overlay() {
    let base_text: String = "x".repeat(20_000);
    let base = parse_document(&format!("<text>{base_text}</text>")).unwrap();
    let mut set = LayerSet::build(URI, base, StandoffConfig::default()).unwrap();
    let token_spans: Vec<(i64, i64)> = (0..9_000).map(|k| (k * 2, k * 2 + 1)).collect();
    set.add_layer(
        "tokens",
        layer_doc("tokens", "w", &token_spans),
        StandoffConfig::default(),
    )
    .unwrap();
    let big_spans: Vec<(i64, i64)> = (0..4).map(|k| (k * 4_500, (k + 1) * 4_500 - 1)).collect();
    set.add_layer(
        "spans",
        layer_doc("spans", "big", &big_spans),
        StandoffConfig::default(),
    )
    .unwrap();

    // Retract every 100th token: the overlay read path must subtract
    // them *after* the dense scan, never per entry.
    let mut delta = DeltaSet::new();
    for &(s, e) in token_spans.iter().step_by(100) {
        delta
            .apply(
                DeltaOp::Retract {
                    layer: "tokens".into(),
                    name: "w".into(),
                    start: s,
                    end: e,
                },
                &set,
            )
            .unwrap();
    }

    let queries = [
        format!(r#"count(layer("{URI}", "spans")//big/select-narrow::w)"#),
        format!(r#"layer("{URI}", "spans")//big[@n = "2"]/select-narrow::w"#),
    ];
    let folded = standoff::store::compact(&set, &delta).unwrap();
    let mut reference: Option<Vec<String>> = None;
    for strategy in STRATEGIES {
        for threads in [1usize, 4] {
            let mut overlay = engine_with(strategy);
            overlay.set_threads(threads);
            overlay.mount_overlay(set.clone(), &delta).unwrap();
            let mut compacted = engine_with(strategy);
            compacted.set_threads(threads);
            compacted.mount_store(folded.clone()).unwrap();
            let mut answers = Vec::new();
            for query in &queries {
                let a = overlay.run(query).unwrap().as_xml();
                let b = compacted.run(query).unwrap().as_xml();
                assert_eq!(
                    a, b,
                    "overlay != compacted: {strategy:?} x{threads} {query}"
                );
                answers.push(a);
            }
            match &reference {
                None => reference = Some(answers),
                Some(r) => assert_eq!(&answers, r, "{strategy:?} x{threads} diverged"),
            }
            // The dense kernel really ran on the strategies that
            // materialize candidate entries (the naive nested loops
            // probe per node and never touch the scan kernel).
            if matches!(
                strategy,
                StandoffStrategy::BasicMergeJoin | StandoffStrategy::LoopLiftedMergeJoin
            ) {
                let stats = overlay.join_stats();
                assert!(
                    stats.candidate_repr_dense > 0,
                    "{strategy:?} x{threads}: dense repr never chosen: {stats:?}"
                );
            }
        }
    }
    // 9000 tokens minus 90 retractions, each token inside exactly one big.
    assert_eq!(
        reference.unwrap()[0],
        (9_000 - 90).to_string(),
        "retractions visible through the dense path"
    );
}

// ---- documented divergence pin ----

/// Pins the divergence documented since the overlay work landed (see
/// README "Writable layers" and "Durability"): pending inserts are
/// *query-visible* through the merge-on-read overlay, but serializing
/// a whole overlaid document **root** omits them — the inserts live in
/// sibling delta documents, and root serialization walks only the base
/// tree. Compaction folds them in, so `compact` first for
/// full-document output.
///
/// If this test fails because the overlay serialization started
/// *including* the insert, the divergence has been fixed: delete this
/// pin and the README caveat together.
#[test]
fn overlaid_root_serialization_omits_pending_inserts_divergence_pin() {
    let base = parse_document("<text>Alice met Bob</text>").unwrap();
    let mut set = LayerSet::build("mem://pin", base, StandoffConfig::default()).unwrap();
    let tokens = parse_document(
        r#"<tokens><w start="0" end="4"/><w start="6" end="8"/><w start="10" end="12"/></tokens>"#,
    )
    .unwrap();
    set.add_layer("tokens", tokens, StandoffConfig::default())
        .unwrap();
    let mut delta = DeltaSet::new();
    delta
        .apply(
            DeltaOp::Insert {
                layer: "tokens".into(),
                name: "ner".into(),
                start: 0,
                end: 4,
                attrs: vec![("class".into(), "PER".into())],
            },
            &set,
        )
        .unwrap();

    let mut overlay = Engine::new();
    overlay.mount_overlay(set.clone(), &delta).unwrap();
    // The insert is fully query-visible through the overlay...
    assert_eq!(
        overlay
            .run(r#"count(layer("mem://pin", "tokens")//ner)"#)
            .unwrap()
            .as_xml(),
        "1"
    );
    // ...but the serialized document root omits it (the divergence).
    let overlaid_root = overlay
        .run(r#"layer("mem://pin", "tokens")"#)
        .unwrap()
        .as_xml();
    assert!(
        !overlaid_root.contains("<ner"),
        "divergence fixed? overlaid root now serializes pending inserts: {overlaid_root}"
    );
    // Compaction is the documented way to get full-document output.
    let folded = standoff::store::compact(&set, &delta).unwrap();
    let mut compacted = Engine::new();
    compacted.mount_store(folded).unwrap();
    let compacted_root = compacted
        .run(r#"layer("mem://pin", "tokens")"#)
        .unwrap()
        .as_xml();
    assert!(
        compacted_root.contains("<ner"),
        "compacted root must include the folded insert: {compacted_root}"
    );
}
