//! `standoff-xq` CLI integration: the `index` → `inspect` → `query
//! --store` workflow (acceptance: `standoff-xq index <xml> -o <snap>`
//! then `standoff-xq query --store <snap>` works end-to-end).

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_standoff-xq"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("standoff-xq-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write(dir: &std::path::Path, name: &str, content: &str) -> String {
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path.to_string_lossy().into_owned()
}

fn assert_success(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn index_then_query_store() {
    let dir = tmp_dir("basic");
    let base = write(
        &dir,
        "corpus.xml",
        r#"<video>
             <shot id="Intro" start="0" end="8"/>
             <shot id="Interview" start="8" end="64"/>
             <shot id="Outro" start="64" end="94"/>
           </video>"#,
    );
    let snap = dir.join("corpus.snap").to_string_lossy().into_owned();

    let out = bin()
        .args(["index", &base, "-o", &snap, "--uri", "corpus"])
        .output()
        .unwrap();
    assert_success(&out, "index");

    let out = bin()
        .args([
            "query",
            "--store",
            &snap,
            "--query",
            r#"doc("corpus")//shot[@start = 8]/@id"#,
        ])
        .output()
        .unwrap();
    assert_success(&out, "query --store");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim(),
        r#"id="Interview""#
    );
}

#[test]
fn index_with_layers_cross_layer_query_and_inspect() {
    let dir = tmp_dir("layers");
    let base = write(&dir, "base.xml", "<text>Alice met Bob</text>");
    let tokens = write(
        &dir,
        "tokens.xml",
        r#"<tokens>
             <w word="Alice" start="0" end="4"/>
             <w word="met" start="6" end="8"/>
             <w word="Bob" start="10" end="12"/>
           </tokens>"#,
    );
    let entities = write(
        &dir,
        "entities.xml",
        r#"<entities><person start="0" end="4"/><person start="10" end="12"/></entities>"#,
    );
    let snap = dir.join("corpus.snap").to_string_lossy().into_owned();

    let out = bin()
        .args([
            "index",
            &base,
            "-o",
            &snap,
            "--uri",
            "corpus",
            "--layer",
            &format!("tokens={tokens}"),
            "--layer",
            &format!("entities={entities}"),
        ])
        .output()
        .unwrap();
    assert_success(&out, "index --layer");

    // Cross-layer StandOff query straight off the snapshot.
    let out = bin()
        .args([
            "query",
            "--store",
            &snap,
            "--query",
            r#"doc("corpus#entities")//person/select-narrow::w/@word"#,
        ])
        .output()
        .unwrap();
    assert_success(&out, "cross-layer query");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim(),
        r#"word="Alice" word="Bob""#
    );

    // Inspect reports the layers.
    let out = bin().args(["inspect", &snap]).output().unwrap();
    assert_success(&out, "inspect");
    let report = String::from_utf8_lossy(&out.stdout).into_owned();
    for needle in ["uri:     corpus", "layers:  3", "tokens", "entities"] {
        assert!(
            report.contains(needle),
            "inspect output missing {needle:?}:\n{report}"
        );
    }
}

#[test]
fn legacy_flag_form_still_works() {
    let dir = tmp_dir("legacy");
    let sample = write(
        &dir,
        "sample.xml",
        r#"<sample>
             <shot id="Intro" start="0" end="8"/>
             <music artist="U2" start="0" end="31"/>
           </sample>"#,
    );
    let out = bin()
        .args([
            "--load",
            &format!("sample.xml={sample}"),
            "--query",
            r#"doc("sample.xml")//music/select-wide::shot/@id"#,
        ])
        .output()
        .unwrap();
    assert_success(&out, "legacy query");
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), r#"id="Intro""#);
}

#[test]
fn bad_snapshot_and_bad_args_fail_cleanly() {
    let dir = tmp_dir("errors");
    let junk = write(&dir, "junk.snap", "not a snapshot");
    let out = bin()
        .args(["query", "--store", &junk, "--query", "1"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad magic"));

    let out = bin().args(["index", "--frobnicate"]).output().unwrap();
    assert!(!out.status.success());

    let out = bin().args(["query"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no query"));
}
