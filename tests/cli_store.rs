//! `standoff-xq` CLI integration: the `index` → `inspect` → `query
//! --store` workflow (acceptance: `standoff-xq index <xml> -o <snap>`
//! then `standoff-xq query --store <snap>` works end-to-end).

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_standoff-xq"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("standoff-xq-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write(dir: &std::path::Path, name: &str, content: &str) -> String {
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path.to_string_lossy().into_owned()
}

fn assert_success(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn index_then_query_store() {
    let dir = tmp_dir("basic");
    let base = write(
        &dir,
        "corpus.xml",
        r#"<video>
             <shot id="Intro" start="0" end="8"/>
             <shot id="Interview" start="8" end="64"/>
             <shot id="Outro" start="64" end="94"/>
           </video>"#,
    );
    let snap = dir.join("corpus.snap").to_string_lossy().into_owned();

    let out = bin()
        .args(["index", &base, "-o", &snap, "--uri", "corpus"])
        .output()
        .unwrap();
    assert_success(&out, "index");

    let out = bin()
        .args([
            "query",
            "--store",
            &snap,
            "--query",
            r#"doc("corpus")//shot[@start = 8]/@id"#,
        ])
        .output()
        .unwrap();
    assert_success(&out, "query --store");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim(),
        r#"id="Interview""#
    );
}

#[test]
fn index_with_layers_cross_layer_query_and_inspect() {
    let dir = tmp_dir("layers");
    let base = write(&dir, "base.xml", "<text>Alice met Bob</text>");
    let tokens = write(
        &dir,
        "tokens.xml",
        r#"<tokens>
             <w word="Alice" start="0" end="4"/>
             <w word="met" start="6" end="8"/>
             <w word="Bob" start="10" end="12"/>
           </tokens>"#,
    );
    let entities = write(
        &dir,
        "entities.xml",
        r#"<entities><person start="0" end="4"/><person start="10" end="12"/></entities>"#,
    );
    let snap = dir.join("corpus.snap").to_string_lossy().into_owned();

    let out = bin()
        .args([
            "index",
            &base,
            "-o",
            &snap,
            "--uri",
            "corpus",
            "--layer",
            &format!("tokens={tokens}"),
            "--layer",
            &format!("entities={entities}"),
        ])
        .output()
        .unwrap();
    assert_success(&out, "index --layer");

    // Cross-layer StandOff query straight off the snapshot.
    let out = bin()
        .args([
            "query",
            "--store",
            &snap,
            "--query",
            r#"doc("corpus#entities")//person/select-narrow::w/@word"#,
        ])
        .output()
        .unwrap();
    assert_success(&out, "cross-layer query");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim(),
        r#"word="Alice" word="Bob""#
    );

    // Inspect reports the layers.
    let out = bin().args(["inspect", &snap]).output().unwrap();
    assert_success(&out, "inspect");
    let report = String::from_utf8_lossy(&out.stdout).into_owned();
    for needle in ["uri:     corpus", "layers:  3", "tokens", "entities"] {
        assert!(
            report.contains(needle),
            "inspect output missing {needle:?}:\n{report}"
        );
    }
}

/// Build the two-layer snapshot once for the observability smoke tests.
fn obs_snapshot(tag: &str) -> (PathBuf, String) {
    let dir = tmp_dir(tag);
    let base = write(&dir, "base.xml", "<text>Alice met Bob</text>");
    let tokens = write(
        &dir,
        "tokens.xml",
        r#"<tokens>
             <w word="Alice" start="0" end="4"/>
             <w word="met" start="6" end="8"/>
             <w word="Bob" start="10" end="12"/>
           </tokens>"#,
    );
    let snap = dir.join("corpus.snap").to_string_lossy().into_owned();
    let out = bin()
        .args([
            "index",
            &base,
            "-o",
            &snap,
            "--uri",
            "corpus",
            "--layer",
            &format!("tokens={tokens}"),
        ])
        .output()
        .unwrap();
    assert_success(&out, "index");
    (dir, snap)
}

#[test]
fn query_profile_json_and_analyze() {
    let (_dir, snap) = obs_snapshot("profile");
    let query = r#"doc("corpus#tokens")//w[@word = "Bob"]"#;

    // --profile renders the annotated tree on stderr, result on stdout.
    let out = bin()
        .args(["query", "--store", &snap, "--profile", "--query", query])
        .output()
        .unwrap();
    assert_success(&out, "query --profile");
    assert!(String::from_utf8_lossy(&out.stdout).contains(r#"word="Bob""#));
    let profile = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        profile.contains("-- actual #"),
        "no operator annotations:\n{profile}"
    );

    // --profile-json emits one JSON object on stderr.
    let out = bin()
        .args([
            "query",
            "--store",
            &snap,
            "--profile-json",
            "--query",
            query,
        ])
        .output()
        .unwrap();
    assert_success(&out, "query --profile-json");
    let json = String::from_utf8_lossy(&out.stderr).into_owned();
    for needle in [
        "\"operators\"",
        "\"passes\"",
        "\"wall_ns\"",
        "\"rows\"",
        "\"kind\"",
    ] {
        assert!(json.contains(needle), "missing {needle}:\n{json}");
    }

    // explain --analyze executes and annotates each operator.
    let out = bin()
        .args(["explain", "--store", &snap, "--analyze", "--query", query])
        .output()
        .unwrap();
    assert_success(&out, "explain --analyze");
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("-- actual #"), "{text}");
    assert!(text.contains("result: 1 item(s)"), "{text}");
}

#[test]
fn stats_dumps_metrics_registry() {
    let (dir, snap) = obs_snapshot("stats");
    let queries = write(
        &dir,
        "queries.xq",
        "count(doc(\"corpus#tokens\")//w)\ndoc(\"corpus#tokens\")//w[@word = \"met\"]\n",
    );
    let out = bin()
        .args(["stats", "--store", &snap, &queries])
        .output()
        .unwrap();
    assert_success(&out, "stats");
    let json = String::from_utf8_lossy(&out.stdout).into_owned();
    for needle in [
        "\"counters\"",
        "\"histograms\"",
        "\"query.executions\": 2",
        "\"executor.batches\": 1",
        "\"plan_cache.misses\"",
        "\"engine.mounts\": 1",
        "\"store.snapshots_opened\": 1",
        "\"query.exec_ns\"",
    ] {
        assert!(
            json.contains(needle),
            "stats output missing {needle}:\n{json}"
        );
    }
}

#[test]
fn inspect_sections_prints_per_section_sizes() {
    let (_dir, snap) = obs_snapshot("sections");
    let out = bin()
        .args(["inspect", &snap, "--sections"])
        .output()
        .unwrap();
    assert_success(&out, "inspect --sections");
    let report = String::from_utf8_lossy(&out.stdout).into_owned();
    for needle in ["layer.header", "doc.kind", "doc.name", "byte(s)"] {
        assert!(
            report.contains(needle),
            "inspect --sections missing {needle}:\n{report}"
        );
    }
    // Without the flag the section lines stay hidden.
    let out = bin().args(["inspect", &snap]).output().unwrap();
    assert_success(&out, "inspect");
    assert!(!String::from_utf8_lossy(&out.stdout).contains("doc.kind"));
}

#[test]
fn legacy_flag_form_still_works() {
    let dir = tmp_dir("legacy");
    let sample = write(
        &dir,
        "sample.xml",
        r#"<sample>
             <shot id="Intro" start="0" end="8"/>
             <music artist="U2" start="0" end="31"/>
           </sample>"#,
    );
    let out = bin()
        .args([
            "--load",
            &format!("sample.xml={sample}"),
            "--query",
            r#"doc("sample.xml")//music/select-wide::shot/@id"#,
        ])
        .output()
        .unwrap();
    assert_success(&out, "legacy query");
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), r#"id="Intro""#);
}

#[test]
fn bad_snapshot_and_bad_args_fail_cleanly() {
    let dir = tmp_dir("errors");
    let junk = write(&dir, "junk.snap", "not a snapshot");
    let out = bin()
        .args(["query", "--store", &junk, "--query", "1"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad magic"));

    let out = bin().args(["index", "--frobnicate"]).output().unwrap();
    assert!(!out.status.success());

    let out = bin().args(["query"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no query"));
}
