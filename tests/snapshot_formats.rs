//! Snapshot-format integration: the legacy (version 1) and columnar
//! (version 3/4) formats must be *observably identical* to the query
//! engine, and the committed legacy fixture must never silently rot —
//! nor may a damaged copy of it panic the reader.

use standoff::core::StandoffConfig;
use standoff::store::{write_snapshot, write_snapshot_legacy, LayerSet, Snapshot};
use standoff::xmark::queries::XmarkQuery;
use standoff::xmark::{generate, standoffify, XmarkConfig};
use standoff::xquery::Engine;

const SO_URI: &str = "xmark-standoff.xml";

/// An XMark StandOff corpus as a two-layer set: the standoffified
/// document as base plus a re-parsed shadow copy as a sibling layer
/// (exercises the multi-layer sections of both formats).
fn xmark_set(scale: f64) -> LayerSet {
    let so = standoffify(&generate(&XmarkConfig::with_scale(scale)), 7);
    let shadow_xml = standoff::xml::serialize_document(&so.doc, Default::default());
    let shadow = standoff::xml::parse_document(&shadow_xml).unwrap();
    let mut set = LayerSet::build(SO_URI, so.doc, StandoffConfig::default()).unwrap();
    set.add_layer("shadow", shadow, StandoffConfig::default())
        .unwrap();
    set
}

fn queries() -> Vec<String> {
    let mut qs: Vec<String> = [
        XmarkQuery::Q1,
        XmarkQuery::Q2,
        XmarkQuery::Q6,
        XmarkQuery::Q7,
    ]
    .iter()
    .map(|q| q.standoff(SO_URI))
    .collect();
    qs.push(format!(
        r#"count(doc("{SO_URI}")//open_auction/select-narrow::reserve)"#
    ));
    qs.push(format!(
        r#"count(doc("{SO_URI}")//open_auction/select-wide::node())"#
    ));
    // Cross-layer: narrow base annotations by the shadow layer.
    qs.push(format!(
        r#"count(doc("{SO_URI}#shadow")//item/select-narrow::name)"#
    ));
    qs
}

fn answers(engine: &mut Engine) -> Vec<String> {
    queries()
        .iter()
        .map(|q| engine.run(q).unwrap().as_xml())
        .collect()
}

/// The acceptance gate: byte-identical XMark query results across a
/// direct in-memory mount, a legacy-format round trip, and a v3
/// round trip.
#[test]
fn v1_and_v3_round_trips_answer_queries_byte_identically() {
    let set = xmark_set(0.002);

    let mut legacy_bytes = Vec::new();
    write_snapshot_legacy(&set, &mut legacy_bytes).unwrap();
    let mut v3_bytes = Vec::new();
    write_snapshot(&set, &mut v3_bytes).unwrap();

    let mut direct = Engine::new();
    direct.mount_store(set).unwrap();
    let expected = answers(&mut direct);
    assert!(expected.iter().any(|a| !a.is_empty()));

    for (bytes, what) in [(legacy_bytes, "legacy v1"), (v3_bytes, "v3")] {
        let snapshot = Snapshot::from_bytes(bytes).unwrap();
        let mut engine = Engine::new();
        engine.mount_snapshot(&snapshot).unwrap();
        assert_eq!(answers(&mut engine), expected, "{what} mount diverges");
    }
}

// ---- committed legacy fixture ----

/// The sources `tests/fixtures/corpus_v1.snap` was built from (CLI:
/// `index base.xml -o corpus_v1.snap --legacy-format --uri corpus
/// --layer tokens=… --layer entities=…`).
const FIXTURE_BASE: &str = "<text>Alice met Bob</text>";
const FIXTURE_TOKENS: &str = r#"<tokens><w word="Alice" start="0" end="4"/><w word="met" start="6" end="8"/><w word="Bob" start="10" end="12"/></tokens>"#;
const FIXTURE_ENTITIES: &str =
    r#"<entities><person start="0" end="4"/><person start="10" end="12"/></entities>"#;

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/corpus_v1.snap")
}

fn fixture_queries() -> [&'static str; 4] {
    [
        r#"doc("corpus#entities")//person/select-narrow::w/@word"#,
        r#"count(doc("corpus#tokens")//w)"#,
        r#"doc("corpus#tokens")//w[@word = "met"]/select-wide::person"#,
        r#"string(doc("corpus"))"#,
    ]
}

/// The committed v1 file must keep loading through the legacy path and
/// answering queries byte-identically to a freshly built corpus — this
/// is the test that keeps the legacy reader from rotting.
#[test]
fn committed_v1_fixture_loads_and_answers_queries() {
    let snapshot = Snapshot::open(fixture_path()).unwrap();
    assert_eq!(
        snapshot.version(),
        1,
        "fixture must exercise the legacy path"
    );
    assert_eq!(
        snapshot.layer_names().collect::<Vec<_>>(),
        ["base", "tokens", "entities"]
    );

    let mut mounted = Engine::new();
    mounted.mount_snapshot(&snapshot).unwrap();

    // Reference: the same corpus built from the embedded sources.
    let mut set = LayerSet::build(
        "corpus",
        standoff::xml::parse_document(FIXTURE_BASE).unwrap(),
        StandoffConfig::default(),
    )
    .unwrap();
    for (name, xml) in [("tokens", FIXTURE_TOKENS), ("entities", FIXTURE_ENTITIES)] {
        set.add_layer(
            name,
            standoff::xml::parse_document(xml).unwrap(),
            StandoffConfig::default(),
        )
        .unwrap();
    }
    let mut fresh = Engine::new();
    fresh.mount_store(set).unwrap();

    for q in fixture_queries() {
        let got = mounted.run(q).unwrap().as_xml();
        let want = fresh.run(q).unwrap().as_xml();
        assert_eq!(got, want, "fixture diverges on {q}");
    }
    // Pin one answer outright so a coordinated regression in both paths
    // cannot slip through.
    assert_eq!(
        mounted.run(fixture_queries()[0]).unwrap().as_xml(),
        r#"word="Alice" word="Bob""#
    );
}

/// Re-encoding the committed fixture in the current format and
/// mounting it must answer the same queries identically (the legacy
/// migration story; the writer now emits v4, checksummed).
#[test]
fn committed_v1_fixture_upgrades_to_current_format_losslessly() {
    let set = Snapshot::open(fixture_path())
        .unwrap()
        .to_layer_set()
        .unwrap();
    let mut current = Vec::new();
    write_snapshot(&set, &mut current).unwrap();

    let mut legacy = Engine::new();
    legacy
        .mount_snapshot(&Snapshot::open(fixture_path()).unwrap())
        .unwrap();
    let upgraded_snapshot = Snapshot::from_bytes(current).unwrap();
    assert_eq!(upgraded_snapshot.version(), 4);
    assert!(upgraded_snapshot.checksummed());
    let mut upgraded = Engine::new();
    upgraded.mount_snapshot(&upgraded_snapshot).unwrap();

    for q in fixture_queries() {
        assert_eq!(
            legacy.run(q).unwrap().as_xml(),
            upgraded.run(q).unwrap().as_xml(),
            "v1→v4 upgrade diverges on {q}"
        );
    }
}

/// Truncating the committed v1 fixture at *every* byte offset must
/// produce a clean categorized error from the legacy reader — never a
/// panic, never a silently short corpus. (The legacy format predates
/// checksums, so detection is structural: length prefixes, section
/// bounds, decode validation.)
#[test]
fn committed_v1_fixture_truncation_at_every_byte_errors_cleanly() {
    let full = std::fs::read(fixture_path()).unwrap();
    for cut in 0..full.len() {
        let result = std::panic::catch_unwind(|| Snapshot::from_bytes(full[..cut].to_vec()));
        let mounted = result.unwrap_or_else(|_| panic!("truncation at {cut} panicked the reader"));
        // A prefix is never a valid snapshot: either the mount fails,
        // or (headers intact, payload cut) the lazy layer access does.
        let ok = match mounted {
            Err(_) => true,
            Ok(snapshot) => std::panic::catch_unwind(|| snapshot.to_layer_set())
                .unwrap_or_else(|_| panic!("truncation at {cut} panicked materialization"))
                .is_err(),
        };
        assert!(ok, "truncation at {cut} was silently accepted");
    }
}
