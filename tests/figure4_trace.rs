//! Reproduces Figure 4: the execution trace of the loop-lifted StandOff
//! MergeJoin (Listing 1) on the paper's 4-context / 4-candidate input.
//!
//! The paper's 10 numbered steps (step 6 performs two actions) map to 11
//! trace events; the expected sequence below mirrors the figure's right
//! column, with the same Listing 1 line numbers.

use standoff::core::join::merge::ll_select_narrow;
use standoff::core::join::CtxEntry;
use standoff::core::{RegionEntry, TraceEvent, VecTrace};
use standoff::fixtures::{FIGURE4_CANDIDATES, FIGURE4_CONTEXT};

fn figure4_inputs() -> (Vec<CtxEntry>, Vec<RegionEntry>) {
    let mut context: Vec<CtxEntry> = FIGURE4_CONTEXT
        .iter()
        .enumerate()
        .map(|(k, &(iter, start, end))| CtxEntry {
            iter,
            node: k as u32, // c1..c4 by input position
            start,
            end,
        })
        .collect();
    context.sort_by_key(|c| (c.start, c.end));
    let candidates: Vec<RegionEntry> = FIGURE4_CANDIDATES
        .iter()
        .enumerate()
        .map(|(k, &(start, end))| RegionEntry {
            start,
            end,
            id: k as u32, // r1..r4
        })
        .collect();
    (context, candidates)
}

#[test]
fn figure4_trace_reproduces_all_ten_steps() {
    let (context, candidates) = figure4_inputs();
    let mut trace = VecTrace::default();
    let emissions = ll_select_narrow(&context, &candidates, false, Some(&mut trace));

    use TraceEvent::*;
    // ctx indices refer to the start-sorted context: 0=c1, 1=c2, 2=c3,
    // 3=c4; cand indices: 0=r1 .. 3=r4.
    let expected = vec![
        AddActive { ctx: 0, line: 8 },    // step 1: add c1 (line 8)
        Emit { iter: 1, cand: 0 },        // step 2: (iter1, r1) (lines 32-34)
        AddActive { ctx: 1, line: 41 },   // step 3: push c2 (line 41)
        SkipContext { ctx: 2 },           // step 4: skip c3 (lines 11-18)
        RemoveActive { ctx: 0 },          // step 5: remove c1 (line 31)
        SkipCandidateNoMatch { cand: 1 }, // step 6a: skip r2 (lines 32-35)
        RemoveActive { ctx: 1 },          // step 6b: remove c2 (line 31)
        AddActive { ctx: 3, line: 41 },   // step 7: add c4 (line 41)
        SkipCandidateBefore { cand: 2 },  // step 8: skip r3 (lines 21-24)
        Emit { iter: 1, cand: 3 },        // step 9: (iter1, r4) (lines 32-34)
        Exit,                             // step 10: exit (line 38)
    ];
    assert_eq!(trace.events, expected);

    // And the join's result matches the figure: (iter1, r1), (iter1, r4).
    let pairs: Vec<(u32, u32)> = emissions
        .iter()
        .map(|e| (e.iter, candidates[e.cand_idx as usize].id))
        .collect();
    assert_eq!(pairs, vec![(1, 0), (1, 3)]);
}

#[test]
fn figure4_without_tracing_gives_same_result() {
    let (context, candidates) = figure4_inputs();
    let traced = {
        let mut t = VecTrace::default();
        ll_select_narrow(&context, &candidates, false, Some(&mut t))
    };
    let untraced = ll_select_narrow(&context, &candidates, false, None);
    assert_eq!(traced, untraced);
}

#[test]
fn figure4_active_list_never_exceeds_two() {
    // The figure's left column shows at most two simultaneous active
    // items; verify via the add/remove event balance.
    let (context, candidates) = figure4_inputs();
    let mut trace = VecTrace::default();
    ll_select_narrow(&context, &candidates, false, Some(&mut trace));
    let mut active = 0i32;
    let mut max_active = 0;
    for e in &trace.events {
        match e {
            TraceEvent::AddActive { .. } => active += 1,
            TraceEvent::RemoveActive { .. } => active -= 1,
            _ => {}
        }
        max_active = max_active.max(active);
    }
    assert_eq!(max_active, 2);
}
