//! Genome-sequence annotation (paper §6 names bioinformatics as a target
//! domain): the BLOB is a chromosome; genes are *non-contiguous* areas
//! whose regions are their exons, and independently produced layers
//! (variants, repeats, read alignments) are queried against them with
//! the StandOff joins.
//!
//! ```text
//! cargo run --example genomics
//! ```

use standoff::prelude::*;

/// Gene models: each <gene> area consists of its exon regions, so
/// containment in a gene means "entirely within exonic sequence".
const GENES: &str = r#"<genes build="toy-1">
  <gene name="ALPHA" strand="+">
    <exon><start>100</start><end>199</end></exon>
    <exon><start>300</start><end>449</end></exon>
    <exon><start>600</start><end>699</end></exon>
  </gene>
  <gene name="BETA" strand="-">
    <exon><start>900</start><end>1049</end></exon>
    <exon><start>1200</start><end>1299</end></exon>
  </gene>
</genes>"#;

/// Variant calls (SNPs): single positions.
const VARIANTS: &str = r#"<variants caller="toy-caller">
  <snp id="rs1" ref="A" alt="G"><exon><start>150</start><end>150</end></exon></snp>
  <snp id="rs2" ref="C" alt="T"><exon><start>250</start><end>250</end></exon></snp>
  <snp id="rs3" ref="G" alt="A"><exon><start>420</start><end>420</end></exon></snp>
  <snp id="rs4" ref="T" alt="C"><exon><start>1250</start><end>1250</end></exon></snp>
  <snp id="rs5" ref="A" alt="C"><exon><start>1500</start><end>1500</end></exon></snp>
</variants>"#;

/// Spliced read alignments: multi-region areas again. read1 aligns into
/// two exons of ALPHA (a proper spliced read); read2 dangles into the
/// intron.
const READS: &str = r#"<alignments>
  <read id="read1">
    <exon><start>180</start><end>199</end></exon>
    <exon><start>300</start><end>329</end></exon>
  </read>
  <read id="read2">
    <exon><start>190</start><end>230</end></exon>
  </read>
  <read id="read3">
    <exon><start>610</start><end>650</end></exon>
  </read>
</alignments>"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = Engine::new();
    let doc = format!("<genome>{GENES}{VARIANTS}{READS}</genome>");
    engine.load_document("genome.xml", &doc)?;

    // The region element is named <exon> in this application — the §2
    // configurability in action.
    let prolog = r#"declare option standoff-region "exon";"#;

    println!("exonic SNPs per gene (containment in a non-contiguous area):");
    let q = format!(
        r#"{prolog}
        for $g in doc("genome.xml")//gene
        return <gene name="{{$g/@name}}"
                     exonic-snps="{{$g/select-narrow::snp/@id}}"/>"#
    );
    for line in engine.run(&q)?.as_serialized() {
        println!("  {line}");
    }

    println!("\nintronic or intergenic SNPs (reject-narrow):");
    let q = format!(
        r#"{prolog}
        doc("genome.xml")//gene/reject-narrow::snp/@id"#
    );
    println!("  {}", engine.run(&q)?.as_strings().join(" "));

    println!("\nproperly spliced reads (every segment inside ONE gene's exons):");
    let q = format!(
        r#"{prolog}
        doc("genome.xml")//gene/select-narrow::read/@id"#
    );
    println!("  {}", engine.run(&q)?.as_strings().join(" "));

    println!("\nreads touching a gene at all (select-wide):");
    let q = format!(
        r#"{prolog}
        doc("genome.xml")//gene/select-wide::read/@id"#
    );
    println!("  {}", engine.run(&q)?.as_strings().join(" "));

    // read2 overlaps ALPHA but is not contained in its exonic area: an
    // intron-dangling alignment — wide minus narrow, via `except`.
    let q = format!(
        r#"{prolog}
        (doc("genome.xml")//gene/select-wide::read
         except doc("genome.xml")//gene/select-narrow::read)/@id"#
    );
    println!(
        "\nintron-dangling alignments (wide minus narrow): {}",
        engine.run(&q)?.as_strings().join(" ")
    );
    Ok(())
}
