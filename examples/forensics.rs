//! Digital forensics scenario (paper §1 and the XIRAF system it cites):
//! the BLOB is the raw image of a confiscated hard drive; multiple
//! analysis tools emit annotations over byte ranges. Files reconstructed
//! from scattered disk blocks are *non-contiguous* areas — the element
//! representation with multiple `<region>` children (paper §2).
//!
//! ```text
//! cargo run --example forensics
//! ```

use standoff::prelude::*;

/// Output of a (simulated) file-system recovery tool: files carved from
/// the disk image, some fragmented across several block runs.
const RECOVERY_XML: &str = r#"<filesystem tool="carver-1.2">
  <file name="report.doc">
    <region><start>4096</start><end>8191</end></region>
  </file>
  <file name="archive.zip">
    <region><start>16384</start><end>20479</end></region>
    <region><start>40960</start><end>45055</end></region>
  </file>
  <file name="photo.jpg">
    <region><start>24576</start><end>32767</end></region>
  </file>
  <deleted name="ledger.xls">
    <region><start>49152</start><end>53247</end></region>
  </deleted>
</filesystem>"#;

/// Output of a (simulated) feature detector over the same image: hits of
/// credit-card-number and email patterns at absolute byte offsets.
const FEATURES_XML: &str = r#"<features tool="pattern-scan-0.9">
  <hit kind="ccn"><region><start>5000</start><end>5015</end></region></hit>
  <hit kind="email"><region><start>17000</start><end>17030</end></region></hit>
  <hit kind="ccn"><region><start>42000</start><end>42015</end></region></hit>
  <hit kind="email"><region><start>36000</start><end>36030</end></region></hit>
  <hit kind="ccn"><region><start>50000</start><end>50015</end></region></hit>
</features>"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = Engine::new();
    // Both tool outputs annotate the SAME disk image, but they live in
    // one combined fragment per case so the joins can relate them
    // (XPath steps match within one fragment).
    let case = format!(
        "<case id=\"2006-017\">{}{}</case>",
        RECOVERY_XML, FEATURES_XML
    );
    engine.load_document("case.xml", &case)?;

    let prolog = r#"declare option standoff-region "region";"#;

    // Which recovered files contain pattern hits? Containment must hold
    // against the file's (possibly fragmented) area: a hit inside any
    // fragment counts, a hit in the gap between fragments does not.
    println!("files containing credit-card hits:");
    let q = format!(
        r#"{prolog}
        for $f in doc("case.xml")//file
        where exists($f/select-narrow::hit[@kind = "ccn"])
        return $f/@name"#
    );
    for name in engine.run(&q)?.as_strings() {
        println!("  {name}");
    }

    // Hits in unallocated space: not contained in any recovered or
    // deleted file. reject-narrow is the containment anti-join.
    println!("\nhits in unallocated space:");
    let q = format!(
        r#"{prolog}
        for $h in (doc("case.xml")//file | doc("case.xml")//deleted)
                  /reject-narrow::hit
        return <orphan kind="{{$h/@kind}}"/>"#
    );
    println!("{}", engine.run(&q)?.as_xml());

    // Per-file evidence summary, demonstrating joins under aggregation.
    println!("\nevidence summary:");
    let q = format!(
        r#"{prolog}
        for $f in doc("case.xml")//file
        return <file name="{{$f/@name}}"
                     fragments="{{count($f/region)}}"
                     hits="{{count($f/select-narrow::hit)}}"/>"#
    );
    for line in engine.run(&q)?.as_serialized() {
        println!("  {line}");
    }

    // The fragmented archive.zip: its second fragment contains a hit,
    // and ∀∃ containment correctly attributes it.
    let q = format!(
        r#"{prolog}
        doc("case.xml")//file[@name = "archive.zip"]/select-narrow::hit/@kind"#
    );
    println!(
        "\nhits inside fragmented archive.zip: {}",
        engine.run(&q)?.as_strings().join(" ")
    );
    Ok(())
}
