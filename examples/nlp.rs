//! Natural-language-processing scenario (paper §1): two annotation
//! hierarchies over one text corpus — a syntactic parse (sentences,
//! phrases) and named-entity annotations — produced by different tools,
//! overlapping freely. Word positions are the region coordinates.
//!
//! ```text
//! cargo run --example nlp
//! ```

use standoff::prelude::*;

/// The corpus BLOB: one token per position.
#[rustfmt::skip]
const CORPUS: &[&str] = &[
    /* 0 */ "the", "centrum", "voor", "wiskunde", "en", "informatica",
    /* 6 */ "in", "amsterdam", "developed", "monetdb", "with", "the",
    /* 12 */ "pathfinder", "compiler", "for", "xquery", "processing",
];

/// Syntax layer: sentence and phrase structure over word positions.
const SYNTAX: &str = r#"<syntax>
  <sentence id="s1" start="0" end="16">
    <np start="0" end="7"/>
    <vp start="8" end="16"/>
    <pp start="6" end="7"/>
    <np start="9" end="13"/>
    <pp start="14" end="16"/>
  </sentence>
</syntax>"#;

/// Entity layer from a different tool: overlaps the syntax layer without
/// nesting into it.
const ENTITIES: &str = r#"<entities>
  <org start="1" end="5"/>
  <loc start="7" end="7"/>
  <sys start="9" end="9"/>
  <sys start="12" end="13"/>
  <tech start="15" end="16"/>
  <quote start="4" end="9"/>
</entities>"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = Engine::new();
    let doc = format!("<corpus>{SYNTAX}{ENTITIES}</corpus>");
    engine.load_document("corpus.xml", &doc)?;

    let words = |start: usize, end: usize| CORPUS[start..=end].join(" ");

    // Entities inside noun phrases: containment join between hierarchies
    // that know nothing about each other.
    println!("entities contained in noun phrases:");
    let q = r#"for $e in doc("corpus.xml")//np/select-narrow::*
               [not(name(.) = "np") and not(name(.) = "pp")]
               return <e kind="{name($e)}" start="{$e/@start}" end="{$e/@end}"/>"#;
    for e in engine.run(q)?.as_serialized() {
        println!("  {e}");
    }

    // Overlap without containment: which phrases does each entity touch?
    println!("\nphrase coverage per entity:");
    let q = r#"for $e in doc("corpus.xml")/corpus/entities/*
               return <entity kind="{name($e)}"
                              span="{$e/@start}-{$e/@end}"
                              phrases="{count($e/select-wide::*[
                                  name(.) = "np" or name(.) = "vp" or name(.) = "pp"])}"/>"#;
    for line in engine.run(q)?.as_serialized() {
        println!("  {line}");
    }

    // Reconstruct entity surface forms from the corpus BLOB.
    println!("\nsurface forms:");
    let q = r#"for $e in doc("corpus.xml")/corpus/entities/*
               return ($e/@start, $e/@end)"#;
    let positions = engine.run(q)?;
    let nums: Vec<usize> = positions
        .as_strings()
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    for pair in nums.chunks(2) {
        println!("  {:>12}", words(pair[0], pair[1]));
    }

    // The case inline markup cannot represent (the paper's LMNL figure):
    // <quote> [4,9] crosses the NP/VP boundary — it overlaps both but is
    // contained in neither. Stand-off regions handle it natively.
    println!("\nentities straddling phrase boundaries (overlap ≠ containment):");
    let q = r#"let $phrases := doc("corpus.xml")//np
                             | doc("corpus.xml")//vp
                             | doc("corpus.xml")//pp
               for $e in ($phrases/select-wide::* except $phrases/select-narrow::*)
                         intersect doc("corpus.xml")/corpus/entities/*
               return <straddler kind="{name($e)}" span="{$e/@start}-{$e/@end}"/>"#;
    for line in engine.run(q)?.as_serialized() {
        println!("  {line}");
    }
    Ok(())
}
