//! The paper's evaluation workload end-to-end (§4.6): generate an XMark
//! document, StandOff-ify it (text → BLOB, regions on every element,
//! coarse permutation), and run the four rewritten queries under
//! different evaluation strategies.
//!
//! ```text
//! cargo run --release --example xmark_standoff [scale]
//! ```

use std::time::Instant;

use standoff::core::StandoffStrategy;
use standoff::xmark::queries::XmarkQuery;
use standoff::xmark::{generate, serialized_size, standoffify, XmarkConfig};
use standoff::xquery::Engine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(0.005);

    println!("generating XMark at scale {scale}...");
    let src = generate(&XmarkConfig::with_scale(scale));
    println!(
        "  {} nodes, {:.2} MB serialized",
        src.node_count(),
        serialized_size(&src) as f64 / 1e6
    );

    println!("standoffifying (text -> BLOB, regions, coarse permutation)...");
    let so = standoffify(&src, 7);
    println!(
        "  {} annotations over a {} byte BLOB",
        so.doc.all_elements().len(),
        so.blob.len()
    );

    let mut engine = Engine::new();
    engine.add_document(src, Some("xmark.xml"));
    let blob = so.blob.clone();
    engine.add_document(so.doc, Some("xmark-so.xml"));
    let region_text = |start: i64, end: i64| -> String {
        blob.as_bytes()[start as usize..=end as usize]
            .iter()
            .filter(|&&b| b != b'\n')
            .map(|&b| b as char)
            .collect()
    };

    for query in XmarkQuery::ALL {
        println!("\n== XMark {query} ==");
        // Reference answer from the original document with tree axes.
        let std_result = engine.run(&query.standard("xmark.xml"))?;
        println!("  standard (staircase join): {} item(s)", std_result.len());

        for strategy in [
            StandoffStrategy::NaiveWithCandidates,
            StandoffStrategy::BasicMergeJoin,
            StandoffStrategy::LoopLiftedMergeJoin,
        ] {
            engine.set_strategy(strategy);
            let start = Instant::now();
            let n = engine.run_and_discard(&query.standoff("xmark-so.xml"))?;
            println!(
                "  standoff via {:<24} {} item(s) in {:>9.3?}",
                strategy.to_string() + ":",
                n,
                start.elapsed()
            );
        }
    }

    // Show one concrete answer recovered through the BLOB: Q1 returns
    // the <name> annotation of person0; its region carves the original
    // text back out of the BLOB.
    engine.set_strategy(StandoffStrategy::LoopLiftedMergeJoin);
    let q1 = engine.run(&XmarkQuery::Q1.standoff("xmark-so.xml"))?;
    if let Some(serialized) = q1.as_serialized().first() {
        let get = |attr: &str| -> i64 {
            let pat = format!("{attr}=\"");
            let s = serialized.find(&pat).unwrap() + pat.len();
            let e = serialized[s..].find('"').unwrap();
            serialized[s..s + e].parse().unwrap()
        };
        println!(
            "\nQ1 person0 name via BLOB region [{},{}]: {:?}",
            get("start"),
            get("end"),
            region_text(get("start"), get("end"))
        );
    }
    Ok(())
}
