//! An incremental annotation pipeline over writable overlay layers.
//!
//! The paper's workflow assumes annotation layers arrive *fully built*
//! and immutable. Real pipelines grow them in stages: a tokenizer lays
//! down `w` regions, a named-entity tagger adds `entity` regions (and
//! revises a tokenizer mistake), and queries run between the stages —
//! without re-indexing the corpus. This example drives that workflow
//! through [`standoff::xquery::WritableEngine`]:
//!
//! 1. mount a corpus with empty annotation layers,
//! 2. apply tokenizer output as a batch of delta inserts,
//! 3. apply NER output — including a *retraction* fixing a token,
//! 4. query the merged base + delta view (cross-layer StandOff join),
//! 5. compact into a delta-free snapshot and show the answers agree.
//!
//! Run with: `cargo run --example pipeline`

use standoff::core::StandoffConfig;
use standoff::store::{DeltaOp, LayerSet};
use standoff::xml::parse_document;
use standoff::xquery::{EngineOptions, WritableEngine};

const URI: &str = "mem://pipeline";
const TEXT: &str = "Marie Curie studied in Paris with Pierre Curie.";

fn insert(layer: &str, name: &str, start: i64, end: i64, attrs: &[(&str, &str)]) -> DeltaOp {
    DeltaOp::Insert {
        layer: layer.into(),
        name: name.into(),
        start,
        end,
        attrs: attrs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
    }
}

/// A toy whitespace tokenizer: one `w` region per word.
fn tokenize(text: &str) -> Vec<DeltaOp> {
    let mut ops = Vec::new();
    let mut start = None;
    for (k, ch) in text.char_indices().chain([(text.len(), ' ')]) {
        match (ch.is_whitespace() || ch == '.', start) {
            (false, None) => start = Some(k),
            (true, Some(s)) => {
                ops.push(insert("tokens", "w", s as i64, k as i64 - 1, &[]));
                start = None;
            }
            _ => {}
        }
    }
    ops
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stage 0: the corpus — base text plus two empty annotation layers
    // the pipeline will fill in. (Layers can also start non-empty, e.g.
    // from a snapshot: see `standoff-xq annotate`.)
    let base = parse_document(&format!("<text>{TEXT}</text>"))?;
    let mut set = LayerSet::build(URI, base, StandoffConfig::default())?;
    set.add_layer(
        "tokens",
        parse_document("<tokens/>")?,
        StandoffConfig::default(),
    )?;
    set.add_layer(
        "entities",
        parse_document("<entities/>")?,
        StandoffConfig::default(),
    )?;
    let mut engine = WritableEngine::mount(set, EngineOptions::default())?;

    // Stage 1: tokenizer.
    let n = engine.apply(tokenize(TEXT))?;
    let tokens = engine.session().run(&count("tokens", "w"))?.as_xml();
    println!(
        "tokenizer: +{n} ops, {tokens} tokens (generation {})",
        engine.generation()
    );

    // Stage 2: named-entity tagger. It adds multi-word entities whose
    // regions *span* the underlying tokens ("Marie Curie" covers two `w`
    // regions), and it revises the tokenizer's output: the bare token
    // "with" gets retracted and re-inserted carrying a part-of-speech
    // attribute — the overlay's update idiom for annotation layers.
    let ner = vec![
        insert("entities", "entity", 0, 10, &[("class", "PER")]),
        insert("entities", "entity", 23, 27, &[("class", "LOC")]),
        insert("entities", "entity", 34, 45, &[("class", "PER")]),
        DeltaOp::Retract {
            layer: "tokens".into(),
            name: "w".into(),
            start: 29,
            end: 32,
        },
        insert("tokens", "w", 29, 32, &[("pos", "ADP")]),
    ];
    let n = engine.apply(ner)?;
    println!(
        "ner:       +{n} ops, {} entities (generation {})",
        engine.session().run(&count("entities", "entity"))?.as_xml(),
        engine.generation()
    );

    // Stage 3: query the merged view — which tokens does each entity
    // cover? A cross-layer StandOff join: entity regions from one
    // layer's delta select token regions split between another layer's
    // base and delta documents.
    let join = format!(
        r#"for $e in layer("{URI}", "entities")//entity
           return <hit class="{{string($e/@class)}}">{{count($e/select-wide::w)}}</hit>"#
    );
    let merged = engine.session().run(&join)?.as_xml();
    println!("join over overlay:   {merged}");

    // Stage 4: compact. The deltas fold into a fresh snapshot, pending
    // state clears, and every answer is byte-identical — compaction is
    // invisible to queries.
    let folded = engine.compact()?;
    let compacted = engine.session().run(&join)?.as_xml();
    println!("join after compact:  {compacted}");
    assert_eq!(merged, compacted, "compaction must not change answers");
    assert!(engine.delta().is_empty());
    println!(
        "compacted {} layer(s), {} annotations total",
        folded.len(),
        folded
            .layers()
            .iter()
            .map(|l| l.annotation_count())
            .sum::<usize>()
    );
    Ok(())
}

fn count(layer: &str, elem: &str) -> String {
    format!(r#"count(layer("{URI}", "{layer}")//{elem})"#)
}
