//! Quickstart: load the paper's Figure 1 multimedia annotations and run
//! the four StandOff joins from §3.1.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use standoff::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two overlapping annotation hierarchies over the same video BLOB:
    // visual shots and music tracks, each with [start,end] time regions
    // (seconds). Neither hierarchy nests inside the other — that is the
    // situation stand-off annotation exists for.
    let mut engine = Engine::new();
    engine.load_document("sample.xml", standoff::fixtures::FIGURE1_XML)?;

    println!("StandOff Joins between U2 and Shots                    Matches");
    for (axis, description) in [
        (
            "select-narrow",
            "shots during which U2 played the whole time",
        ),
        ("select-wide", "shots during which U2 played at some point"),
        ("reject-narrow", "shots not fully covered by U2 music"),
        ("reject-wide", "shots with at least a moment of no U2"),
    ] {
        let query = format!(r#"doc("sample.xml")//music[@artist = "U2"]/{axis}::shot/@id"#);
        let result = engine.run(&query)?;
        println!(
            "{:<22} {:<32} {}",
            axis,
            format!("({description})"),
            result.as_strings().join(" ")
        );
    }

    // The same joins are available as built-in functions (the paper's
    // Alternative 3) ...
    let via_fn = engine.run(
        r#"select-wide(doc("sample.xml")//music[@artist = "U2"],
                       doc("sample.xml")//shot)/@id"#,
    )?;
    println!("\nvia built-in function: {}", via_fn.as_strings().join(" "));

    // ... and compose with ordinary XQuery.
    let flwor = engine.run(
        r#"for $m in doc("sample.xml")//music
           order by $m/@artist descending
           return <track artist="{$m/@artist}"
                         overlapping-shots="{count($m/select-wide::shot)}"/>"#,
    )?;
    println!("\ncomposed with FLWOR + constructors:\n{}", flwor.as_xml());
    Ok(())
}
