//! Multi-layer stand-off store walkthrough: independent annotation
//! layers (tokens, entities, syntax) over one BLOB, persisted to a
//! binary snapshot and queried across layers.
//!
//! ```text
//! cargo run --example layers
//! ```

use standoff::core::StandoffConfig;
use standoff::store::{load_snapshot, save_snapshot, LayerSet};
use standoff::xml::parse_document;
use standoff::xquery::Engine;

fn main() {
    // The BLOB: "Alice met Bob in Paris yesterday" — never stored, only
    // referenced through [start,end] character offsets.
    let base = parse_document(r#"<text lang="en">Alice met Bob in Paris yesterday</text>"#)
        .expect("base parses");
    let tokens = parse_document(
        r#"<tokens>
             <w word="Alice" start="0" end="4"/>
             <w word="met" start="6" end="8"/>
             <w word="Bob" start="10" end="12"/>
             <w word="in" start="14" end="15"/>
             <w word="Paris" start="17" end="21"/>
             <w word="yesterday" start="23" end="31"/>
           </tokens>"#,
    )
    .expect("tokens parse");
    let entities = parse_document(
        r#"<entities>
             <person id="alice" start="0" end="4"/>
             <person id="bob" start="10" end="12"/>
             <place id="paris" start="17" end="21"/>
           </entities>"#,
    )
    .expect("entities parse");

    // Assemble the layer set; every layer's region index is built once,
    // here, and never again.
    let mut set = LayerSet::build("corpus", base, StandoffConfig::default()).unwrap();
    set.add_layer("tokens", tokens, StandoffConfig::default())
        .unwrap();
    set.add_layer("entities", entities, StandoffConfig::default())
        .unwrap();

    // Persist and reload — the reload is a validated column read.
    let snap = std::env::temp_dir().join("standoff-layers-example.snap");
    save_snapshot(&set, &snap).unwrap();
    let reloaded = load_snapshot(&snap).unwrap();
    println!(
        "snapshot {} -> {} layers, {} annotations",
        snap.display(),
        reloaded.len(),
        reloaded
            .layers()
            .iter()
            .map(|l| l.annotation_count())
            .sum::<usize>()
    );

    let mut engine = Engine::new();
    engine.mount_store(reloaded).unwrap();

    // Cross-layer StandOff join: which tokens realize each entity?
    let result = engine
        .run(r#"doc("corpus#entities")//person/select-narrow::w/@word"#)
        .unwrap();
    println!("person tokens: {:?}", result.as_strings());
    assert_eq!(result.as_strings(), ["Alice", "Bob"]);

    // The layer() builtin addresses layers explicitly.
    let result = engine
        .run(
            r#"for $p in layer("corpus", "entities")//place
               return count($p/select-wide::w)"#,
        )
        .unwrap();
    println!("tokens overlapping each place: {:?}", result.as_strings());
    assert_eq!(result.as_strings(), ["1"]);

    std::fs::remove_file(&snap).ok();
}
