//! `any::<T>()` for the primitive types the workspace generates.

use std::marker::PhantomData;

use crate::rng::TestRng;
use crate::strategy::Strategy;

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        crate::string::any_char(rng)
    }
}

/// Strategy producing arbitrary values of `T`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Arbitrary value of a primitive type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
