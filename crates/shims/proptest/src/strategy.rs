//! The [`Strategy`] trait and its combinators.

use std::rc::Rc;

use crate::rng::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive structures: `recurse` receives a strategy for the
    /// sub-structures and returns the composite strategy. `depth` bounds
    /// the recursion; the size-tuning parameters of the real crate are
    /// accepted and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value, F>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        Recursive {
            base: self.boxed(),
            depth,
            recurse: Rc::new(recurse),
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Bounded recursion (see [`Strategy::prop_recursive`]).
pub struct Recursive<T, F> {
    base: BoxedStrategy<T>,
    depth: u32,
    recurse: Rc<F>,
}

impl<T, S2, F> Strategy for Recursive<T, F>
where
    T: 'static,
    S2: Strategy<Value = T> + 'static,
    F: Fn(BoxedStrategy<T>) -> S2,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        fn build<T, S2, F>(base: &BoxedStrategy<T>, recurse: &F, depth: u32) -> BoxedStrategy<T>
        where
            T: 'static,
            S2: Strategy<Value = T> + 'static,
            F: Fn(BoxedStrategy<T>) -> S2,
        {
            if depth == 0 {
                base.clone()
            } else {
                recurse(build(base, recurse, depth - 1)).boxed()
            }
        }
        // Vary the effective depth so shallow and deep values both occur.
        let depth = rng.below(self.depth as u64 + 1) as u32;
        build(&self.base, &*self.recurse, depth).generate(rng)
    }
}

/// Uniform choice among strategies (the [`crate::prop_oneof!`] macro).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.arms.len() as u64) as usize;
        self.arms[k].generate(rng)
    }
}

// ---- integer ranges ----

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.range_i128(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.range_i128(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---- tuples ----

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

// ---- string literals as regex strategies ----

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let compiled = crate::string::Regex::compile(self)
            .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e}"));
        compiled.generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::new(9);
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = TestRng::new(11);
        let s = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursion_terminates() {
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn count(t: &Tree) -> usize {
            match t {
                Tree::Leaf(v) => {
                    assert!(*v < 10);
                    1
                }
                Tree::Node(kids) => 1 + kids.iter().map(count).sum::<usize>(),
            }
        }
        let mut rng = TestRng::new(13);
        let s = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 32, 5, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        for _ in 0..50 {
            assert!(count(&s.generate(&mut rng)) >= 1);
        }
    }
}
