//! Collection strategies (`prop::collection::vec`).

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// A size specification: `n`, `a..b` or `a..=b`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.range_i128(self.size.lo as i128, self.size.hi_inclusive as i128) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_respected() {
        let mut rng = TestRng::new(3);
        let s = vec(0u8..5, 2..6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
