//! Generator-only regex subset (`proptest::string::string_regex`).
//!
//! Supports the constructs the workspace's tests use: literal characters
//! (with `\` escapes), `.`, character classes `[a-z0-9_-]` (ranges,
//! literals, multi-byte characters; no negation), and the quantifiers
//! `{m}`, `{m,n}`, `?`, `*`, `+` (unbounded repeats are capped at 8).

use crate::rng::TestRng;
use crate::strategy::Strategy;

#[derive(Clone, Debug)]
enum Atom {
    Literal(char),
    /// Inclusive character ranges; single chars are degenerate ranges.
    Class(Vec<(char, char)>),
    /// `.` — any char except newline.
    Dot,
}

#[derive(Clone, Debug)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

/// A compiled generator-only regex.
#[derive(Clone, Debug)]
pub struct Regex {
    pieces: Vec<Piece>,
}

/// Compile `pattern` into a string strategy.
pub fn string_regex(pattern: &str) -> Result<Regex, Error> {
    Regex::compile(pattern)
}

/// Compilation error.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "regex strategy: {}", self.0)
    }
}

impl std::error::Error for Error {}

const UNBOUNDED_CAP: u32 = 8;

impl Regex {
    pub fn compile(pattern: &str) -> Result<Regex, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut k = 0;
        while k < chars.len() {
            let atom = match chars[k] {
                '[' => {
                    let (class, next) = parse_class(&chars, k + 1)?;
                    k = next;
                    Atom::Class(class)
                }
                '.' => {
                    k += 1;
                    Atom::Dot
                }
                '\\' => {
                    let c = *chars
                        .get(k + 1)
                        .ok_or_else(|| Error("dangling escape".into()))?;
                    k += 2;
                    Atom::Literal(match c {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    })
                }
                '{' | '}' | '?' | '*' | '+' => {
                    return Err(Error(format!("quantifier '{}' without atom", chars[k])))
                }
                c => {
                    k += 1;
                    Atom::Literal(c)
                }
            };
            let (min, max, next) = parse_quantifier(&chars, k)?;
            k = next;
            pieces.push(Piece { atom, min, max });
        }
        Ok(Regex { pieces })
    }

    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let n = rng.range_i128(piece.min as i128, piece.max as i128) as u32;
            for _ in 0..n {
                out.push(match &piece.atom {
                    Atom::Literal(c) => *c,
                    Atom::Dot => loop {
                        let c = any_char(rng);
                        if c != '\n' {
                            break c;
                        }
                    },
                    Atom::Class(ranges) => sample_class(ranges, rng),
                });
            }
        }
        out
    }
}

impl Strategy for Regex {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        Regex::generate(self, rng)
    }
}

fn parse_class(chars: &[char], mut k: usize) -> Result<(Vec<(char, char)>, usize), Error> {
    let mut ranges = Vec::new();
    if chars.get(k) == Some(&'^') {
        return Err(Error("negated classes are not supported".into()));
    }
    loop {
        let c = *chars
            .get(k)
            .ok_or_else(|| Error("unterminated character class".into()))?;
        if c == ']' {
            if ranges.is_empty() {
                return Err(Error("empty character class".into()));
            }
            return Ok((ranges, k + 1));
        }
        let lo = if c == '\\' {
            k += 1;
            *chars
                .get(k)
                .ok_or_else(|| Error("dangling escape in class".into()))?
        } else {
            c
        };
        k += 1;
        // `x-y` range, unless `-` is the last char before `]`.
        if chars.get(k) == Some(&'-') && chars.get(k + 1).is_some_and(|&c| c != ']') {
            let hi = chars[k + 1];
            if hi < lo {
                return Err(Error(format!("inverted range {lo}-{hi}")));
            }
            ranges.push((lo, hi));
            k += 2;
        } else {
            ranges.push((lo, lo));
        }
    }
}

fn parse_quantifier(chars: &[char], k: usize) -> Result<(u32, u32, usize), Error> {
    match chars.get(k) {
        Some('?') => Ok((0, 1, k + 1)),
        Some('*') => Ok((0, UNBOUNDED_CAP, k + 1)),
        Some('+') => Ok((1, UNBOUNDED_CAP, k + 1)),
        Some('{') => {
            let close = chars[k..]
                .iter()
                .position(|&c| c == '}')
                .ok_or_else(|| Error("unterminated {quantifier}".into()))?
                + k;
            let body: String = chars[k + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim()
                        .parse()
                        .map_err(|_| Error(format!("bad bound in {{{body}}}")))?,
                    hi.trim()
                        .parse()
                        .map_err(|_| Error(format!("bad bound in {{{body}}}")))?,
                ),
                None => {
                    let n = body
                        .trim()
                        .parse()
                        .map_err(|_| Error(format!("bad bound in {{{body}}}")))?;
                    (n, n)
                }
            };
            if min > max {
                return Err(Error(format!("inverted bounds in {{{body}}}")));
            }
            Ok((min, max, close + 1))
        }
        _ => Ok((1, 1, k)),
    }
}

fn sample_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u64 = ranges
        .iter()
        .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
        .sum();
    let mut pick = rng.below(total);
    for &(lo, hi) in ranges {
        let span = hi as u64 - lo as u64 + 1;
        if pick < span {
            // Ranges that straddle the surrogate gap would need a retry;
            // none of the workspace's classes do, but stay safe anyway.
            return char::from_u32(lo as u32 + pick as u32).unwrap_or(lo);
        }
        pick -= span;
    }
    unreachable!("pick < total")
}

/// An arbitrary char: mostly printable ASCII, sprinkled with markup
/// specials, multi-byte codepoints and the odd control character — a good
/// spread for parser fuzzing.
pub fn any_char(rng: &mut TestRng) -> char {
    match rng.below(10) {
        0..=5 => char::from_u32(rng.range_i128(0x20, 0x7E) as u32).unwrap(),
        6 => ['<', '>', '&', '"', '\'', '=', '/', ']'][rng.below(8) as usize],
        7 => ['å', 'ß', '€', '語', '🦀', 'Ω'][rng.below(6) as usize],
        8 => char::from_u32(rng.range_i128(0x01, 0x1F) as u32).unwrap(),
        _ => loop {
            let c = rng.below(0x11_0000) as u32;
            if let Some(c) = char::from_u32(c) {
                break c;
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repo_patterns_compile_and_match_shape() {
        let mut rng = TestRng::new(17);
        let name = Regex::compile("[a-z][a-z0-9_-]{0,6}").unwrap();
        for _ in 0..200 {
            let s = name.generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-'));
        }

        let text = Regex::compile("[ -~åß€]{0,20}").unwrap();
        for _ in 0..200 {
            let s = text.generate(&mut rng);
            assert!(s.chars().count() <= 20);
            assert!(s
                .chars()
                .all(|c| (' '..='~').contains(&c) || ['å', 'ß', '€'].contains(&c)));
        }

        let dot = Regex::compile(".{0,200}").unwrap();
        for _ in 0..50 {
            let s = dot.generate(&mut rng);
            assert!(s.chars().count() <= 200);
            assert!(!s.contains('\n'));
        }
    }

    #[test]
    fn quantifiers() {
        let mut rng = TestRng::new(19);
        assert_eq!(
            Regex::compile("ab{3}c").unwrap().generate(&mut rng),
            "abbbc"
        );
        let opt = Regex::compile("x?").unwrap();
        let mut lens = std::collections::HashSet::new();
        for _ in 0..50 {
            lens.insert(opt.generate(&mut rng).len());
        }
        assert_eq!(lens, [0usize, 1].into_iter().collect());
    }

    #[test]
    fn bad_patterns_error() {
        assert!(Regex::compile("[abc").is_err());
        assert!(Regex::compile("*x").is_err());
        assert!(Regex::compile("a{2,1}").is_err());
        assert!(Regex::compile("[^a]").is_err());
    }
}
