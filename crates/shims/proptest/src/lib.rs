//! Offline stand-in for the `proptest` crate (see
//! `crates/shims/README.md`).
//!
//! Implements the slice of the proptest API this workspace uses: the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map` / `prop_recursive`, [`prop_oneof!`], integer-range and
//! tuple strategies, [`collection::vec`], [`option::of`],
//! [`string::string_regex`] (a small generator-only regex subset) and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate: **no shrinking** — a failing case
//! reports its case number, and generation is deterministic per test
//! path, so failures reproduce exactly; rejected/assumed cases are simply
//! skipped.

pub mod rng;
pub mod strategy;

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod string;
pub mod test_runner;

pub use arbitrary::any;

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Run named property tests. Supported shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_test(x in 0u32..10, v in prop::collection::vec(any::<u8>(), 0..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let path = concat!(module_path!(), "::", stringify!($name));
            for case in 0..cfg.cases {
                let mut rng = $crate::rng::TestRng::for_case(path, case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                #[allow(unreachable_code)]
                let body = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                match body() {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {}: failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            cfg.cases,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Skip the current case unless `cond` holds (no shrinking, so a reject
/// is simply not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
