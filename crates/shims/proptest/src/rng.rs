//! Deterministic test RNG: xoshiro256++ seeded from the test path and
//! case number, so every run of a given test sees the same inputs.

#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        let mut x = seed;
        TestRng {
            s: [
                splitmix(&mut x),
                splitmix(&mut x),
                splitmix(&mut x),
                splitmix(&mut x),
            ],
        }
    }

    /// Seed from a test path and case index (FNV-1a over the path).
    pub fn for_case(path: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng::new(h ^ ((case as u64) << 32 | case as u64))
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform value in `lo..=hi` over the i128 lattice (covers all the
    /// primitive integer ranges).
    pub fn range_i128(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo + 1) as u128;
        let v = ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % span;
        lo + v as i128
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn deterministic() {
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x::y", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_bounds() {
        let mut r = TestRng::new(1);
        for _ in 0..1000 {
            let v = r.range_i128(-3, 3);
            assert!((-3..=3).contains(&v));
        }
    }
}
