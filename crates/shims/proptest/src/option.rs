//! Option strategies (`prop::option::of`).

use crate::rng::TestRng;
use crate::strategy::Strategy;

pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Bias towards Some, like the real crate.
        if rng.chance(0.75) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// `Some` of the inner strategy most of the time, `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
