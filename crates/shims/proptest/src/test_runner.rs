//! Test-runner configuration and case-level errors.

/// Per-`proptest!`-block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// Genuine failure — fails the whole test.
    Fail(String),
    /// `prop_assume!` rejection — the case is skipped.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}
