//! Offline stand-in for the `criterion` crate (see
//! `crates/shims/README.md`).
//!
//! Provides the API shape the workspace's benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `criterion_group!` /
//! `criterion_main!` — with a simple wall-clock measurement loop:
//! one warm-up run, then timed iterations, reporting mean ns/iter.
//!
//! Measurements only run under `cargo bench` (argv contains `--bench`).
//! Under `cargo test` the generated `main` exits immediately so the
//! tier-1 suite never pays benchmark setup costs.

use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimizer from deleting a
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark label, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Runs the measured closure.
pub struct Bencher {
    samples: usize,
    /// Mean duration of one iteration, filled in by [`Bencher::iter`].
    last_mean: Option<Duration>,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up (also primes lazy state the closure builds).
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.last_mean = Some(start.elapsed() / self.samples as u32);
    }
}

/// Top-level handle handed to `criterion_group!` functions.
pub struct Criterion {
    enabled: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            enabled: std::env::args().any(|a| a == "--bench"),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Is measurement active (i.e. running under `cargo bench`)?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(self.enabled, None, id.into(), sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self // accepted for API compatibility; sampling is fixed-count
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(
            self.criterion.enabled,
            Some(&self.name),
            id.into(),
            samples,
            f,
        );
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

fn run_one(
    enabled: bool,
    group: Option<&str>,
    id: BenchmarkId,
    samples: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    if !enabled {
        return;
    }
    let mut b = Bencher {
        samples,
        last_mean: None,
    };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{}", id.label),
        None => id.label,
    };
    match b.last_mean {
        Some(mean) => println!("bench: {label:<60} {mean:>12.2?}/iter ({samples} samples)"),
        None => println!("bench: {label:<60} (no measurement)"),
    }
}

/// Collect benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` for one or more groups. Exits immediately unless
/// `--bench` is present in argv (i.e. under `cargo bench`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !std::env::args().any(|a| a == "--bench") {
                // `cargo test` runs bench binaries for smoke-testing;
                // skip the (expensive) measurement setup entirely.
                return;
            }
            $($group();)+
        }
    };
}
