//! Offline stand-in for the `rand` crate (see `crates/shims/README.md`).
//!
//! Implements the slice of the `rand 0.8` API this workspace uses:
//! [`rngs::SmallRng`] + [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]
//! over integer ranges, [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded
//! through splitmix64 — deterministic per seed.

/// Types that can seed themselves from a `u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-value interface.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform value from an integer or float range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 uniform mantissa bits, the standard open [0,1) construction.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Types a uniform value can be drawn for. The single blanket
/// [`SampleRange`] impl per range shape keys inference off this trait —
/// integer-literal ranges fall back to `i32` exactly as with the real
/// crate.
pub trait SampleUniform: Sized {
    /// Uniform in `lo..hi`.
    fn sample_excl<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform in `lo..=hi`.
    fn sample_incl<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        T::sample_excl(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_incl(rng, lo, hi)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_excl<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }

            fn sample_incl<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_excl<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + (hi - lo) * unit as $t
            }

            fn sample_incl<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                Self::sample_excl(rng, lo, hi)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — small, fast, and plenty for workload generation.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice helpers (only `shuffle` is needed here).
    pub trait SliceRandom {
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            // Fisher-Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }
}
