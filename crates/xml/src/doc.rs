//! Shredded columnar document storage with the pre/size/level encoding.
//!
//! One row per tree node in pre (document) order. For a node with pre rank
//! `p`, `size[p]` is its number of descendants, so its subtree occupies pre
//! ranks `p ..= p + size[p]` — the *region encoding* that Staircase Join and
//! the StandOff MergeJoin post-processing exploit. Attributes are shredded
//! into a separate CSR-encoded table keyed by owner pre rank, exactly as in
//! MonetDB/XQuery.

use std::collections::HashMap;
use std::fmt;

use crate::name::{NameId, NameTable};
use crate::node::{NodeId, NodeKind};

/// A single shredded XML document (fragment).
///
/// Construct with [`crate::DocumentBuilder`] or [`crate::parse_document`];
/// this type is immutable after construction (annotation databases in the
/// paper are bulk-loaded, then queried).
#[derive(Clone)]
pub struct Document {
    uri: Option<String>,
    names: NameTable,
    // --- tree node columns, indexed by pre rank ---
    kind: Vec<NodeKind>,
    size: Vec<u32>,
    level: Vec<u16>,
    parent: Vec<u32>,
    name: Vec<NameId>,
    value: Vec<Box<str>>,
    // --- attribute table (CSR over owner pre rank) ---
    attr_first: Vec<u32>,
    attr_owner: Vec<u32>,
    attr_name: Vec<NameId>,
    attr_value: Vec<Box<str>>,
    // --- element name index: name -> pre ranks in document order ---
    elem_index: HashMap<NameId, Vec<u32>>,
}

impl Document {
    /// Internal constructor used by the builder.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_columns(
        uri: Option<String>,
        names: NameTable,
        kind: Vec<NodeKind>,
        size: Vec<u32>,
        level: Vec<u16>,
        parent: Vec<u32>,
        name: Vec<NameId>,
        value: Vec<Box<str>>,
        attr_first: Vec<u32>,
        attr_owner: Vec<u32>,
        attr_name: Vec<NameId>,
        attr_value: Vec<Box<str>>,
    ) -> Self {
        let mut elem_index: HashMap<NameId, Vec<u32>> = HashMap::new();
        for (pre, (&k, &n)) in kind.iter().zip(name.iter()).enumerate() {
            if k == NodeKind::Element {
                elem_index.entry(n).or_default().push(pre as u32);
            }
        }
        Self::from_columns_with_index(
            uri, names, kind, size, level, parent, name, value, attr_first, attr_owner, attr_name,
            attr_value, elem_index,
        )
    }

    /// Constructor with a prebuilt element-name index (the snapshot load
    /// path — the codec deserializes the index instead of rescanning the
    /// kind/name columns). The caller is responsible for validating that
    /// the index matches the columns.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_columns_with_index(
        uri: Option<String>,
        names: NameTable,
        kind: Vec<NodeKind>,
        size: Vec<u32>,
        level: Vec<u16>,
        parent: Vec<u32>,
        name: Vec<NameId>,
        value: Vec<Box<str>>,
        attr_first: Vec<u32>,
        attr_owner: Vec<u32>,
        attr_name: Vec<NameId>,
        attr_value: Vec<Box<str>>,
        elem_index: HashMap<NameId, Vec<u32>>,
    ) -> Self {
        debug_assert_eq!(attr_first.len(), kind.len() + 1);
        Document {
            uri,
            names,
            kind,
            size,
            level,
            parent,
            name,
            value,
            attr_first,
            attr_owner,
            attr_name,
            attr_value,
            elem_index,
        }
    }

    /// The raw element-name index (codec serialization hook).
    pub(crate) fn elem_index(&self) -> &HashMap<NameId, Vec<u32>> {
        &self.elem_index
    }

    /// The URI this document was registered under, if any.
    pub fn uri(&self) -> Option<&str> {
        self.uri.as_deref()
    }

    pub(crate) fn set_uri(&mut self, uri: String) {
        self.uri = Some(uri);
    }

    /// Number of tree nodes (including the document node at pre 0).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.kind.len()
    }

    /// Number of attribute nodes.
    #[inline]
    pub fn attr_count(&self) -> usize {
        self.attr_name.len()
    }

    /// The document node (root of the fragment).
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId::tree(0)
    }

    /// QName table of this document.
    #[inline]
    pub fn names(&self) -> &NameTable {
        &self.names
    }

    /// Kind of the tree node at `pre`.
    #[inline]
    pub fn kind(&self, pre: u32) -> NodeKind {
        self.kind[pre as usize]
    }

    /// Subtree size (descendant count) of the tree node at `pre`.
    #[inline]
    pub fn size(&self, pre: u32) -> u32 {
        self.size[pre as usize]
    }

    /// Depth of the tree node at `pre` (document node has level 0).
    #[inline]
    pub fn level(&self, pre: u32) -> u16 {
        self.level[pre as usize]
    }

    /// Parent pre rank of the tree node at `pre` (the document node is its
    /// own parent).
    #[inline]
    pub fn parent(&self, pre: u32) -> u32 {
        self.parent[pre as usize]
    }

    /// Name id of the tree node at `pre` (`NameId::NONE` for unnamed kinds).
    #[inline]
    pub fn name_id(&self, pre: u32) -> NameId {
        self.name[pre as usize]
    }

    /// Lexical name of a node (tree or attribute); empty for unnamed nodes.
    pub fn node_name(&self, id: NodeId) -> String {
        match id.attr_index() {
            Some(a) => self.names.lexical(self.attr_name[a as usize]),
            None => self
                .names
                .lexical(self.name[id.pre().expect("tree id") as usize]),
        }
    }

    /// Name id of a node (tree or attribute).
    pub fn node_name_id(&self, id: NodeId) -> NameId {
        match id.attr_index() {
            Some(a) => self.attr_name[a as usize],
            None => self.name[id.pre().expect("tree id") as usize],
        }
    }

    /// Kind of a node id; attributes report as `None` (they have no
    /// [`NodeKind`]; callers branch on [`NodeId::is_attr`] first).
    pub fn tree_kind(&self, id: NodeId) -> Option<NodeKind> {
        id.pre().map(|p| self.kind(p))
    }

    /// Raw value column of the tree node at `pre` (text/comment/PI content).
    #[inline]
    pub fn value(&self, pre: u32) -> &str {
        &self.value[pre as usize]
    }

    // ----- attributes -----

    /// Attribute-table index range of the element at `pre`.
    #[inline]
    pub fn attr_range(&self, pre: u32) -> std::ops::Range<u32> {
        self.attr_first[pre as usize]..self.attr_first[pre as usize + 1]
    }

    /// Attribute node ids of the element at `pre`, in attribute order.
    pub fn attributes(&self, pre: u32) -> impl Iterator<Item = NodeId> + '_ {
        self.attr_range(pre).map(NodeId::attr)
    }

    /// Owner element pre rank of the attribute with table index `idx`.
    #[inline]
    pub fn attr_owner(&self, idx: u32) -> u32 {
        self.attr_owner[idx as usize]
    }

    /// Name id of the attribute with table index `idx`.
    #[inline]
    pub fn attr_name_id(&self, idx: u32) -> NameId {
        self.attr_name[idx as usize]
    }

    /// Value of the attribute with table index `idx`.
    #[inline]
    pub fn attr_value(&self, idx: u32) -> &str {
        &self.attr_value[idx as usize]
    }

    /// Value of the attribute of element `pre` named `name`, if present.
    pub fn attribute(&self, pre: u32, name: &str) -> Option<&str> {
        let name_id = self.names.get(name)?;
        self.attr_range(pre)
            .find(|&a| self.attr_name[a as usize] == name_id)
            .map(|a| &*self.attr_value[a as usize])
    }

    /// Attribute node id of element `pre` with name id `name_id`.
    pub fn attribute_by_id(&self, pre: u32, name_id: NameId) -> Option<NodeId> {
        self.attr_range(pre)
            .find(|&a| self.attr_name[a as usize] == name_id)
            .map(NodeId::attr)
    }

    // ----- navigation -----

    /// First child of the node at `pre`, if any.
    #[inline]
    pub fn first_child(&self, pre: u32) -> Option<u32> {
        if self.size(pre) > 0 {
            Some(pre + 1)
        } else {
            None
        }
    }

    /// Next sibling of the node at `pre`, if any.
    #[inline]
    pub fn next_sibling(&self, pre: u32) -> Option<u32> {
        if pre == 0 {
            return None; // document node
        }
        let parent = self.parent(pre);
        let next = pre + self.size(pre) + 1;
        if next <= parent + self.size(parent) {
            Some(next)
        } else {
            None
        }
    }

    /// Children of the node at `pre`, in document order.
    pub fn children(&self, pre: u32) -> Children<'_> {
        Children {
            doc: self,
            next: self.first_child(pre),
            end: pre + self.size(pre),
        }
    }

    /// Pre ranks of the subtree rooted at `pre`, *excluding* `pre` itself.
    #[inline]
    pub fn descendants(&self, pre: u32) -> std::ops::RangeInclusive<u32> {
        let s = self.size(pre);
        if s == 0 {
            // Empty range (start > end).
            #[allow(clippy::reversed_empty_ranges)]
            {
                1..=0
            }
        } else {
            (pre + 1)..=(pre + s)
        }
    }

    /// Does `anc` (pre rank) contain `desc` (pre rank), strictly?
    #[inline]
    pub fn is_ancestor(&self, anc: u32, desc: u32) -> bool {
        anc < desc && desc <= anc + self.size(anc)
    }

    /// Element pre ranks with the given name, in document order. Returns an
    /// empty slice when the name does not occur — this is the element-name
    /// index that produces *candidate sequences* for the StandOff joins
    /// (paper §4.3).
    pub fn elements_named(&self, name: &str) -> &[u32] {
        self.names
            .get(name)
            .and_then(|id| self.elem_index.get(&id))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// All element pre ranks in document order.
    pub fn all_elements(&self) -> Vec<u32> {
        (0..self.node_count() as u32)
            .filter(|&p| self.kind(p) == NodeKind::Element)
            .collect()
    }

    // ----- string value -----

    /// The typed-value string of a node per XPath: for elements and the
    /// document node, the concatenation of all descendant text nodes; for
    /// text/comment/PI nodes, their content; for attributes, their value.
    pub fn string_value(&self, id: NodeId) -> String {
        match id.attr_index() {
            Some(a) => self.attr_value[a as usize].to_string(),
            None => {
                let pre = id.pre().expect("tree id");
                match self.kind(pre) {
                    NodeKind::Text | NodeKind::Comment | NodeKind::Pi => {
                        self.value(pre).to_string()
                    }
                    NodeKind::Element | NodeKind::Document => {
                        let mut out = String::new();
                        for d in self.descendants(pre) {
                            if self.kind(d) == NodeKind::Text {
                                out.push_str(self.value(d));
                            }
                        }
                        out
                    }
                }
            }
        }
    }

    /// Document-order sort key for any node id. Attributes order after
    /// their owner element but before the element's first child, and among
    /// themselves by attribute-table index.
    #[inline]
    pub fn order_key(&self, id: NodeId) -> (u32, u32) {
        match id.attr_index() {
            Some(a) => (
                self.attr_owner[a as usize],
                1 + a - self.attr_first[self.attr_owner[a as usize] as usize],
            ),
            None => (id.pre().expect("tree id"), 0),
        }
    }

    /// Validate internal invariants (used by tests and the builder in debug
    /// builds): sizes nest properly, levels and parents are consistent,
    /// attribute CSR is monotone.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.node_count();
        if n == 0 {
            return Err("document has no nodes".into());
        }
        if self.kind(0) != NodeKind::Document {
            return Err("pre 0 is not the document node".into());
        }
        if self.size(0) as usize != n - 1 {
            return Err(format!(
                "document node size {} != node count - 1 ({})",
                self.size(0),
                n - 1
            ));
        }
        for pre in 1..n as u32 {
            let parent = self.parent(pre);
            if parent >= pre {
                return Err(format!("node {pre} has parent {parent} >= itself"));
            }
            if !self.is_ancestor(parent, pre) {
                return Err(format!("node {pre} outside parent {parent} region"));
            }
            if self.level(pre) != self.level(parent) + 1 {
                return Err(format!("node {pre} level inconsistent with parent"));
            }
            if pre + self.size(pre) > parent + self.size(parent) {
                return Err(format!("node {pre} subtree leaks out of parent"));
            }
        }
        if self.attr_first.len() != n + 1 {
            return Err("attr_first length mismatch".into());
        }
        for w in self.attr_first.windows(2) {
            if w[0] > w[1] {
                return Err("attr_first not monotone".into());
            }
        }
        if *self.attr_first.last().unwrap() as usize != self.attr_name.len() {
            return Err("attr_first does not cover attribute table".into());
        }
        for (i, &owner) in self.attr_owner.iter().enumerate() {
            let r = self.attr_range(owner);
            if !(r.start <= i as u32 && (i as u32) < r.end) {
                return Err(format!("attribute {i} owner CSR mismatch"));
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Document")
            .field("uri", &self.uri)
            .field("nodes", &self.node_count())
            .field("attrs", &self.attr_count())
            .finish()
    }
}

/// Iterator over the children of a node.
pub struct Children<'d> {
    doc: &'d Document,
    next: Option<u32>,
    end: u32,
}

impl Iterator for Children<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        let cur = self.next?;
        let following = cur + self.doc.size(cur) + 1;
        self.next = if following <= self.end {
            Some(following)
        } else {
            None
        };
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::DocumentBuilder;
    use crate::node::{NodeId, NodeKind};

    /// `<a><b x="1"/><c>t<d/></c></a>`
    fn sample() -> crate::Document {
        let mut b = DocumentBuilder::new();
        b.start_element("a");
        b.start_element("b");
        b.attribute("x", "1");
        b.end_element();
        b.start_element("c");
        b.text("t");
        b.start_element("d");
        b.end_element();
        b.end_element();
        b.end_element();
        b.finish().unwrap()
    }

    #[test]
    fn invariants_hold() {
        sample().check_invariants().unwrap();
    }

    #[test]
    fn pre_size_level_encoding() {
        let d = sample();
        // pre: 0=doc 1=a 2=b 3=c 4=t 5=d
        assert_eq!(d.node_count(), 6);
        assert_eq!(d.kind(0), NodeKind::Document);
        assert_eq!(d.kind(1), NodeKind::Element);
        assert_eq!(d.size(1), 4);
        assert_eq!(d.size(2), 0);
        assert_eq!(d.size(3), 2);
        assert_eq!(d.level(1), 1);
        assert_eq!(d.level(5), 3);
        assert_eq!(d.parent(5), 3);
    }

    #[test]
    fn children_iteration() {
        let d = sample();
        let kids: Vec<u32> = d.children(1).collect();
        assert_eq!(kids, vec![2, 3]);
        let kids: Vec<u32> = d.children(3).collect();
        assert_eq!(kids, vec![4, 5]);
        assert_eq!(d.children(2).count(), 0);
    }

    #[test]
    fn descendants_range() {
        let d = sample();
        let desc: Vec<u32> = d.descendants(1).collect();
        assert_eq!(desc, vec![2, 3, 4, 5]);
        assert_eq!(d.descendants(5).count(), 0);
    }

    #[test]
    fn sibling_navigation() {
        let d = sample();
        assert_eq!(d.next_sibling(2), Some(3));
        assert_eq!(d.next_sibling(3), None);
        assert_eq!(d.first_child(3), Some(4));
        assert_eq!(d.first_child(2), None);
    }

    #[test]
    fn attribute_lookup() {
        let d = sample();
        assert_eq!(d.attribute(2, "x"), Some("1"));
        assert_eq!(d.attribute(2, "y"), None);
        assert_eq!(d.attribute(3, "x"), None);
        let attrs: Vec<NodeId> = d.attributes(2).collect();
        assert_eq!(attrs.len(), 1);
        assert_eq!(d.node_name(attrs[0]), "x");
        assert_eq!(d.string_value(attrs[0]), "1");
    }

    #[test]
    fn string_values() {
        let d = sample();
        assert_eq!(d.string_value(NodeId::tree(1)), "t");
        assert_eq!(d.string_value(NodeId::tree(3)), "t");
        assert_eq!(d.string_value(NodeId::tree(4)), "t");
        assert_eq!(d.string_value(NodeId::tree(5)), "");
    }

    #[test]
    fn element_name_index() {
        let d = sample();
        assert_eq!(d.elements_named("b"), &[2]);
        assert_eq!(d.elements_named("nope"), &[] as &[u32]);
        assert_eq!(d.all_elements(), vec![1, 2, 3, 5]);
    }

    #[test]
    fn order_keys_interleave_attributes() {
        let d = sample();
        let elem_b = d.order_key(NodeId::tree(2));
        let attr_x = d.order_key(NodeId::attr(0));
        let elem_c = d.order_key(NodeId::tree(3));
        assert!(elem_b < attr_x, "attribute sorts after owner");
        assert!(attr_x < elem_c, "attribute sorts before next element");
    }

    #[test]
    fn is_ancestor_is_strict() {
        let d = sample();
        assert!(d.is_ancestor(1, 5));
        assert!(d.is_ancestor(3, 4));
        assert!(!d.is_ancestor(3, 3));
        assert!(!d.is_ancestor(5, 3));
        assert!(!d.is_ancestor(2, 3));
    }
}
