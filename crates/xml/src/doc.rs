//! Shredded columnar document storage with the pre/size/level encoding.
//!
//! One row per tree node in pre (document) order. For a node with pre rank
//! `p`, `size[p]` is its number of descendants, so its subtree occupies pre
//! ranks `p ..= p + size[p]` — the *region encoding* that Staircase Join and
//! the StandOff MergeJoin post-processing exploit. Attributes are shredded
//! into a separate CSR-encoded table keyed by owner pre rank, exactly as in
//! MonetDB/XQuery.
//!
//! Every column is a [`PodCol`]/[`StrArena`]: owned when the document was
//! parsed or built in memory, a zero-copy view over a snapshot buffer when
//! it was mounted (see `standoff-store`'s SOSN v3 format). The element-name
//! index is a CSR over `(name id → element pre ranks)` — persisted by the
//! codecs and mounted as-is, never rebuilt through a hash map.

use std::fmt;
use std::io;
use std::ops::Range;

use crate::column::{PodCol, SharedBytes, StrArena};
use crate::name::{NameId, NameTable};
use crate::node::{NodeId, NodeKind};

/// The node-kind column: a validated `u8` column. View construction
/// rejects any byte that is not a [`NodeKind`] discriminant, so `get`
/// can reinterpret without a per-access check.
#[derive(Clone, Default, Debug)]
pub struct KindCol {
    raw: PodCol<u8>,
}

impl KindCol {
    /// Owned backend (parse/build path — values are valid by type).
    pub fn from_kinds(kinds: Vec<NodeKind>) -> KindCol {
        KindCol {
            raw: PodCol::owned(kinds.into_iter().map(|k| k as u8).collect()),
        }
    }

    /// Mount a kind column, validating every byte.
    pub fn view(buf: &SharedBytes, range: Range<usize>) -> io::Result<KindCol> {
        let raw = PodCol::view(buf, range)?;
        if raw.iter().any(|&b| b > NodeKind::Pi as u8) {
            return Err(crate::wire::bad_data("invalid node kind in kind column"));
        }
        Ok(KindCol { raw })
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    #[inline]
    pub fn get(&self, i: usize) -> NodeKind {
        match self.raw[i] {
            0 => NodeKind::Document,
            1 => NodeKind::Element,
            2 => NodeKind::Text,
            3 => NodeKind::Comment,
            _ => NodeKind::Pi, // 4; >4 rejected at construction
        }
    }

    /// The raw byte column (codec/snapshot writers).
    pub fn raw_bytes(&self) -> &[u8] {
        &self.raw
    }

    pub fn is_view(&self) -> bool {
        self.raw.is_view()
    }

    pub fn iter(&self) -> impl Iterator<Item = NodeKind> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }
}

/// Element-name index in CSR form: `names` holds the distinct element
/// name ids in ascending order, `offsets` the CSR boundaries, and `pres`
/// the element pre ranks of each bucket in document order. This is the
/// candidate-sequence source of the StandOff joins (paper §4.3); the
/// query engine borrows bucket slices directly, so bucket ordering is a
/// load-time invariant, not a per-query re-check.
#[derive(Clone, Default, Debug)]
pub struct ElemIndex {
    pub names: PodCol<u32>,
    pub offsets: PodCol<u32>,
    pub pres: PodCol<u32>,
}

impl ElemIndex {
    /// Build from the kind/name columns with a counting pass per name id
    /// (no hash map: two scans plus a prefix sum).
    pub fn build(kind: &KindCol, name: &[u32], name_count: usize) -> ElemIndex {
        let mut counts = vec![0u32; name_count];
        for i in 0..kind.len() {
            if kind.get(i) == NodeKind::Element {
                counts[name[i] as usize] += 1;
            }
        }
        let mut names = Vec::new();
        let mut offsets = vec![0u32];
        let mut slot_of = vec![u32::MAX; name_count];
        let mut total = 0u32;
        for (id, &c) in counts.iter().enumerate() {
            if c > 0 {
                slot_of[id] = names.len() as u32;
                names.push(id as u32);
                total += c;
                offsets.push(total);
            }
        }
        // Second pass places pre ranks; per-bucket write cursors start at
        // each bucket's CSR offset.
        let mut cursor: Vec<u32> = offsets[..offsets.len() - 1].to_vec();
        let mut pres = vec![0u32; total as usize];
        for i in 0..kind.len() {
            if kind.get(i) == NodeKind::Element {
                let slot = slot_of[name[i] as usize] as usize;
                pres[cursor[slot] as usize] = i as u32;
                cursor[slot] += 1;
            }
        }
        ElemIndex {
            names: PodCol::owned(names),
            offsets: PodCol::owned(offsets),
            pres: PodCol::owned(pres),
        }
    }

    /// Element pre ranks for a name id (empty if unindexed).
    #[inline]
    pub fn lookup(&self, id: NameId) -> &[u32] {
        match self.names.binary_search(&id.0) {
            Ok(k) => &self.pres[self.offsets[k] as usize..self.offsets[k + 1] as usize],
            Err(_) => &[],
        }
    }

    /// Number of distinct indexed names.
    pub fn name_count(&self) -> usize {
        self.names.len()
    }

    /// The `k`-th `(name id, bucket)` pair, in name-id order.
    pub fn bucket(&self, k: usize) -> (u32, &[u32]) {
        (
            self.names[k],
            &self.pres[self.offsets[k] as usize..self.offsets[k + 1] as usize],
        )
    }

    /// Validate the index against the node columns — same guarantees the
    /// eager decoders enforced: ascending distinct names in range,
    /// non-empty strictly-ascending buckets that agree with the columns,
    /// and full element coverage.
    pub fn validate(&self, kind: &KindCol, name: &[u32], name_count: usize) -> Result<(), String> {
        if self.offsets.len() != self.names.len() + 1 {
            return Err("element index CSR length mismatch".into());
        }
        if self.offsets.first() != Some(&0)
            || *self.offsets.last().unwrap() as usize != self.pres.len()
        {
            return Err("element index CSR does not cover its buckets".into());
        }
        if !self.offsets.windows(2).all(|w| w[0] < w[1]) {
            return Err("empty element-index bucket".into());
        }
        if !self.names.windows(2).all(|w| w[0] < w[1]) {
            return Err("element index not in name-id order".into());
        }
        if self.names.last().is_some_and(|&n| n as usize >= name_count) {
            return Err("indexed name id out of range".into());
        }
        let n = kind.len();
        for k in 0..self.names.len() {
            let (id, pres) = self.bucket(k);
            for &pre in pres {
                if pre as usize >= n
                    || kind.get(pre as usize) != NodeKind::Element
                    || name[pre as usize] != id
                {
                    return Err("element index disagrees with node columns".into());
                }
            }
            if !pres.windows(2).all(|w| w[0] < w[1]) {
                return Err("element index not in document order".into());
            }
        }
        let elements = kind.iter().filter(|&k| k == NodeKind::Element).count();
        if self.pres.len() != elements {
            return Err("element index does not cover all elements".into());
        }
        Ok(())
    }
}

/// The raw column storage behind a [`Document`] — each column either
/// owned or a zero-copy view over a mounted snapshot buffer. Assembled
/// by codecs and the snapshot mount path, then validated as a whole by
/// [`Document::from_storage`].
pub struct DocumentParts {
    pub uri: Option<String>,
    pub names: NameTable,
    pub kind: KindCol,
    pub size: PodCol<u32>,
    pub level: PodCol<u16>,
    pub parent: PodCol<u32>,
    /// Raw name ids (`NameId::NONE` = `u32::MAX` for unnamed kinds).
    pub name: PodCol<u32>,
    pub values: StrArena,
    pub attr_first: PodCol<u32>,
    pub attr_owner: PodCol<u32>,
    pub attr_name: PodCol<u32>,
    pub attr_values: StrArena,
    pub elem: ElemIndex,
}

/// Borrowed raw columns of a [`Document`] (see [`Document::storage`]).
pub struct DocumentStorageRef<'a> {
    pub names: &'a NameTable,
    pub kind_bytes: &'a [u8],
    pub size: &'a [u32],
    pub level: &'a [u16],
    pub parent: &'a [u32],
    pub name: &'a [u32],
    pub values: &'a StrArena,
    pub attr_first: &'a [u32],
    pub attr_owner: &'a [u32],
    pub attr_name: &'a [u32],
    pub attr_values: &'a StrArena,
    pub elem: &'a ElemIndex,
}

/// A single shredded XML document (fragment).
///
/// Construct with [`crate::DocumentBuilder`] or [`crate::parse_document`];
/// this type is immutable after construction (annotation databases in the
/// paper are bulk-loaded, then queried).
#[derive(Clone)]
pub struct Document {
    uri: Option<String>,
    names: NameTable,
    // --- tree node columns, indexed by pre rank ---
    kind: KindCol,
    size: PodCol<u32>,
    level: PodCol<u16>,
    parent: PodCol<u32>,
    name: PodCol<u32>,
    values: StrArena,
    // --- attribute table (CSR over owner pre rank) ---
    attr_first: PodCol<u32>,
    attr_owner: PodCol<u32>,
    attr_name: PodCol<u32>,
    attr_values: StrArena,
    // --- element name index: CSR name -> pre ranks in document order ---
    elem: ElemIndex,
}

impl Document {
    /// Internal constructor used by the builder and the legacy (v1)
    /// document codec: owned columns, element index built by counting
    /// scan. The caller guarantees column validity (the builder by
    /// construction, the codec by a follow-up `check_invariants`).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_columns(
        uri: Option<String>,
        names: NameTable,
        kind: Vec<NodeKind>,
        size: Vec<u32>,
        level: Vec<u16>,
        parent: Vec<u32>,
        name: Vec<NameId>,
        values: StrArena,
        attr_first: Vec<u32>,
        attr_owner: Vec<u32>,
        attr_name: Vec<NameId>,
        attr_values: StrArena,
    ) -> Self {
        debug_assert_eq!(attr_first.len(), kind.len() + 1);
        let kind = KindCol::from_kinds(kind);
        let name: Vec<u32> = name.into_iter().map(|id| id.0).collect();
        let elem = ElemIndex::build(&kind, &name, names.len());
        Document {
            uri,
            names,
            kind,
            size: size.into(),
            level: level.into(),
            parent: parent.into(),
            name: name.into(),
            values,
            attr_first: attr_first.into(),
            attr_owner: attr_owner.into(),
            attr_name: PodCol::owned(attr_name.into_iter().map(|id| id.0).collect()),
            attr_values,
            elem,
        }
    }

    /// Assemble a document from raw (possibly buffer-backed) storage,
    /// validating **everything**: column arity, name-id ranges, the
    /// structural pre/size/level invariants, attribute CSR consistency,
    /// and the element-name index's agreement with the columns. This is
    /// the single trust boundary of the codec v2 read path and the SOSN
    /// v3 snapshot mount — a corrupted file fails here, cleanly.
    pub fn from_storage(parts: DocumentParts) -> Result<Document, String> {
        let n = parts.kind.len();
        if n == 0 {
            return Err("document has no nodes".into());
        }
        if parts.size.len() != n
            || parts.level.len() != n
            || parts.parent.len() != n
            || parts.name.len() != n
            || parts.values.len() != n
        {
            return Err("node column lengths disagree".into());
        }
        if parts.attr_first.len() != n + 1 {
            return Err("attr_first length mismatch".into());
        }
        let a = parts.attr_name.len();
        if parts.attr_owner.len() != a || parts.attr_values.len() != a {
            return Err("attribute column lengths disagree".into());
        }
        let name_count = parts.names.len();
        for &id in parts.name.iter() {
            if id != NameId::NONE.0 && id as usize >= name_count {
                return Err("name id out of range".into());
            }
        }
        for &id in parts.attr_name.iter() {
            if id as usize >= name_count {
                return Err("attribute name out of range".into());
            }
        }
        parts.elem.validate(&parts.kind, &parts.name, name_count)?;
        let doc = Document {
            uri: parts.uri,
            names: parts.names,
            kind: parts.kind,
            size: parts.size,
            level: parts.level,
            parent: parts.parent,
            name: parts.name,
            values: parts.values,
            attr_first: parts.attr_first,
            attr_owner: parts.attr_owner,
            attr_name: parts.attr_name,
            attr_values: parts.attr_values,
            elem: parts.elem,
        };
        doc.check_invariants()?;
        Ok(doc)
    }

    /// The element-name index (codec serialization hook).
    pub(crate) fn elem_index(&self) -> &ElemIndex {
        &self.elem
    }

    /// Borrow the raw column storage (the snapshot writer's hook — each
    /// slice is dumped as one aligned section).
    pub fn storage(&self) -> DocumentStorageRef<'_> {
        DocumentStorageRef {
            names: &self.names,
            kind_bytes: self.kind.raw_bytes(),
            size: &self.size,
            level: &self.level,
            parent: &self.parent,
            name: &self.name,
            values: &self.values,
            attr_first: &self.attr_first,
            attr_owner: &self.attr_owner,
            attr_name: &self.attr_name,
            attr_values: &self.attr_values,
            elem: &self.elem,
        }
    }

    /// Are the bulk node columns zero-copy views over a mounted snapshot
    /// buffer (vs owned vectors)? Benches and tests use this to assert
    /// the mount path actually mounted.
    pub fn is_mounted(&self) -> bool {
        self.kind.is_view() && self.size.is_view() && self.values.is_view()
    }

    /// The URI this document was registered under, if any.
    pub fn uri(&self) -> Option<&str> {
        self.uri.as_deref()
    }

    pub(crate) fn set_uri(&mut self, uri: String) {
        self.uri = Some(uri);
    }

    /// Number of tree nodes (including the document node at pre 0).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.kind.len()
    }

    /// Number of attribute nodes.
    #[inline]
    pub fn attr_count(&self) -> usize {
        self.attr_name.len()
    }

    /// The document node (root of the fragment).
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId::tree(0)
    }

    /// QName table of this document.
    #[inline]
    pub fn names(&self) -> &NameTable {
        &self.names
    }

    /// Kind of the tree node at `pre`.
    #[inline]
    pub fn kind(&self, pre: u32) -> NodeKind {
        self.kind.get(pre as usize)
    }

    /// Subtree size (descendant count) of the tree node at `pre`.
    #[inline]
    pub fn size(&self, pre: u32) -> u32 {
        self.size[pre as usize]
    }

    /// Depth of the tree node at `pre` (document node has level 0).
    #[inline]
    pub fn level(&self, pre: u32) -> u16 {
        self.level[pre as usize]
    }

    /// Parent pre rank of the tree node at `pre` (the document node is its
    /// own parent).
    #[inline]
    pub fn parent(&self, pre: u32) -> u32 {
        self.parent[pre as usize]
    }

    /// Name id of the tree node at `pre` (`NameId::NONE` for unnamed kinds).
    #[inline]
    pub fn name_id(&self, pre: u32) -> NameId {
        NameId(self.name[pre as usize])
    }

    /// Lexical name of a node (tree or attribute); empty for unnamed nodes.
    pub fn node_name(&self, id: NodeId) -> String {
        self.names.lexical(self.node_name_id(id))
    }

    /// Name id of a node (tree or attribute).
    pub fn node_name_id(&self, id: NodeId) -> NameId {
        match id.attr_index() {
            Some(a) => NameId(self.attr_name[a as usize]),
            None => self.name_id(id.pre().expect("tree id")),
        }
    }

    /// Kind of a node id; attributes report as `None` (they have no
    /// [`NodeKind`]; callers branch on [`NodeId::is_attr`] first).
    pub fn tree_kind(&self, id: NodeId) -> Option<NodeKind> {
        id.pre().map(|p| self.kind(p))
    }

    /// Raw value column of the tree node at `pre` (text/comment/PI content).
    #[inline]
    pub fn value(&self, pre: u32) -> &str {
        self.values.get(pre as usize)
    }

    // ----- attributes -----

    /// Attribute-table index range of the element at `pre`.
    #[inline]
    pub fn attr_range(&self, pre: u32) -> std::ops::Range<u32> {
        self.attr_first[pre as usize]..self.attr_first[pre as usize + 1]
    }

    /// Attribute node ids of the element at `pre`, in attribute order.
    pub fn attributes(&self, pre: u32) -> impl Iterator<Item = NodeId> + '_ {
        self.attr_range(pre).map(NodeId::attr)
    }

    /// Owner element pre rank of the attribute with table index `idx`.
    #[inline]
    pub fn attr_owner(&self, idx: u32) -> u32 {
        self.attr_owner[idx as usize]
    }

    /// Name id of the attribute with table index `idx`.
    #[inline]
    pub fn attr_name_id(&self, idx: u32) -> NameId {
        NameId(self.attr_name[idx as usize])
    }

    /// Value of the attribute with table index `idx`.
    #[inline]
    pub fn attr_value(&self, idx: u32) -> &str {
        self.attr_values.get(idx as usize)
    }

    /// Value of the attribute of element `pre` named `name`, if present.
    pub fn attribute(&self, pre: u32, name: &str) -> Option<&str> {
        let name_id = self.names.get(name)?;
        self.attr_range(pre)
            .find(|&a| self.attr_name[a as usize] == name_id.0)
            .map(|a| self.attr_values.get(a as usize))
    }

    /// Attribute node id of element `pre` with name id `name_id`.
    pub fn attribute_by_id(&self, pre: u32, name_id: NameId) -> Option<NodeId> {
        self.attr_range(pre)
            .find(|&a| self.attr_name[a as usize] == name_id.0)
            .map(NodeId::attr)
    }

    // ----- navigation -----

    /// First child of the node at `pre`, if any.
    #[inline]
    pub fn first_child(&self, pre: u32) -> Option<u32> {
        if self.size(pre) > 0 {
            Some(pre + 1)
        } else {
            None
        }
    }

    /// Next sibling of the node at `pre`, if any.
    #[inline]
    pub fn next_sibling(&self, pre: u32) -> Option<u32> {
        if pre == 0 {
            return None; // document node
        }
        let parent = self.parent(pre);
        let next = pre + self.size(pre) + 1;
        if next <= parent + self.size(parent) {
            Some(next)
        } else {
            None
        }
    }

    /// Children of the node at `pre`, in document order.
    pub fn children(&self, pre: u32) -> Children<'_> {
        Children {
            doc: self,
            next: self.first_child(pre),
            end: pre + self.size(pre),
        }
    }

    /// Pre ranks of the subtree rooted at `pre`, *excluding* `pre` itself.
    #[inline]
    pub fn descendants(&self, pre: u32) -> std::ops::RangeInclusive<u32> {
        let s = self.size(pre);
        if s == 0 {
            // Empty range (start > end).
            #[allow(clippy::reversed_empty_ranges)]
            {
                1..=0
            }
        } else {
            (pre + 1)..=(pre + s)
        }
    }

    /// Does `anc` (pre rank) contain `desc` (pre rank), strictly?
    #[inline]
    pub fn is_ancestor(&self, anc: u32, desc: u32) -> bool {
        anc < desc && desc <= anc + self.size(anc)
    }

    /// Element pre ranks with the given name, in document order. Returns an
    /// empty slice when the name does not occur — this is the element-name
    /// index that produces *candidate sequences* for the StandOff joins
    /// (paper §4.3).
    pub fn elements_named(&self, name: &str) -> &[u32] {
        self.names
            .get(name)
            .map(|id| self.elem.lookup(id))
            .unwrap_or(&[])
    }

    /// All element pre ranks in document order.
    pub fn all_elements(&self) -> Vec<u32> {
        (0..self.node_count() as u32)
            .filter(|&p| self.kind(p) == NodeKind::Element)
            .collect()
    }

    // ----- string value -----

    /// The typed-value string of a node per XPath: for elements and the
    /// document node, the concatenation of all descendant text nodes; for
    /// text/comment/PI nodes, their content; for attributes, their value.
    pub fn string_value(&self, id: NodeId) -> String {
        match id.attr_index() {
            Some(a) => self.attr_values.get(a as usize).to_string(),
            None => {
                let pre = id.pre().expect("tree id");
                match self.kind(pre) {
                    NodeKind::Text | NodeKind::Comment | NodeKind::Pi => {
                        self.value(pre).to_string()
                    }
                    NodeKind::Element | NodeKind::Document => {
                        let mut out = String::new();
                        for d in self.descendants(pre) {
                            if self.kind(d) == NodeKind::Text {
                                out.push_str(self.value(d));
                            }
                        }
                        out
                    }
                }
            }
        }
    }

    /// Document-order sort key for any node id. Attributes order after
    /// their owner element but before the element's first child, and among
    /// themselves by attribute-table index.
    #[inline]
    pub fn order_key(&self, id: NodeId) -> (u32, u32) {
        match id.attr_index() {
            Some(a) => (
                self.attr_owner[a as usize],
                1 + a - self.attr_first[self.attr_owner[a as usize] as usize],
            ),
            None => (id.pre().expect("tree id"), 0),
        }
    }

    /// Validate internal invariants (used by tests and the builder in debug
    /// builds): sizes nest properly, levels and parents are consistent,
    /// attribute CSR is monotone.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.node_count();
        if n == 0 {
            return Err("document has no nodes".into());
        }
        if self.kind(0) != NodeKind::Document {
            return Err("pre 0 is not the document node".into());
        }
        if self.size(0) as usize != n - 1 {
            return Err(format!(
                "document node size {} != node count - 1 ({})",
                self.size(0),
                n - 1
            ));
        }
        for pre in 1..n as u32 {
            let parent = self.parent(pre);
            if parent >= pre {
                return Err(format!("node {pre} has parent {parent} >= itself"));
            }
            if !self.is_ancestor(parent, pre) {
                return Err(format!("node {pre} outside parent {parent} region"));
            }
            if self.level(pre) != self.level(parent) + 1 {
                return Err(format!("node {pre} level inconsistent with parent"));
            }
            if pre + self.size(pre) > parent + self.size(parent) {
                return Err(format!("node {pre} subtree leaks out of parent"));
            }
        }
        if self.attr_first.len() != n + 1 {
            return Err("attr_first length mismatch".into());
        }
        for w in self.attr_first.windows(2) {
            if w[0] > w[1] {
                return Err("attr_first not monotone".into());
            }
        }
        if *self.attr_first.last().unwrap() as usize != self.attr_name.len() {
            return Err("attr_first does not cover attribute table".into());
        }
        for (i, &owner) in self.attr_owner.iter().enumerate() {
            if owner as usize >= n {
                return Err(format!("attribute {i} owner out of range"));
            }
            let r = self.attr_range(owner);
            if !(r.start <= i as u32 && (i as u32) < r.end) {
                return Err(format!("attribute {i} owner CSR mismatch"));
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Document")
            .field("uri", &self.uri)
            .field("nodes", &self.node_count())
            .field("attrs", &self.attr_count())
            .field("mounted", &self.is_mounted())
            .finish()
    }
}

/// Iterator over the children of a node.
pub struct Children<'d> {
    doc: &'d Document,
    next: Option<u32>,
    end: u32,
}

impl Iterator for Children<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        let cur = self.next?;
        let following = cur + self.doc.size(cur) + 1;
        self.next = if following <= self.end {
            Some(following)
        } else {
            None
        };
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::DocumentBuilder;
    use crate::node::{NodeId, NodeKind};

    /// `<a><b x="1"/><c>t<d/></c></a>`
    fn sample() -> crate::Document {
        let mut b = DocumentBuilder::new();
        b.start_element("a");
        b.start_element("b");
        b.attribute("x", "1");
        b.end_element();
        b.start_element("c");
        b.text("t");
        b.start_element("d");
        b.end_element();
        b.end_element();
        b.end_element();
        b.finish().unwrap()
    }

    #[test]
    fn invariants_hold() {
        sample().check_invariants().unwrap();
    }

    #[test]
    fn pre_size_level_encoding() {
        let d = sample();
        // pre: 0=doc 1=a 2=b 3=c 4=t 5=d
        assert_eq!(d.node_count(), 6);
        assert_eq!(d.kind(0), NodeKind::Document);
        assert_eq!(d.kind(1), NodeKind::Element);
        assert_eq!(d.size(1), 4);
        assert_eq!(d.size(2), 0);
        assert_eq!(d.size(3), 2);
        assert_eq!(d.level(1), 1);
        assert_eq!(d.level(5), 3);
        assert_eq!(d.parent(5), 3);
    }

    #[test]
    fn children_iteration() {
        let d = sample();
        let kids: Vec<u32> = d.children(1).collect();
        assert_eq!(kids, vec![2, 3]);
        let kids: Vec<u32> = d.children(3).collect();
        assert_eq!(kids, vec![4, 5]);
        assert_eq!(d.children(2).count(), 0);
    }

    #[test]
    fn descendants_range() {
        let d = sample();
        let desc: Vec<u32> = d.descendants(1).collect();
        assert_eq!(desc, vec![2, 3, 4, 5]);
        assert_eq!(d.descendants(5).count(), 0);
    }

    #[test]
    fn sibling_navigation() {
        let d = sample();
        assert_eq!(d.next_sibling(2), Some(3));
        assert_eq!(d.next_sibling(3), None);
        assert_eq!(d.first_child(3), Some(4));
        assert_eq!(d.first_child(2), None);
    }

    #[test]
    fn attribute_lookup() {
        let d = sample();
        assert_eq!(d.attribute(2, "x"), Some("1"));
        assert_eq!(d.attribute(2, "y"), None);
        assert_eq!(d.attribute(3, "x"), None);
        let attrs: Vec<NodeId> = d.attributes(2).collect();
        assert_eq!(attrs.len(), 1);
        assert_eq!(d.node_name(attrs[0]), "x");
        assert_eq!(d.string_value(attrs[0]), "1");
    }

    #[test]
    fn string_values() {
        let d = sample();
        assert_eq!(d.string_value(NodeId::tree(1)), "t");
        assert_eq!(d.string_value(NodeId::tree(3)), "t");
        assert_eq!(d.string_value(NodeId::tree(4)), "t");
        assert_eq!(d.string_value(NodeId::tree(5)), "");
    }

    #[test]
    fn element_name_index() {
        let d = sample();
        assert_eq!(d.elements_named("b"), &[2]);
        assert_eq!(d.elements_named("nope"), &[] as &[u32]);
        assert_eq!(d.all_elements(), vec![1, 2, 3, 5]);
        assert!(!d.is_mounted(), "built documents own their columns");
    }

    #[test]
    fn elem_index_buckets_are_sorted() {
        let d = sample();
        let idx = d.elem_index();
        assert!(idx.names.windows(2).all(|w| w[0] < w[1]));
        for k in 0..idx.name_count() {
            let (_, pres) = idx.bucket(k);
            assert!(pres.windows(2).all(|w| w[0] < w[1]));
        }
        idx.validate(&d.kind, &d.name, d.names.len()).unwrap();
    }

    #[test]
    fn order_keys_interleave_attributes() {
        let d = sample();
        let elem_b = d.order_key(NodeId::tree(2));
        let attr_x = d.order_key(NodeId::attr(0));
        let elem_c = d.order_key(NodeId::tree(3));
        assert!(elem_b < attr_x, "attribute sorts after owner");
        assert!(attr_x < elem_c, "attribute sorts before next element");
    }

    #[test]
    fn is_ancestor_is_strict() {
        let d = sample();
        assert!(d.is_ancestor(1, 5));
        assert!(d.is_ancestor(3, 4));
        assert!(!d.is_ancestor(3, 3));
        assert!(!d.is_ancestor(5, 3));
        assert!(!d.is_ancestor(2, 3));
    }
}
