//! Programmatic document construction.
//!
//! The builder appends nodes in document order and computes the pre/size/
//! level encoding incrementally: `size` is back-patched when an element is
//! closed. Attribute insertion is only legal directly after
//! `start_element`, mirroring the shredding order of a streaming parser.

use crate::column::StrArenaBuilder;
use crate::doc::Document;
use crate::error::XmlError;
use crate::name::{NameId, NameTable};
use crate::node::NodeKind;

/// Incremental builder producing a shredded [`Document`].
///
/// ```
/// use standoff_xml::DocumentBuilder;
/// let mut b = DocumentBuilder::new();
/// b.start_element("shot");
/// b.attribute("id", "Intro");
/// b.text("opening scene");
/// b.end_element();
/// let doc = b.finish().unwrap();
/// assert_eq!(doc.elements_named("shot").len(), 1);
/// ```
pub struct DocumentBuilder {
    names: NameTable,
    kind: Vec<NodeKind>,
    size: Vec<u32>,
    level: Vec<u16>,
    parent: Vec<u32>,
    name: Vec<NameId>,
    value: StrArenaBuilder,
    attr_first: Vec<u32>,
    attr_owner: Vec<u32>,
    attr_name: Vec<NameId>,
    attr_value: StrArenaBuilder,
    /// Stack of open element pre ranks (document node at bottom).
    open: Vec<u32>,
    /// True while attributes may still be appended to the last element.
    attrs_open: bool,
    uri: Option<String>,
}

impl Default for DocumentBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DocumentBuilder {
    pub fn new() -> Self {
        let mut b = DocumentBuilder {
            names: NameTable::new(),
            kind: Vec::new(),
            size: Vec::new(),
            level: Vec::new(),
            parent: Vec::new(),
            name: Vec::new(),
            value: StrArenaBuilder::new(),
            attr_first: Vec::new(),
            attr_owner: Vec::new(),
            attr_name: Vec::new(),
            attr_value: StrArenaBuilder::new(),
            open: Vec::new(),
            attrs_open: false,
            uri: None,
        };
        // Document node at pre 0.
        b.push_node(NodeKind::Document, NameId::NONE, "");
        b.open.push(0);
        b
    }

    /// Pre-size the columns for an expected node count (bulk loads).
    pub fn with_capacity(nodes: usize) -> Self {
        let mut b = Self::new();
        b.kind.reserve(nodes);
        b.size.reserve(nodes);
        b.level.reserve(nodes);
        b.parent.reserve(nodes);
        b.name.reserve(nodes);
        b.value.reserve(nodes);
        b.attr_first.reserve(nodes + 1);
        b
    }

    /// Set the URI the finished document will report.
    pub fn uri(&mut self, uri: impl Into<String>) -> &mut Self {
        self.uri = Some(uri.into());
        self
    }

    fn push_node(&mut self, kind: NodeKind, name: NameId, value: &str) -> u32 {
        let pre = self.kind.len() as u32;
        let (parent, level) = match self.open.last() {
            Some(&p) => (p, self.level[p as usize] + 1),
            None => (0, 0),
        };
        self.kind.push(kind);
        self.size.push(0);
        self.level.push(level);
        self.parent.push(parent);
        self.name.push(name);
        self.value.push(value);
        self.attr_first.push(self.attr_name.len() as u32);
        pre
    }

    /// Open a new element. Returns its pre rank.
    pub fn start_element(&mut self, name: &str) -> u32 {
        let name_id = self.names.intern(name);
        let pre = self.push_node(NodeKind::Element, name_id, "");
        self.open.push(pre);
        self.attrs_open = true;
        pre
    }

    /// Add an attribute to the most recently opened element. Must be called
    /// before any child content is appended.
    pub fn attribute(&mut self, name: &str, value: &str) -> &mut Self {
        assert!(
            self.attrs_open,
            "attribute() must directly follow start_element()"
        );
        let owner = *self.open.last().expect("an element is open");
        let name_id = self.names.intern(name);
        self.attr_owner.push(owner);
        self.attr_name.push(name_id);
        self.attr_value.push(value);
        self
    }

    /// Append a text node (empty strings are skipped; adjacent text nodes
    /// are merged, as the XPath data model requires).
    pub fn text(&mut self, content: &str) -> &mut Self {
        if content.is_empty() {
            return self;
        }
        self.attrs_open = false;
        // Merge with a directly preceding text sibling.
        if let Some(&last_kind) = self.kind.last() {
            let last_pre = self.kind.len() as u32 - 1;
            if last_kind == NodeKind::Text
                && self.parent[last_pre as usize] == *self.open.last().unwrap()
            {
                // The text node being merged into is the last slot of
                // the value arena: append in place.
                self.value.append_to_last(content);
                return self;
            }
        }
        self.push_node(NodeKind::Text, NameId::NONE, content);
        self
    }

    /// Append a comment node.
    pub fn comment(&mut self, content: &str) -> &mut Self {
        self.attrs_open = false;
        self.push_node(NodeKind::Comment, NameId::NONE, content);
        self
    }

    /// Append a processing-instruction node.
    pub fn pi(&mut self, target: &str, content: &str) -> &mut Self {
        self.attrs_open = false;
        let name_id = self.names.intern(target);
        self.push_node(NodeKind::Pi, name_id, content);
        self
    }

    /// Close the most recently opened element, back-patching its size.
    pub fn end_element(&mut self) -> &mut Self {
        assert!(self.open.len() > 1, "no element is open");
        let pre = self.open.pop().unwrap();
        self.size[pre as usize] = self.kind.len() as u32 - 1 - pre;
        self.attrs_open = false;
        self
    }

    /// Convenience: empty element with attributes.
    pub fn empty_element(&mut self, name: &str, attrs: &[(&str, &str)]) -> &mut Self {
        self.start_element(name);
        for (k, v) in attrs {
            self.attribute(k, v);
        }
        self.end_element()
    }

    /// Number of tree nodes appended so far (including the document node).
    pub fn node_count(&self) -> usize {
        self.kind.len()
    }

    /// Finish the document. Fails if elements are still open or the
    /// document is empty.
    pub fn finish(mut self) -> Result<Document, XmlError> {
        if self.open.len() != 1 {
            return Err(XmlError::Builder(format!(
                "{} element(s) still open",
                self.open.len() - 1
            )));
        }
        if self.kind.len() == 1 {
            return Err(XmlError::Builder("document has no content".into()));
        }
        // Close the document node.
        self.size[0] = self.kind.len() as u32 - 1;
        // CSR terminator.
        self.attr_first.push(self.attr_name.len() as u32);
        let doc = Document::from_columns(
            self.uri,
            self.names,
            self.kind,
            self.size,
            self.level,
            self.parent,
            self.name,
            self.value.finish(),
            self.attr_first,
            self.attr_owner,
            self.attr_name,
            self.attr_value.finish(),
        );
        debug_assert_eq!(doc.check_invariants(), Ok(()));
        Ok(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_document_is_rejected() {
        let b = DocumentBuilder::new();
        assert!(b.finish().is_err());
    }

    #[test]
    fn unclosed_element_is_rejected() {
        let mut b = DocumentBuilder::new();
        b.start_element("a");
        assert!(b.finish().is_err());
    }

    #[test]
    fn adjacent_text_nodes_merge() {
        let mut b = DocumentBuilder::new();
        b.start_element("a");
        b.text("foo");
        b.text("bar");
        b.end_element();
        let d = b.finish().unwrap();
        assert_eq!(d.node_count(), 3); // doc, a, text
        assert_eq!(d.value(2), "foobar");
    }

    #[test]
    fn empty_text_is_skipped() {
        let mut b = DocumentBuilder::new();
        b.start_element("a");
        b.text("");
        b.end_element();
        let d = b.finish().unwrap();
        assert_eq!(d.node_count(), 2);
    }

    #[test]
    fn text_does_not_merge_across_elements() {
        let mut b = DocumentBuilder::new();
        b.start_element("a");
        b.text("x");
        b.start_element("b");
        b.end_element();
        b.text("y");
        b.end_element();
        let d = b.finish().unwrap();
        // doc, a, "x", b, "y"
        assert_eq!(d.node_count(), 5);
        assert_eq!(d.value(2), "x");
        assert_eq!(d.value(4), "y");
    }

    #[test]
    #[should_panic(expected = "attribute() must directly follow")]
    fn attribute_after_text_panics() {
        let mut b = DocumentBuilder::new();
        b.start_element("a");
        b.text("x");
        b.attribute("k", "v");
    }

    #[test]
    fn deep_nesting() {
        let mut b = DocumentBuilder::new();
        for i in 0..100 {
            b.start_element(&format!("n{i}"));
        }
        for _ in 0..100 {
            b.end_element();
        }
        let d = b.finish().unwrap();
        d.check_invariants().unwrap();
        assert_eq!(d.level(100), 100);
        assert_eq!(d.size(1), 99);
    }

    #[test]
    fn pi_and_comment_nodes() {
        let mut b = DocumentBuilder::new();
        b.start_element("a");
        b.comment("note");
        b.pi("target", "data");
        b.end_element();
        let d = b.finish().unwrap();
        assert_eq!(d.kind(2), crate::NodeKind::Comment);
        assert_eq!(d.kind(3), crate::NodeKind::Pi);
        assert_eq!(d.node_name(crate::NodeId::tree(3)), "target");
        assert_eq!(d.value(3), "data");
    }
}
