//! Little-endian wire primitives shared by every binary codec in the
//! workspace: the document codec here, `standoff-core`'s region-index
//! codec, and `standoff-store`'s snapshots.
//!
//! Reads are hardened against hostile or corrupted length fields: no
//! helper allocates more than it has actually read, so a bit-flipped
//! count produces a clean [`std::io::ErrorKind::InvalidData`] /
//! `UnexpectedEof` error instead of a gigantic allocation.

use std::io::{self, Read, Write};

pub fn write_u16<W: Write>(w: &mut W, v: u16) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub fn write_i64<W: Write>(w: &mut W, v: i64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub fn write_string<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    write_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

pub fn read_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut buf = [0u8; 1];
    r.read_exact(&mut buf)?;
    Ok(buf[0])
}

pub fn read_u16<R: Read>(r: &mut R) -> io::Result<u16> {
    let mut buf = [0u8; 2];
    r.read_exact(&mut buf)?;
    Ok(u16::from_le_bytes(buf))
}

pub fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

pub fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

pub fn read_i64<R: Read>(r: &mut R) -> io::Result<i64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(i64::from_le_bytes(buf))
}

/// Read exactly `len` bytes, growing the buffer as data actually
/// arrives (never pre-allocating `len`).
pub fn read_exact_vec<R: Read>(r: &mut R, len: u64) -> io::Result<Vec<u8>> {
    let mut buf = Vec::with_capacity(capacity_hint(len as usize));
    let got = r.take(len).read_to_end(&mut buf)?;
    if got as u64 != len {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "truncated input",
        ));
    }
    Ok(buf)
}

pub fn read_string<R: Read>(r: &mut R) -> io::Result<String> {
    let len = read_u32(r)?;
    let buf = read_exact_vec(r, len as u64)?;
    String::from_utf8(buf).map_err(|_| bad_data("string is not UTF-8"))
}

/// Capacity to reserve for a collection whose element count came off the
/// wire: trust small counts, let big (possibly hostile) ones grow
/// organically as elements are actually decoded.
pub fn capacity_hint(count: usize) -> usize {
    count.min(64 * 1024)
}

pub fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut buf = Vec::new();
        write_u16(&mut buf, 7).unwrap();
        write_u32(&mut buf, 0xDEAD_BEEF).unwrap();
        write_u64(&mut buf, u64::MAX - 1).unwrap();
        write_i64(&mut buf, -42).unwrap();
        write_string(&mut buf, "héllo").unwrap();
        let r = &mut buf.as_slice();
        assert_eq!(read_u16(r).unwrap(), 7);
        assert_eq!(read_u32(r).unwrap(), 0xDEAD_BEEF);
        assert_eq!(read_u64(r).unwrap(), u64::MAX - 1);
        assert_eq!(read_i64(r).unwrap(), -42);
        assert_eq!(read_string(r).unwrap(), "héllo");
    }

    #[test]
    fn hostile_length_fails_without_allocating() {
        // A string claiming 4 GiB backed by 3 bytes must fail cleanly.
        let mut buf = Vec::new();
        write_u32(&mut buf, u32::MAX).unwrap();
        buf.extend_from_slice(b"abc");
        let err = read_string(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn capacity_hint_is_bounded() {
        assert_eq!(capacity_hint(10), 10);
        assert_eq!(capacity_hint(usize::MAX), 64 * 1024);
    }
}
