//! # standoff-xml
//!
//! From-scratch XML substrate for the StandOff annotation system
//! (reproduction of *Efficient XQuery Support for Stand-Off Annotation*,
//! Alink et al., XIME-P/SIGMOD 2006).
//!
//! MonetDB/XQuery stores XML documents *shredded* into relational tables
//! using the pre/size/level region encoding (Grust et al., "Staircase Join",
//! VLDB 2003). This crate provides the same storage model:
//!
//! * [`Document`] — a single XML fragment stored columnar: one row per node
//!   in pre-order, with `size` (descendant count), `level` (depth), `parent`,
//!   `kind`, `name` and `value` columns, plus a CSR-encoded attribute table.
//! * [`NameTable`] — QName interning shared per document.
//! * [`parse_document`] — a hand-written, allocation-conscious
//!   XML parser (elements, attributes, text, CDATA, comments, PIs, entity
//!   references, DOCTYPE skipping).
//! * [`DocumentBuilder`] — programmatic document construction.
//! * [`serialize`] — document/subtree serialization with escaping.
//! * [`Store`] — a collection of documents addressed by URI; nodes across the
//!   store are identified by [`NodeRef`] (document id + node id).
//!
//! The pre/size/level encoding is what makes Staircase Join (and the paper's
//! StandOff MergeJoin post-processing) possible: the descendants of a node
//! `v` are exactly the pre ranks in `v.pre + 1 ..= v.pre + v.size`.

pub mod builder;
pub mod codec;
pub mod column;
pub mod doc;
pub mod error;
pub mod name;
pub mod node;
pub mod parser;
pub mod serialize;
pub mod store;
pub mod wire;

pub use builder::DocumentBuilder;
pub use codec::{read_document, read_store, write_document, write_store};
pub use column::{Pod, PodCol, SharedBytes, StrArena, StrArenaBuilder};
pub use doc::{Document, DocumentParts, DocumentStorageRef, ElemIndex, KindCol};
pub use error::{ParseError, XmlError};
pub use name::{NameId, NameTable, QName};
pub use node::{DocId, NodeId, NodeKind, NodeRef};
pub use parser::{parse_document, ParseOptions};
pub use serialize::{serialize_document, serialize_node, SerializeOptions};
pub use store::Store;
