//! Binary persistence for shredded documents.
//!
//! Annotation databases are bulk-loaded once and queried many times
//! (paper §2); re-parsing multi-megabyte XML on every open is wasted
//! work. This codec dumps the shredded columns directly in a compact
//! little-endian format — loading is a column read with no parsing,
//! typically an order of magnitude faster than `parse_document`.
//!
//! Format (version 2):
//!
//! ```text
//! magic "SOXD" | u32 version
//! opt-string uri
//! u32 name-count | name-count × string          (QNames in NameId order)
//! u32 node-count | per node: u8 kind, u32 size, u16 level, u32 parent,
//!                            u32 name, string value
//! u32 attr-count | per attr: u32 owner, u32 name, string value
//! (node-count+1) × u32 attr_first CSR offsets
//! u32 indexed-name-count | per name: u32 name-id, u32 pre-count,
//!                                    pre-count × u32 pre   (v2 only)
//! ```
//!
//! Strings are u32-length-prefixed UTF-8. No external dependencies.
//!
//! Version 2 appends the element-name index (paper §4.3's candidate-
//! sequence source), so loading restores it by column read instead of
//! rescanning the kind/name columns; version-1 files still load, with
//! the index rebuilt. Loading validates everything — a corrupted file
//! fails cleanly instead of corrupting query results.

use std::collections::HashMap;
use std::io::{self, Read, Write};

use crate::doc::Document;
use crate::name::{NameId, NameTable};
use crate::node::NodeKind;
use crate::store::Store;

const MAGIC: &[u8; 4] = b"SOXD";
const VERSION: u32 = 2;
const MIN_VERSION: u32 = 1;

use crate::wire::{
    bad_data, capacity_hint, read_string, read_u16, read_u32, read_u8, write_string, write_u16,
    write_u32,
};

// ---- document codec ----

/// Serialize a document into the binary format.
pub fn write_document<W: Write>(doc: &Document, w: &mut W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(w, VERSION)?;
    match doc.uri() {
        Some(uri) => {
            w.write_all(&[1])?;
            write_string(w, uri)?;
        }
        None => w.write_all(&[0])?,
    }
    // Name table in id order.
    let names = doc.names();
    write_u32(w, names.len() as u32)?;
    for k in 0..names.len() as u32 {
        write_string(w, &names.lexical(NameId(k)))?;
    }
    // Node columns.
    let n = doc.node_count() as u32;
    write_u32(w, n)?;
    for pre in 0..n {
        w.write_all(&[doc.kind(pre) as u8])?;
        write_u32(w, doc.size(pre))?;
        write_u16(w, doc.level(pre))?;
        write_u32(w, doc.parent(pre))?;
        write_u32(w, doc.name_id(pre).0)?;
        write_string(w, doc.value(pre))?;
    }
    // Attribute table.
    let a = doc.attr_count() as u32;
    write_u32(w, a)?;
    for idx in 0..a {
        write_u32(w, doc.attr_owner(idx))?;
        write_u32(w, doc.attr_name_id(idx).0)?;
        write_string(w, doc.attr_value(idx))?;
    }
    // CSR offsets.
    for pre in 0..n {
        write_u32(w, doc.attr_range(pre).start)?;
    }
    write_u32(w, a)?;
    // Element-name index, in name-id order for determinism (v2).
    let index = doc.elem_index();
    let mut ids: Vec<NameId> = index.keys().copied().collect();
    ids.sort_by_key(|id| id.0);
    write_u32(w, ids.len() as u32)?;
    for id in ids {
        let pres = &index[&id];
        write_u32(w, id.0)?;
        write_u32(w, pres.len() as u32)?;
        for &pre in pres {
            write_u32(w, pre)?;
        }
    }
    Ok(())
}

/// Deserialize a document from the binary format. Structural invariants
/// are re-validated on load — a corrupted file fails cleanly instead of
/// corrupting query results.
pub fn read_document<R: Read>(r: &mut R) -> io::Result<Document> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad_data("not a standoff document file (bad magic)"));
    }
    let version = read_u32(r)?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(bad_data("unsupported format version"));
    }
    let uri = if read_u8(r)? == 1 {
        Some(read_string(r)?)
    } else {
        None
    };
    let name_count = read_u32(r)? as usize;
    let mut names = NameTable::new();
    for k in 0..name_count {
        let lexical = read_string(r)?;
        let id = names.intern(&lexical);
        if id.0 as usize != k {
            return Err(bad_data("duplicate name in name table"));
        }
    }
    let n = read_u32(r)? as usize;
    if n == 0 {
        return Err(bad_data("document has no nodes"));
    }
    let cap = capacity_hint(n);
    let mut kind = Vec::with_capacity(cap);
    let mut size = Vec::with_capacity(cap);
    let mut level = Vec::with_capacity(cap);
    let mut parent = Vec::with_capacity(cap);
    let mut name = Vec::with_capacity(cap);
    let mut value: Vec<Box<str>> = Vec::with_capacity(cap);
    for _ in 0..n {
        kind.push(match read_u8(r)? {
            0 => NodeKind::Document,
            1 => NodeKind::Element,
            2 => NodeKind::Text,
            3 => NodeKind::Comment,
            4 => NodeKind::Pi,
            _ => return Err(bad_data("invalid node kind")),
        });
        size.push(read_u32(r)?);
        level.push(read_u16(r)?);
        parent.push(read_u32(r)?);
        let name_id = read_u32(r)?;
        if name_id != NameId::NONE.0 && name_id as usize >= name_count {
            return Err(bad_data("name id out of range"));
        }
        name.push(NameId(name_id));
        value.push(read_string(r)?.into());
    }
    let a = read_u32(r)? as usize;
    let acap = capacity_hint(a);
    let mut attr_owner = Vec::with_capacity(acap);
    let mut attr_name = Vec::with_capacity(acap);
    let mut attr_value: Vec<Box<str>> = Vec::with_capacity(acap);
    for _ in 0..a {
        let owner = read_u32(r)?;
        if owner as usize >= n {
            return Err(bad_data("attribute owner out of range"));
        }
        attr_owner.push(owner);
        let name_id = read_u32(r)?;
        if name_id as usize >= name_count {
            return Err(bad_data("attribute name out of range"));
        }
        attr_name.push(NameId(name_id));
        attr_value.push(read_string(r)?.into());
    }
    let mut attr_first = Vec::with_capacity(capacity_hint(n + 1));
    for _ in 0..=n {
        let off = read_u32(r)?;
        if off as usize > a {
            return Err(bad_data("attribute offset out of range"));
        }
        attr_first.push(off);
    }
    let doc = if version >= 2 {
        // Deserialize the element-name index and validate it against the
        // columns — cheaper than a rescan-and-rebuild, still safe.
        let elements = kind.iter().filter(|&&k| k == NodeKind::Element).count();
        let indexed_names = read_u32(r)? as usize;
        if indexed_names > name_count {
            return Err(bad_data("more indexed names than interned names"));
        }
        let mut elem_index: HashMap<NameId, Vec<u32>> =
            HashMap::with_capacity(capacity_hint(indexed_names));
        let mut covered = 0usize;
        let mut prev_name: Option<u32> = None;
        for _ in 0..indexed_names {
            let name_id = read_u32(r)?;
            if name_id as usize >= name_count {
                return Err(bad_data("indexed name id out of range"));
            }
            if prev_name.is_some_and(|p| p >= name_id) {
                return Err(bad_data("element index not in name-id order"));
            }
            prev_name = Some(name_id);
            let count = read_u32(r)? as usize;
            if count == 0 {
                return Err(bad_data("empty element-index bucket"));
            }
            let mut pres = Vec::with_capacity(capacity_hint(count));
            for _ in 0..count {
                let pre = read_u32(r)?;
                if pre as usize >= n
                    || kind[pre as usize] != NodeKind::Element
                    || name[pre as usize].0 != name_id
                {
                    return Err(bad_data("element index disagrees with node columns"));
                }
                if pres.last().is_some_and(|&p| p >= pre) {
                    return Err(bad_data("element index not in document order"));
                }
                pres.push(pre);
            }
            covered += count;
            elem_index.insert(NameId(name_id), pres);
        }
        if covered != elements {
            return Err(bad_data("element index does not cover all elements"));
        }
        Document::from_columns_with_index(
            uri, names, kind, size, level, parent, name, value, attr_first, attr_owner, attr_name,
            attr_value, elem_index,
        )
    } else {
        Document::from_columns(
            uri, names, kind, size, level, parent, name, value, attr_first, attr_owner, attr_name,
            attr_value,
        )
    };
    doc.check_invariants().map_err(|e| bad_data(&e))?;
    Ok(doc)
}

// ---- store codec ----

const STORE_MAGIC: &[u8; 4] = b"SOXS";

/// Serialize a whole store (all documents, with their URIs).
pub fn write_store<W: Write>(store: &Store, w: &mut W) -> io::Result<()> {
    w.write_all(STORE_MAGIC)?;
    write_u32(w, VERSION)?;
    write_u32(w, store.len() as u32)?;
    for id in store.doc_ids() {
        write_document(store.doc(id), w)?;
    }
    Ok(())
}

/// Deserialize a store written by [`write_store`].
pub fn read_store<R: Read>(r: &mut R) -> io::Result<Store> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != STORE_MAGIC {
        return Err(bad_data("not a standoff store file (bad magic)"));
    }
    if read_u32(r)? != VERSION {
        return Err(bad_data("unsupported format version"));
    }
    let count = read_u32(r)?;
    let mut store = Store::new();
    for _ in 0..count {
        let doc = read_document(r)?;
        let uri = doc.uri().map(|u| u.to_string());
        store.add(doc, uri.as_deref());
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;
    use crate::serialize::serialize_document;

    fn round_trip(xml: &str) -> Document {
        let doc = parse_document(xml).unwrap();
        let mut buf = Vec::new();
        write_document(&doc, &mut buf).unwrap();
        read_document(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn document_round_trip_preserves_serialization() {
        let xml = r#"<sample><video><shot id="Intro" start="0" end="8"/>text</video><!--c--><?pi d?></sample>"#;
        let orig = parse_document(xml).unwrap();
        let loaded = round_trip(xml);
        assert_eq!(
            serialize_document(&orig, Default::default()),
            serialize_document(&loaded, Default::default())
        );
        assert_eq!(orig.node_count(), loaded.node_count());
        assert_eq!(orig.attr_count(), loaded.attr_count());
        assert_eq!(
            loaded.attribute(loaded.elements_named("shot")[0], "id"),
            Some("Intro")
        );
    }

    #[test]
    fn uri_survives() {
        let mut store = Store::new();
        store.load("file:a.xml", "<a><b/></a>").unwrap();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).unwrap();
        let loaded = read_store(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), 1);
        assert!(loaded.by_uri("file:a.xml").is_some());
    }

    #[test]
    fn name_index_survives_round_trip() {
        let loaded = round_trip("<a><b/><c/><b x='1'>t</b><d><b/></d></a>");
        assert_eq!(loaded.elements_named("b").len(), 3);
        assert_eq!(loaded.elements_named("d").len(), 1);
        assert_eq!(loaded.elements_named("nope"), &[] as &[u32]);
        // Document order.
        let bs = loaded.elements_named("b");
        assert!(bs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn version1_files_still_load() {
        // A v1 file is a v2 file minus the trailing name-index section,
        // with the version field rewritten.
        let doc = parse_document("<a><b/><c/></a>").unwrap();
        let mut v2 = Vec::new();
        write_document(&doc, &mut v2).unwrap();
        // The index section of this doc: u32 count=3 + 3 × (id, count, pre).
        let index_bytes = 4 + 3 * (4 + 4 + 4);
        let mut v1 = v2[..v2.len() - index_bytes].to_vec();
        v1[4..8].copy_from_slice(&1u32.to_le_bytes());
        let loaded = read_document(&mut v1.as_slice()).unwrap();
        assert_eq!(loaded.elements_named("b").len(), 1);
        assert_eq!(loaded.node_count(), doc.node_count());
    }

    /// The element-name index must be strictly ascending per name: the
    /// query engine's candidate pushdown borrows these slices directly
    /// into `RegionIndex::candidates_for` (which requires sorted input)
    /// without any per-execution re-check, so an out-of-order snapshot
    /// index must be rejected *here*, at load time.
    #[test]
    fn out_of_order_name_index_rejected() {
        let doc = parse_document("<a><b/><x/><b/></a>").unwrap();
        let mut buf = Vec::new();
        write_document(&doc, &mut buf).unwrap();
        // The index section ends with the `b` bucket's two pres (the
        // codec writes buckets in name-id order; `b` interns after `a`
        // but its 2-entry bucket is written with pres last when it is
        // the final bucket — locate them generically instead).
        let b_pres = doc.elements_named("b");
        assert_eq!(b_pres.len(), 2);
        let (lo, hi) = (b_pres[0], b_pres[1]);
        // Find the adjacent little-endian u32 pair [lo, hi] in the
        // trailing index section and swap it.
        let needle: Vec<u8> = lo
            .to_le_bytes()
            .iter()
            .chain(hi.to_le_bytes().iter())
            .copied()
            .collect();
        let at = (0..=buf.len() - 8)
            .rev()
            .find(|&k| buf[k..k + 8] == needle[..])
            .expect("index pres present in the encoding");
        buf[at..at + 4].copy_from_slice(&hi.to_le_bytes());
        buf[at + 4..at + 8].copy_from_slice(&lo.to_le_bytes());
        let err = read_document(&mut buf.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("document order"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn tampered_name_index_rejected() {
        let doc = parse_document("<a><b/><c/></a>").unwrap();
        let mut buf = Vec::new();
        write_document(&doc, &mut buf).unwrap();
        // Point the last index entry's pre at a non-element row.
        let k = buf.len() - 4;
        buf[k..].copy_from_slice(&0u32.to_le_bytes());
        assert!(read_document(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn corrupted_magic_rejected() {
        let mut buf = Vec::new();
        write_document(&parse_document("<a/>").unwrap(), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(read_document(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_file_rejected() {
        let mut buf = Vec::new();
        write_document(&parse_document("<a><b x='1'/></a>").unwrap(), &mut buf).unwrap();
        for cut in [4usize, 9, buf.len() / 2, buf.len() - 1] {
            assert!(
                read_document(&mut buf[..cut].to_vec().as_slice()).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn corrupted_structure_rejected_by_invariants() {
        let doc = parse_document("<a><b/><c/></a>").unwrap();
        let mut buf = Vec::new();
        write_document(&doc, &mut buf).unwrap();
        // Flip a size byte inside the node column region and expect either
        // a clean failure or a still-valid document — never a panic.
        for k in 0..buf.len() {
            let mut mutated = buf.clone();
            mutated[k] ^= 0xff;
            let _ = read_document(&mut mutated.as_slice());
        }
    }

    #[test]
    fn store_round_trip_multiple_docs() {
        let mut store = Store::new();
        store.load("a", "<x><y/></x>").unwrap();
        store.load("b", r#"<m start="0" end="9"><n/></m>"#).unwrap();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).unwrap();
        let loaded = read_store(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), 2);
        let b = loaded.by_uri("b").unwrap();
        assert_eq!(loaded.doc(b).attribute(1, "end"), Some("9"));
    }
}
