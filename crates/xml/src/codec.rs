//! Binary persistence for shredded documents.
//!
//! Annotation databases are bulk-loaded once and queried many times
//! (paper §2); re-parsing multi-megabyte XML on every open is wasted
//! work. This codec dumps the shredded columns directly in a compact
//! little-endian format — loading is a column read with no parsing,
//! typically an order of magnitude faster than `parse_document`.
//!
//! Format (version 2):
//!
//! ```text
//! magic "SOXD" | u32 version
//! opt-string uri
//! u32 name-count | name-count × string          (QNames in NameId order)
//! u32 node-count | per node: u8 kind, u32 size, u16 level, u32 parent,
//!                            u32 name, string value
//! u32 attr-count | per attr: u32 owner, u32 name, string value
//! (node-count+1) × u32 attr_first CSR offsets
//! u32 indexed-name-count | per name: u32 name-id, u32 pre-count,
//!                                    pre-count × u32 pre   (v2 only)
//! ```
//!
//! Strings are u32-length-prefixed UTF-8. No external dependencies.
//!
//! Version 2 appends the element-name index (paper §4.3's candidate-
//! sequence source), so loading restores it by column read instead of
//! rescanning the kind/name columns; version-1 files still load, with
//! the index rebuilt by a counting scan. Loading validates everything
//! (via [`Document::from_storage`]) — a corrupted file fails cleanly
//! instead of corrupting query results.
//!
//! This streamed, per-field codec is the *legacy* persistence path; the
//! SOSN v3 snapshots in `standoff-store` persist the same columns as
//! aligned sections that are mounted zero-copy instead of decoded.

use std::io::{self, Read, Write};

use crate::column::StrArena;
use crate::doc::{Document, DocumentParts, ElemIndex, KindCol};
use crate::name::{NameId, NameTable};
use crate::node::NodeKind;
use crate::store::Store;

const MAGIC: &[u8; 4] = b"SOXD";
const VERSION: u32 = 2;
const MIN_VERSION: u32 = 1;

use crate::wire::{
    bad_data, capacity_hint, read_string, read_u16, read_u32, read_u8, write_string, write_u16,
    write_u32,
};

// ---- document codec ----

/// Serialize a document into the binary format.
pub fn write_document<W: Write>(doc: &Document, w: &mut W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(w, VERSION)?;
    match doc.uri() {
        Some(uri) => {
            w.write_all(&[1])?;
            write_string(w, uri)?;
        }
        None => w.write_all(&[0])?,
    }
    // Name table in id order.
    let names = doc.names();
    write_u32(w, names.len() as u32)?;
    for k in 0..names.len() as u32 {
        write_string(w, &names.lexical(NameId(k)))?;
    }
    // Node columns.
    let n = doc.node_count() as u32;
    write_u32(w, n)?;
    for pre in 0..n {
        w.write_all(&[doc.kind(pre) as u8])?;
        write_u32(w, doc.size(pre))?;
        write_u16(w, doc.level(pre))?;
        write_u32(w, doc.parent(pre))?;
        write_u32(w, doc.name_id(pre).0)?;
        write_string(w, doc.value(pre))?;
    }
    // Attribute table.
    let a = doc.attr_count() as u32;
    write_u32(w, a)?;
    for idx in 0..a {
        write_u32(w, doc.attr_owner(idx))?;
        write_u32(w, doc.attr_name_id(idx).0)?;
        write_string(w, doc.attr_value(idx))?;
    }
    // CSR offsets.
    for pre in 0..n {
        write_u32(w, doc.attr_range(pre).start)?;
    }
    write_u32(w, a)?;
    // Element-name index (v2): the CSR is already in ascending name-id
    // order with document-ordered buckets.
    let index = doc.elem_index();
    write_u32(w, index.name_count() as u32)?;
    for k in 0..index.name_count() {
        let (id, pres) = index.bucket(k);
        write_u32(w, id)?;
        write_u32(w, pres.len() as u32)?;
        for &pre in pres {
            write_u32(w, pre)?;
        }
    }
    Ok(())
}

/// Deserialize a document from the binary format. Structural invariants
/// are re-validated on load — a corrupted file fails cleanly instead of
/// corrupting query results.
pub fn read_document<R: Read>(r: &mut R) -> io::Result<Document> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad_data("not a standoff document file (bad magic)"));
    }
    let version = read_u32(r)?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(bad_data("unsupported format version"));
    }
    let uri = if read_u8(r)? == 1 {
        Some(read_string(r)?)
    } else {
        None
    };
    let name_count = read_u32(r)? as usize;
    let mut names = NameTable::new();
    for k in 0..name_count {
        let lexical = read_string(r)?;
        let id = names.intern(&lexical);
        if id.0 as usize != k {
            return Err(bad_data("duplicate name in name table"));
        }
    }
    let n = read_u32(r)? as usize;
    if n == 0 {
        return Err(bad_data("document has no nodes"));
    }
    let cap = capacity_hint(n);
    let mut kind = Vec::with_capacity(cap);
    let mut size = Vec::with_capacity(cap);
    let mut level = Vec::with_capacity(cap);
    let mut parent = Vec::with_capacity(cap);
    let mut name = Vec::with_capacity(cap);
    let mut value_heap: Vec<u8> = Vec::new();
    let mut value_offsets: Vec<u32> = Vec::with_capacity(capacity_hint(n + 1));
    value_offsets.push(0);
    for _ in 0..n {
        kind.push(match read_u8(r)? {
            0 => NodeKind::Document,
            1 => NodeKind::Element,
            2 => NodeKind::Text,
            3 => NodeKind::Comment,
            4 => NodeKind::Pi,
            _ => return Err(bad_data("invalid node kind")),
        });
        size.push(read_u32(r)?);
        level.push(read_u16(r)?);
        parent.push(read_u32(r)?);
        let name_id = read_u32(r)?;
        if name_id != NameId::NONE.0 && name_id as usize >= name_count {
            return Err(bad_data("name id out of range"));
        }
        // Elements must carry a real name: the v1 path feeds these ids
        // straight into `ElemIndex::build`'s counting arrays, which
        // index by name id and (deliberately) do not re-check.
        if name_id == NameId::NONE.0 && *kind.last().unwrap() == NodeKind::Element {
            return Err(bad_data("element node without a name"));
        }
        name.push(name_id);
        value_heap.extend_from_slice(read_string(r)?.as_bytes());
        value_offsets.push(value_heap.len() as u32);
    }
    let a = read_u32(r)? as usize;
    let acap = capacity_hint(a);
    let mut attr_owner = Vec::with_capacity(acap);
    let mut attr_name = Vec::with_capacity(acap);
    let mut attr_heap: Vec<u8> = Vec::new();
    let mut attr_offsets: Vec<u32> = Vec::with_capacity(capacity_hint(a + 1));
    attr_offsets.push(0);
    for _ in 0..a {
        let owner = read_u32(r)?;
        if owner as usize >= n {
            return Err(bad_data("attribute owner out of range"));
        }
        attr_owner.push(owner);
        let name_id = read_u32(r)?;
        if name_id as usize >= name_count {
            return Err(bad_data("attribute name out of range"));
        }
        attr_name.push(name_id);
        attr_heap.extend_from_slice(read_string(r)?.as_bytes());
        attr_offsets.push(attr_heap.len() as u32);
    }
    let mut attr_first = Vec::with_capacity(capacity_hint(n + 1));
    for _ in 0..=n {
        let off = read_u32(r)?;
        if off as usize > a {
            return Err(bad_data("attribute offset out of range"));
        }
        attr_first.push(off);
    }
    let kind = KindCol::from_kinds(kind);
    let elem = if version >= 2 {
        // Deserialize the element-name index CSR; `from_storage` below
        // re-validates it against the columns — cheaper than a
        // rescan-and-rebuild, still safe.
        let indexed_names = read_u32(r)? as usize;
        if indexed_names > name_count {
            return Err(bad_data("more indexed names than interned names"));
        }
        let mut elem_names = Vec::with_capacity(capacity_hint(indexed_names));
        let mut elem_offsets = Vec::with_capacity(capacity_hint(indexed_names + 1));
        elem_offsets.push(0u32);
        let mut elem_pres: Vec<u32> = Vec::new();
        for _ in 0..indexed_names {
            elem_names.push(read_u32(r)?);
            let count = read_u32(r)? as usize;
            for _ in 0..count {
                elem_pres.push(read_u32(r)?);
            }
            elem_offsets.push(elem_pres.len() as u32);
        }
        ElemIndex {
            names: elem_names.into(),
            offsets: elem_offsets.into(),
            pres: elem_pres.into(),
        }
    } else {
        // v1 files carry no index; rebuild with a counting scan (name
        // ids were range-checked above).
        ElemIndex::build(&kind, &name, name_count)
    };
    let values =
        StrArena::from_parts(value_heap, value_offsets).map_err(|e| bad_data(&e.to_string()))?;
    let attr_values =
        StrArena::from_parts(attr_heap, attr_offsets).map_err(|e| bad_data(&e.to_string()))?;
    Document::from_storage(DocumentParts {
        uri,
        names,
        kind,
        size: size.into(),
        level: level.into(),
        parent: parent.into(),
        name: name.into(),
        values,
        attr_first: attr_first.into(),
        attr_owner: attr_owner.into(),
        attr_name: attr_name.into(),
        attr_values,
        elem,
    })
    .map_err(|e| bad_data(&e))
}

// ---- store codec ----

const STORE_MAGIC: &[u8; 4] = b"SOXS";

/// Serialize a whole store (all documents, with their URIs).
pub fn write_store<W: Write>(store: &Store, w: &mut W) -> io::Result<()> {
    w.write_all(STORE_MAGIC)?;
    write_u32(w, VERSION)?;
    write_u32(w, store.len() as u32)?;
    for id in store.doc_ids() {
        write_document(store.doc(id), w)?;
    }
    Ok(())
}

/// Deserialize a store written by [`write_store`].
pub fn read_store<R: Read>(r: &mut R) -> io::Result<Store> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != STORE_MAGIC {
        return Err(bad_data("not a standoff store file (bad magic)"));
    }
    if read_u32(r)? != VERSION {
        return Err(bad_data("unsupported format version"));
    }
    let count = read_u32(r)?;
    let mut store = Store::new();
    for _ in 0..count {
        let doc = read_document(r)?;
        let uri = doc.uri().map(|u| u.to_string());
        store.add(doc, uri.as_deref());
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;
    use crate::serialize::serialize_document;

    fn round_trip(xml: &str) -> Document {
        let doc = parse_document(xml).unwrap();
        let mut buf = Vec::new();
        write_document(&doc, &mut buf).unwrap();
        read_document(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn document_round_trip_preserves_serialization() {
        let xml = r#"<sample><video><shot id="Intro" start="0" end="8"/>text</video><!--c--><?pi d?></sample>"#;
        let orig = parse_document(xml).unwrap();
        let loaded = round_trip(xml);
        assert_eq!(
            serialize_document(&orig, Default::default()),
            serialize_document(&loaded, Default::default())
        );
        assert_eq!(orig.node_count(), loaded.node_count());
        assert_eq!(orig.attr_count(), loaded.attr_count());
        assert_eq!(
            loaded.attribute(loaded.elements_named("shot")[0], "id"),
            Some("Intro")
        );
    }

    #[test]
    fn uri_survives() {
        let mut store = Store::new();
        store.load("file:a.xml", "<a><b/></a>").unwrap();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).unwrap();
        let loaded = read_store(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), 1);
        assert!(loaded.by_uri("file:a.xml").is_some());
    }

    #[test]
    fn name_index_survives_round_trip() {
        let loaded = round_trip("<a><b/><c/><b x='1'>t</b><d><b/></d></a>");
        assert_eq!(loaded.elements_named("b").len(), 3);
        assert_eq!(loaded.elements_named("d").len(), 1);
        assert_eq!(loaded.elements_named("nope"), &[] as &[u32]);
        // Document order.
        let bs = loaded.elements_named("b");
        assert!(bs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn version1_files_still_load() {
        // A v1 file is a v2 file minus the trailing name-index section,
        // with the version field rewritten.
        let doc = parse_document("<a><b/><c/></a>").unwrap();
        let mut v2 = Vec::new();
        write_document(&doc, &mut v2).unwrap();
        // The index section of this doc: u32 count=3 + 3 × (id, count, pre).
        let index_bytes = 4 + 3 * (4 + 4 + 4);
        let mut v1 = v2[..v2.len() - index_bytes].to_vec();
        v1[4..8].copy_from_slice(&1u32.to_le_bytes());
        let loaded = read_document(&mut v1.as_slice()).unwrap();
        assert_eq!(loaded.elements_named("b").len(), 1);
        assert_eq!(loaded.node_count(), doc.node_count());
    }

    /// The element-name index must be strictly ascending per name: the
    /// query engine's candidate pushdown borrows these slices directly
    /// into `RegionIndex::candidates_for` (which requires sorted input)
    /// without any per-execution re-check, so an out-of-order snapshot
    /// index must be rejected *here*, at load time.
    #[test]
    fn out_of_order_name_index_rejected() {
        let doc = parse_document("<a><b/><x/><b/></a>").unwrap();
        let mut buf = Vec::new();
        write_document(&doc, &mut buf).unwrap();
        // The index section ends with the `b` bucket's two pres (the
        // codec writes buckets in name-id order; `b` interns after `a`
        // but its 2-entry bucket is written with pres last when it is
        // the final bucket — locate them generically instead).
        let b_pres = doc.elements_named("b");
        assert_eq!(b_pres.len(), 2);
        let (lo, hi) = (b_pres[0], b_pres[1]);
        // Find the adjacent little-endian u32 pair [lo, hi] in the
        // trailing index section and swap it.
        let needle: Vec<u8> = lo
            .to_le_bytes()
            .iter()
            .chain(hi.to_le_bytes().iter())
            .copied()
            .collect();
        let at = (0..=buf.len() - 8)
            .rev()
            .find(|&k| buf[k..k + 8] == needle[..])
            .expect("index pres present in the encoding");
        buf[at..at + 4].copy_from_slice(&hi.to_le_bytes());
        buf[at + 4..at + 8].copy_from_slice(&lo.to_le_bytes());
        let err = read_document(&mut buf.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("document order"),
            "unexpected error: {err}"
        );
    }

    /// Regression: a hostile v1 file declaring an *element* whose name
    /// id is `NameId::NONE` must fail cleanly — the v1 path rebuilds the
    /// element-name index with counting arrays indexed by name id, so
    /// an unguarded sentinel would panic instead of erroring.
    #[test]
    fn v1_element_with_none_name_rejected() {
        let doc = parse_document("<a/>").unwrap();
        let mut v2 = Vec::new();
        write_document(&doc, &mut v2).unwrap();
        // Strip the one-bucket index section, rewrite the version.
        let mut v1 = v2[..v2.len() - (4 + 12)].to_vec();
        v1[4..8].copy_from_slice(&1u32.to_le_bytes());
        // Node records start after magic(4) version(4) uri-flag(1)
        // name-count(4) name "a"(4+1) node-count(4); the document node
        // record is 19 bytes, and the element's name field sits 11
        // bytes into its record.
        let name_at = 4 + 4 + 1 + 4 + 5 + 4 + 19 + 11;
        assert_eq!(
            &v1[name_at..name_at + 4],
            &0u32.to_le_bytes()[..],
            "offset sanity"
        );
        v1[name_at..name_at + 4].copy_from_slice(&NameId::NONE.0.to_le_bytes());
        let err = read_document(&mut v1.as_slice()).unwrap_err();
        assert!(err.to_string().contains("without a name"), "{err}");
    }

    #[test]
    fn tampered_name_index_rejected() {
        let doc = parse_document("<a><b/><c/></a>").unwrap();
        let mut buf = Vec::new();
        write_document(&doc, &mut buf).unwrap();
        // Point the last index entry's pre at a non-element row.
        let k = buf.len() - 4;
        buf[k..].copy_from_slice(&0u32.to_le_bytes());
        assert!(read_document(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn corrupted_magic_rejected() {
        let mut buf = Vec::new();
        write_document(&parse_document("<a/>").unwrap(), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(read_document(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_file_rejected() {
        let mut buf = Vec::new();
        write_document(&parse_document("<a><b x='1'/></a>").unwrap(), &mut buf).unwrap();
        for cut in [4usize, 9, buf.len() / 2, buf.len() - 1] {
            assert!(
                read_document(&mut buf[..cut].to_vec().as_slice()).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn corrupted_structure_rejected_by_invariants() {
        let doc = parse_document("<a><b/><c/></a>").unwrap();
        let mut buf = Vec::new();
        write_document(&doc, &mut buf).unwrap();
        // Flip a size byte inside the node column region and expect either
        // a clean failure or a still-valid document — never a panic.
        for k in 0..buf.len() {
            let mut mutated = buf.clone();
            mutated[k] ^= 0xff;
            let _ = read_document(&mut mutated.as_slice());
        }
    }

    #[test]
    fn store_round_trip_multiple_docs() {
        let mut store = Store::new();
        store.load("a", "<x><y/></x>").unwrap();
        store.load("b", r#"<m start="0" end="9"><n/></m>"#).unwrap();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).unwrap();
        let loaded = read_store(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), 2);
        let b = loaded.by_uri("b").unwrap();
        assert_eq!(loaded.doc(b).attribute(1, "end"), Some("9"));
    }
}
