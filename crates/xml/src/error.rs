//! Error types for the XML substrate.

use std::fmt;

/// An error produced while parsing an XML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// 1-based line of the offending input position.
    pub line: u32,
    /// 1-based column (in bytes) of the offending input position.
    pub column: u32,
    /// Byte offset into the input.
    pub offset: usize,
}

impl ParseError {
    pub fn new(message: impl Into<String>, input: &str, offset: usize) -> Self {
        let (line, column) = line_col(input, offset);
        ParseError {
            message: message.into(),
            line,
            column,
            offset,
        }
    }
}

/// Compute 1-based (line, column) for a byte offset.
fn line_col(input: &str, offset: usize) -> (u32, u32) {
    let offset = offset.min(input.len());
    let mut line = 1u32;
    let mut col = 1u32;
    for b in input.as_bytes()[..offset].iter() {
        if *b == b'\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Errors from document construction or navigation misuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// The builder was used out of protocol (e.g. attribute after child).
    Builder(String),
    /// A node id does not exist in the addressed document.
    InvalidNode(String),
    /// Parse failure (wraps [`ParseError`]).
    Parse(ParseError),
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Builder(m) => write!(f, "builder error: {m}"),
            XmlError::InvalidNode(m) => write!(f, "invalid node: {m}"),
            XmlError::Parse(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for XmlError {}

impl From<ParseError> for XmlError {
    fn from(e: ParseError) -> Self {
        XmlError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_tracks_newlines() {
        let input = "ab\ncde\nf";
        assert_eq!(line_col(input, 0), (1, 1));
        assert_eq!(line_col(input, 1), (1, 2));
        assert_eq!(line_col(input, 3), (2, 1));
        assert_eq!(line_col(input, 7), (3, 1));
    }

    #[test]
    fn parse_error_display() {
        let e = ParseError::new("unexpected '<'", "abc\nd<", 5);
        assert_eq!(e.line, 2);
        assert_eq!(e.column, 2);
        let s = e.to_string();
        assert!(s.contains("line 2"));
        assert!(s.contains("unexpected '<'"));
    }

    #[test]
    fn offset_past_end_is_clamped() {
        let e = ParseError::new("eof", "ab", 99);
        assert_eq!((e.line, e.column), (1, 3));
    }
}
