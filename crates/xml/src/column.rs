//! Dual-backend column storage: owned vectors or zero-copy views over a
//! shared snapshot buffer.
//!
//! Every bulk column in the workspace — document node columns, attribute
//! tables, element-name CSR, region-index tables — is a [`PodCol`]:
//! either an owned `Vec<T>` (the parse/build path) or a typed view into
//! one shared `SharedBytes` buffer (the snapshot *mount* path). Mounting a
//! column is a bounds/alignment check, not a decode loop: on
//! little-endian targets an aligned byte range is reinterpreted in place,
//! so opening a multi-layer snapshot costs I/O plus validation scans
//! instead of per-element allocation. Misaligned ranges and big-endian
//! targets transparently fall back to an element-by-element decode, so
//! the *format* carries no alignment or endianness obligations — padding
//! in the writer is purely an optimization.
//!
//! String values live in a [`StrArena`]: one concatenated UTF-8 heap plus
//! an offset column, replacing the historical `Vec<Box<str>>` (one heap
//! allocation per node value). Arena slots resolve to `&str` on access;
//! UTF-8 validity and slot boundaries are checked once, at construction.

use std::fmt;
use std::io::{self, Write};
use std::ops::{Deref, Range};
use std::sync::Arc;

use crate::wire::{bad_data, capacity_hint};

/// Marker for element types whose in-memory layout equals their
/// little-endian wire layout.
///
/// # Safety
///
/// Implementors must guarantee:
/// * `WIDTH == size_of::<Self>()`,
/// * every bit pattern produced by [`Pod::write_le`] followed by an
///   in-place reinterpretation on a little-endian target denotes the
///   same value `read_le` decodes (padding bytes, if any, are never read
///   through the reinterpreted reference),
/// * **any** initialized byte pattern is a valid instance — types with
///   invalid bit patterns (enums, `bool`, references) must not implement
///   this trait. Semantic invariants beyond bit validity (e.g. a region's
///   `start ≤ end`) are *not* covered and must be re-checked by the
///   mounting code.
pub unsafe trait Pod: Copy + Send + Sync + 'static {
    /// Bytes per element, on the wire and in memory.
    const WIDTH: usize;
    /// Decode one element from exactly [`Pod::WIDTH`] bytes.
    fn read_le(bytes: &[u8]) -> Self;
    /// Encode one element as exactly [`Pod::WIDTH`] bytes.
    fn write_le<W: Write>(self, w: &mut W) -> io::Result<()>;
}

macro_rules! int_pod {
    ($($t:ty),*) => {$(
        unsafe impl Pod for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();
            #[inline]
            fn read_le(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes.try_into().expect("WIDTH bytes"))
            }
            #[inline]
            fn write_le<W: Write>(self, w: &mut W) -> io::Result<()> {
                w.write_all(&self.to_le_bytes())
            }
        }
    )*};
}

int_pod!(u8, u16, u32, u64, i64);

/// The shared, immutable byte buffer snapshot mounts view into.
///
/// Deliberately `Arc<Vec<u8>>` rather than `Arc<[u8]>`: converting a
/// freshly read file into `Arc<[u8]>` would copy the entire payload
/// again (the slice data must move inline into the Arc allocation),
/// while wrapping the `Vec` is free — mounting stays one read, zero
/// copies. The buffer is never mutated after wrapping.
pub type SharedBytes = Arc<Vec<u8>>;

/// What keeps a column's storage alive: an owned vector or the shared
/// mount buffer. Only consulted on clone/introspection — element access
/// goes through the cached `(ptr, len)` pair and never branches on this.
enum Keeper<T: Pod> {
    Owned(Vec<T>),
    View(SharedBytes),
}

/// A column of `T`: owned, or a zero-copy view over a mounted buffer.
/// Dereferences to `&[T]` either way. The slice pointer/length are
/// cached in the struct so `Deref` is branch-free — the accessors on
/// `Document`/`RegionIndex` sit in the query executor's innermost
/// loops, where a per-access backend match is measurable.
pub struct PodCol<T: Pod> {
    /// Points into `keeper`'s storage (the `Vec`'s heap buffer or the
    /// shared byte buffer) — both stay put for the column's lifetime:
    /// moving the column moves the `Vec` struct, not its heap
    /// allocation, and nothing ever mutates either backend.
    ptr: *const T,
    len: usize,
    keeper: Keeper<T>,
}

// Safety: the column is an immutable view of storage it keeps alive
// itself; `T: Pod` is `Send + Sync` and never written through.
unsafe impl<T: Pod> Send for PodCol<T> {}
unsafe impl<T: Pod> Sync for PodCol<T> {}

impl<T: Pod> PodCol<T> {
    /// An owned column (the parse/build backend).
    pub fn owned(values: Vec<T>) -> Self {
        PodCol {
            // `Vec::as_ptr` is aligned and non-null even when empty.
            ptr: values.as_ptr(),
            len: values.len(),
            keeper: Keeper::Owned(values),
        }
    }

    /// Mount `range` of `buf` as a column of `T`.
    ///
    /// The range must lie inside the buffer and hold a whole number of
    /// elements. On little-endian targets with a suitably aligned range
    /// this is zero-copy; otherwise the elements are decoded into an
    /// owned column (same values, no format obligation).
    pub fn view(buf: &SharedBytes, range: Range<usize>) -> io::Result<Self> {
        let bytes = buf
            .get(range)
            .ok_or_else(|| bad_data("column range outside buffer"))?;
        if T::WIDTH == 0 || bytes.len() % T::WIDTH != 0 {
            return Err(bad_data("column length is not a whole number of elements"));
        }
        let len = bytes.len() / T::WIDTH;
        if cfg!(target_endian = "little")
            && (bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<T>())
        {
            Ok(PodCol {
                ptr: bytes.as_ptr() as *const T,
                len,
                keeper: Keeper::View(Arc::clone(buf)),
            })
        } else {
            let mut out = Vec::with_capacity(capacity_hint(len));
            for chunk in bytes.chunks_exact(T::WIDTH) {
                out.push(T::read_le(chunk));
            }
            Ok(PodCol::owned(out))
        }
    }

    /// Is this column a zero-copy view (vs an owned vector)? Exposed so
    /// benches and tests can assert the mount path actually mounted.
    pub fn is_view(&self) -> bool {
        matches!(self.keeper, Keeper::View(_))
    }
}

/// Serialize a slice of pod elements in order (the snapshot writer's
/// column dump). The byte length is `len() * T::WIDTH`.
pub fn write_slice_le<T: Pod, W: Write>(values: &[T], w: &mut W) -> io::Result<()> {
    for &v in values {
        v.write_le(w)?;
    }
    Ok(())
}

impl<T: Pod> Deref for PodCol<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        // Safety: `ptr`/`len` were derived from an in-bounds, aligned,
        // immutable range of the storage `keeper` keeps alive for as
        // long as `self`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl<T: Pod> Clone for PodCol<T> {
    fn clone(&self) -> Self {
        match &self.keeper {
            // An owned clone gets its own heap buffer, so its cached
            // pointer must be recomputed (PodCol::owned does).
            Keeper::Owned(v) => PodCol::owned(v.clone()),
            Keeper::View(buf) => PodCol {
                ptr: self.ptr,
                len: self.len,
                keeper: Keeper::View(Arc::clone(buf)),
            },
        }
    }
}

impl<T: Pod> Default for PodCol<T> {
    fn default() -> Self {
        PodCol::owned(Vec::new())
    }
}

impl<T: Pod> From<Vec<T>> for PodCol<T> {
    fn from(values: Vec<T>) -> Self {
        PodCol::owned(values)
    }
}

impl<T: Pod + fmt::Debug> fmt::Debug for PodCol<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PodCol")
            .field("len", &self.len())
            .field("view", &self.is_view())
            .finish()
    }
}

// ---- string arena ----

/// String storage: one concatenated UTF-8 heap plus `n + 1` offsets.
/// Slot `i` is `heap[offsets[i] .. offsets[i + 1]]`. Validated once at
/// construction (monotone in-range offsets on char boundaries, valid
/// UTF-8 heap), so access is a bounds-checked slice, not a re-check.
#[derive(Clone, Default)]
pub struct StrArena {
    heap: PodCol<u8>,
    offsets: PodCol<u32>,
}

impl StrArena {
    /// Build an owned arena from strings.
    pub fn from_strs<I, S>(strs: I) -> StrArena
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut builder = StrArenaBuilder::new();
        for s in strs {
            builder.push(s.as_ref());
        }
        builder.finish()
    }

    /// Build an owned arena from a pre-assembled heap and offset column
    /// (the streamed codec path), validating the slot invariants.
    pub fn from_parts(heap: Vec<u8>, offsets: Vec<u32>) -> io::Result<StrArena> {
        let arena = StrArena {
            heap: PodCol::owned(heap),
            offsets: PodCol::owned(offsets),
        };
        arena.validate()?;
        Ok(arena)
    }

    /// Mount an arena over `buf`: `heap` is the raw byte range,
    /// `offsets` a `u32` column of `n + 1` entries. All slot invariants
    /// are validated here.
    pub fn view(
        buf: &SharedBytes,
        heap: Range<usize>,
        offsets: Range<usize>,
    ) -> io::Result<StrArena> {
        let arena = StrArena {
            heap: PodCol::view(buf, heap)?,
            offsets: PodCol::view(buf, offsets)?,
        };
        arena.validate()?;
        Ok(arena)
    }

    fn validate(&self) -> io::Result<()> {
        if self.offsets.is_empty() {
            return Err(bad_data("string arena has no offsets"));
        }
        if self.offsets[0] != 0 {
            return Err(bad_data("string arena offsets do not start at 0"));
        }
        if !self.offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err(bad_data("string arena offsets not monotone"));
        }
        if *self.offsets.last().unwrap() as usize != self.heap.len() {
            return Err(bad_data("string arena offsets do not cover the heap"));
        }
        let text = std::str::from_utf8(&self.heap)
            .map_err(|_| bad_data("string arena heap is not UTF-8"))?;
        if !self
            .offsets
            .iter()
            .all(|&off| text.is_char_boundary(off as usize))
        {
            return Err(bad_data("string arena slot splits a UTF-8 character"));
        }
        Ok(())
    }

    /// Number of string slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The string in slot `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &str {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        debug_assert!(std::str::from_utf8(&self.heap[lo..hi]).is_ok());
        // Safety: offsets were validated (or owned-built) to be in-range
        // char boundaries of a UTF-8 heap.
        unsafe { std::str::from_utf8_unchecked(&self.heap[lo..hi]) }
    }

    /// The raw heap bytes (the snapshot writer's heap dump).
    pub fn heap_bytes(&self) -> &[u8] {
        &self.heap
    }

    /// The raw offset column (the snapshot writer's offset dump).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Are both backing columns zero-copy views?
    pub fn is_view(&self) -> bool {
        self.heap.is_view() && self.offsets.is_view()
    }
}

/// Incremental [`StrArena`] construction (the document-builder /
/// parser backend): strings append straight into the heap — no
/// per-string `Box` allocation, ever.
#[derive(Clone, Debug)]
pub struct StrArenaBuilder {
    heap: Vec<u8>,
    offsets: Vec<u32>,
}

impl Default for StrArenaBuilder {
    fn default() -> Self {
        StrArenaBuilder {
            heap: Vec::new(),
            offsets: vec![0],
        }
    }
}

impl StrArenaBuilder {
    pub fn new() -> StrArenaBuilder {
        StrArenaBuilder::default()
    }

    /// Pre-size for an expected slot count (bulk loads).
    pub fn reserve(&mut self, slots: usize) {
        self.offsets.reserve(slots);
    }

    /// Append one string slot.
    pub fn push(&mut self, s: &str) {
        self.heap.extend_from_slice(s.as_bytes());
        self.bump_last_offset();
    }

    /// Extend the most recently pushed slot in place (text-node merging
    /// in the document builder — the last slot's bytes are the heap
    /// tail, so appending is just growing it).
    pub fn append_to_last(&mut self, s: &str) {
        debug_assert!(self.offsets.len() > 1, "no slot to append to");
        self.heap.extend_from_slice(s.as_bytes());
        self.offsets.pop();
        self.bump_last_offset();
    }

    fn bump_last_offset(&mut self) {
        // Offsets are u32 on disk and in memory: a document's string
        // data is bounded at 4 GiB (the same u32 bound node counts and
        // pre ranks already live under). Checked here, where the heap
        // grows, so it can never truncate silently.
        let off = u32::try_from(self.heap.len())
            .expect("document string data exceeds the 4 GiB per-document bound");
        self.offsets.push(off);
    }

    /// Number of slots pushed so far.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn finish(self) -> StrArena {
        StrArena {
            heap: PodCol::owned(self.heap),
            offsets: PodCol::owned(self.offsets),
        }
    }
}

impl fmt::Debug for StrArena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StrArena")
            .field("slots", &self.len())
            .field("heap_bytes", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(bytes: &[u8]) -> SharedBytes {
        Arc::new(bytes.to_vec())
    }

    #[test]
    fn owned_round_trip() {
        let col = PodCol::owned(vec![1u32, 2, 3]);
        assert_eq!(&*col, &[1, 2, 3]);
        assert!(!col.is_view());
        let mut bytes = Vec::new();
        write_slice_le(&col, &mut bytes).unwrap();
        assert_eq!(bytes, [1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0]);
    }

    #[test]
    fn view_reads_le_values() {
        let b = buf(&[1, 0, 0, 0, 0xff, 0, 0, 0]);
        let col: PodCol<u32> = PodCol::view(&b, 0..8).unwrap();
        assert_eq!(&*col, &[1, 0xff]);
        // A whole-buffer u32 view of an 8-aligned Arc is zero-copy on LE.
        if cfg!(target_endian = "little") && (b.as_ptr() as usize).is_multiple_of(4) {
            assert!(col.is_view());
        }
        let cloned = col.clone();
        assert_eq!(&*cloned, &*col);
    }

    #[test]
    fn view_rejects_bad_ranges() {
        let b = buf(&[0; 8]);
        assert!(PodCol::<u32>::view(&b, 0..9).is_err(), "out of bounds");
        assert!(PodCol::<u32>::view(&b, 0..6).is_err(), "ragged length");
        assert!(PodCol::<u32>::view(&b, 0..0).is_ok(), "empty is fine");
    }

    #[test]
    fn misaligned_view_falls_back_to_owned_decode() {
        let b = buf(&[0, 7, 0, 0, 0]);
        let col: PodCol<u32> = PodCol::view(&b, 1..5).unwrap();
        assert_eq!(&*col, &[7]);
    }

    #[test]
    fn arena_round_trip() {
        let arena = StrArena::from_strs(["", "héllo", "x"]);
        assert_eq!(arena.len(), 3);
        assert_eq!(arena.get(0), "");
        assert_eq!(arena.get(1), "héllo");
        assert_eq!(arena.get(2), "x");
        assert_eq!(arena.offsets(), &[0, 0, 6, 7]);
    }

    #[test]
    fn arena_view_validates() {
        // heap "ab" + offsets [0, 1, 2]
        let mut bytes = b"ab".to_vec();
        for off in [0u32, 1, 2] {
            bytes.extend_from_slice(&off.to_le_bytes());
        }
        let b = buf(&bytes);
        let arena = StrArena::view(&b, 0..2, 2..14).unwrap();
        assert_eq!(arena.get(0), "a");
        assert_eq!(arena.get(1), "b");

        // Offsets out of heap range.
        let mut bad = b"ab".to_vec();
        for off in [0u32, 9, 9] {
            bad.extend_from_slice(&off.to_le_bytes());
        }
        let b = buf(&bad);
        assert!(StrArena::view(&b, 0..2, 2..14).is_err());

        // Non-monotone offsets.
        let mut bad = b"ab".to_vec();
        for off in [0u32, 2, 1] {
            bad.extend_from_slice(&off.to_le_bytes());
        }
        let b = buf(&bad);
        assert!(StrArena::view(&b, 0..2, 2..14).is_err());

        // Slot boundary inside a multi-byte character.
        let heap = "é".as_bytes(); // 2 bytes
        let mut bad = heap.to_vec();
        for off in [0u32, 1, 2] {
            bad.extend_from_slice(&off.to_le_bytes());
        }
        let b = buf(&bad);
        assert!(StrArena::view(&b, 0..2, 2..14).is_err());

        // Non-UTF-8 heap.
        let mut bad = vec![0xff, 0xfe];
        for off in [0u32, 1, 2] {
            bad.extend_from_slice(&off.to_le_bytes());
        }
        let b = buf(&bad);
        assert!(StrArena::view(&b, 0..2, 2..14).is_err());
    }

    #[test]
    fn columns_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PodCol<u32>>();
        assert_send_sync::<StrArena>();
    }
}
