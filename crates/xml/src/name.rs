//! QName interning.
//!
//! Element and attribute names are interned per document into a
//! [`NameTable`]; columns store compact [`NameId`]s. QNames keep their
//! lexical `prefix:local` form — the engine compares names lexically, which
//! is sufficient for the paper's workloads (XMark uses no namespaces, and
//! the `standoff-*` options name attributes/elements lexically).

use std::collections::HashMap;
use std::fmt;

/// Interned name identifier. `NameId::NONE` marks "no name"
/// (text/comment/document nodes).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NameId(pub u32);

impl NameId {
    /// Sentinel for nodes without a name.
    pub const NONE: NameId = NameId(u32::MAX);

    #[inline]
    pub fn is_none(self) -> bool {
        self == NameId::NONE
    }
}

/// A lexical QName: optional prefix plus local part.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct QName {
    pub prefix: Option<Box<str>>,
    pub local: Box<str>,
}

impl QName {
    /// Parse a lexical QName (`local` or `prefix:local`).
    pub fn parse(s: &str) -> QName {
        match s.split_once(':') {
            Some((p, l)) => QName {
                prefix: Some(p.into()),
                local: l.into(),
            },
            None => QName {
                prefix: None,
                local: s.into(),
            },
        }
    }

    /// Local part only, without prefix.
    pub fn local(&self) -> &str {
        &self.local
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.prefix {
            Some(p) => write!(f, "{p}:{}", self.local),
            None => f.write_str(&self.local),
        }
    }
}

/// Per-document name interning table.
///
/// Names are stored once; all columns reference them by [`NameId`]. Lookup
/// by lexical string is `O(1)` via a hash map, which makes name tests in
/// path steps a single integer comparison per node.
#[derive(Default, Clone)]
pub struct NameTable {
    names: Vec<QName>,
    lookup: HashMap<Box<str>, NameId>,
}

impl NameTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a lexical QName, returning its id (existing or fresh).
    pub fn intern(&mut self, lexical: &str) -> NameId {
        if let Some(&id) = self.lookup.get(lexical) {
            return id;
        }
        let id = NameId(self.names.len() as u32);
        self.names.push(QName::parse(lexical));
        self.lookup.insert(lexical.into(), id);
        id
    }

    /// Look up a name id without interning. Returns `None` if the name has
    /// never been seen — callers use that to short-circuit name tests that
    /// cannot match anything.
    pub fn get(&self, lexical: &str) -> Option<NameId> {
        self.lookup.get(lexical).copied()
    }

    /// Resolve a name id back to its QName.
    pub fn resolve(&self, id: NameId) -> Option<&QName> {
        if id.is_none() {
            None
        } else {
            self.names.get(id.0 as usize)
        }
    }

    /// Lexical form of a name id ("" for `NameId::NONE`).
    pub fn lexical(&self, id: NameId) -> String {
        self.resolve(id).map(|q| q.to_string()).unwrap_or_default()
    }

    /// Number of distinct names interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = NameTable::new();
        let a = t.intern("site");
        let b = t.intern("site");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let mut t = NameTable::new();
        let a = t.intern("start");
        let b = t.intern("end");
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn qname_prefix_parsing() {
        let q = QName::parse("xs:integer");
        assert_eq!(q.prefix.as_deref(), Some("xs"));
        assert_eq!(q.local(), "integer");
        assert_eq!(q.to_string(), "xs:integer");

        let q = QName::parse("shot");
        assert_eq!(q.prefix, None);
        assert_eq!(q.to_string(), "shot");
    }

    #[test]
    fn get_does_not_intern() {
        let mut t = NameTable::new();
        assert_eq!(t.get("missing"), None);
        t.intern("present");
        assert!(t.get("present").is_some());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn resolve_none_is_none() {
        let t = NameTable::new();
        assert!(t.resolve(NameId::NONE).is_none());
        assert_eq!(t.lexical(NameId::NONE), "");
    }
}
