//! Document collections.
//!
//! A [`Store`] owns a set of shredded documents, addressed by URI for
//! `fn:doc(...)` and by [`DocId`] for node references. The paper's XPath-
//! step semantics ("match only nodes from the same XML fragment", §3.3)
//! make per-document indices sufficient — the store never builds a global
//! region index.

use std::collections::HashMap;
use std::sync::Arc;

use crate::doc::Document;
use crate::error::ParseError;
use crate::node::{DocId, NodeId, NodeRef};
use crate::parser::{parse_with_options, ParseOptions};

/// A collection of documents.
///
/// Documents are held behind [`Arc`], so cloning a store is cheap (one
/// pointer copy per document plus the URI map) and the clones share the
/// shredded column data. This is what lets a query engine hand each
/// worker thread its own store view of one immutable corpus: per-thread
/// clones append session-constructed documents locally without touching
/// the shared base documents.
#[derive(Default, Clone)]
pub struct Store {
    docs: Vec<Arc<Document>>,
    by_uri: HashMap<String, DocId>,
}

impl Store {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an already-built document under an optional URI.
    pub fn add(&mut self, mut doc: Document, uri: Option<&str>) -> DocId {
        if let Some(uri) = uri {
            doc.set_uri(uri.to_string());
        }
        self.add_shared(Arc::new(doc), uri)
    }

    /// Add a document that is already shared (its URI registration, if
    /// any, must match the document's own `uri()`).
    pub fn add_shared(&mut self, doc: Arc<Document>, uri: Option<&str>) -> DocId {
        let id = DocId(self.docs.len() as u32);
        if let Some(uri) = uri {
            self.by_uri.insert(uri.to_string(), id);
        }
        self.docs.push(doc);
        id
    }

    /// Parse and register a document in one step.
    pub fn load(&mut self, uri: &str, xml: &str) -> Result<DocId, ParseError> {
        self.load_with_options(uri, xml, ParseOptions::default())
    }

    /// Parse (with options) and register a document.
    pub fn load_with_options(
        &mut self,
        uri: &str,
        xml: &str,
        options: ParseOptions,
    ) -> Result<DocId, ParseError> {
        let doc = parse_with_options(xml, options)?;
        Ok(self.add(doc, Some(uri)))
    }

    /// Look up a document by URI.
    pub fn by_uri(&self, uri: &str) -> Option<DocId> {
        self.by_uri.get(uri).copied()
    }

    /// Access a document by id. Panics on stale ids (ids are never
    /// invalidated; a panic indicates a cross-store mixup).
    #[inline]
    pub fn doc(&self, id: DocId) -> &Document {
        self.docs[id.0 as usize].as_ref()
    }

    /// Number of documents in the store.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Drop all documents with id ≥ `len` (used to discard documents a
    /// query constructed). URI registrations pointing at dropped ids are
    /// removed.
    pub fn truncate(&mut self, len: usize) {
        self.docs.truncate(len);
        self.by_uri.retain(|_, id| (id.0 as usize) < len);
    }

    /// Consume the store, yielding its documents in id order (used to
    /// transfer bulk-loaded documents into an engine). Documents still
    /// shared with a clone of this store are deep-copied.
    pub fn into_docs(self) -> Vec<Document> {
        self.docs
            .into_iter()
            .map(|d| Arc::try_unwrap(d).unwrap_or_else(|shared| (*shared).clone()))
            .collect()
    }

    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// All document ids.
    pub fn doc_ids(&self) -> impl Iterator<Item = DocId> {
        (0..self.docs.len() as u32).map(DocId)
    }

    /// Root node reference of a document.
    pub fn root(&self, id: DocId) -> NodeRef {
        NodeRef::new(id, NodeId::tree(0))
    }

    /// String value of a node reference.
    pub fn string_value(&self, node: NodeRef) -> String {
        self.doc(node.doc).string_value(node.id)
    }

    /// Lexical name of a node reference.
    pub fn node_name(&self, node: NodeRef) -> String {
        self.doc(node.doc).node_name(node.id)
    }

    /// Total document-order key: (doc, in-document order key). Node
    /// sequences produced by path steps are sorted by this.
    #[inline]
    pub fn order_key(&self, node: NodeRef) -> (u32, u32, u32) {
        let (a, b) = self.doc(node.doc).order_key(node.id);
        (node.doc.0, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uri_lookup() {
        let mut s = Store::new();
        let id = s.load("file:a.xml", "<a/>").unwrap();
        assert_eq!(s.by_uri("file:a.xml"), Some(id));
        assert_eq!(s.by_uri("file:missing.xml"), None);
        assert_eq!(s.doc(id).uri(), Some("file:a.xml"));
    }

    #[test]
    fn multiple_documents_are_independent() {
        let mut s = Store::new();
        let a = s.load("a", "<x><y/></x>").unwrap();
        let b = s.load("b", "<x><y/><y/></x>").unwrap();
        assert_ne!(a, b);
        assert_eq!(s.doc(a).elements_named("y").len(), 1);
        assert_eq!(s.doc(b).elements_named("y").len(), 2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn order_keys_are_totally_ordered_across_docs() {
        let mut s = Store::new();
        let a = s.load("a", "<x/>").unwrap();
        let b = s.load("b", "<x/>").unwrap();
        let na = NodeRef::tree(a, 1);
        let nb = NodeRef::tree(b, 1);
        assert!(s.order_key(na) < s.order_key(nb));
    }
}
