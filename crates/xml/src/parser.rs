//! Hand-written XML parser.
//!
//! A single-pass, byte-oriented parser that shreds directly into a
//! [`DocumentBuilder`] — no intermediate DOM. Supports the XML constructs
//! the annotation workloads need: elements, attributes (both quote styles),
//! character data with the five predefined entities plus numeric character
//! references, CDATA sections, comments, processing instructions, an XML
//! declaration, and DOCTYPE declarations (skipped, including an internal
//! subset). Namespace *declarations* are kept as plain attributes; QNames
//! are stored lexically.

use crate::builder::DocumentBuilder;
use crate::doc::Document;
use crate::error::ParseError;

/// Parser configuration.
#[derive(Clone, Copy, Debug)]
pub struct ParseOptions {
    /// Drop text nodes that consist solely of whitespace (indentation).
    /// Annotation documents are usually machine-generated and pretty-
    /// printed; the paper's region semantics never depend on ignorable
    /// whitespace, so this defaults to `true`.
    pub strip_whitespace_text: bool,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            strip_whitespace_text: true,
        }
    }
}

/// Parse an XML document with default options.
pub fn parse_document(input: &str) -> Result<Document, ParseError> {
    parse_with_options(input, ParseOptions::default())
}

/// Parse an XML document with explicit options.
pub fn parse_with_options(input: &str, options: ParseOptions) -> Result<Document, ParseError> {
    let mut p = Parser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
        options,
        builder: DocumentBuilder::with_capacity(input.len() / 32),
        depth: 0,
        seen_root: false,
        open_names: Vec::new(),
        text_buf: String::new(),
    };
    p.run()?;
    p.builder
        .finish()
        .map_err(|e| ParseError::new(e.to_string(), input, input.len()))
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    options: ParseOptions,
    builder: DocumentBuilder,
    depth: usize,
    seen_root: bool,
    open_names: Vec<&'a str>,
    text_buf: String,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.input, self.pos)
    }

    #[inline]
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    #[inline]
    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    #[inline]
    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.starts_with(s) {
            self.bump(s.len());
            Ok(())
        } else {
            Err(self.err(format!("expected '{s}'")))
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if b == b' ' || b == b'\t' || b == b'\r' || b == b'\n' {
                self.bump(1);
            } else {
                break;
            }
        }
    }

    /// Find `needle` at or after the current position; error mentions
    /// `context` if it is missing.
    fn find(&self, needle: &str, context: &str) -> Result<usize, ParseError> {
        self.input[self.pos..]
            .find(needle)
            .map(|i| self.pos + i)
            .ok_or_else(|| self.err(format!("unterminated {context}: missing '{needle}'")))
    }

    fn run(&mut self) -> Result<(), ParseError> {
        // Optional XML declaration.
        if self.starts_with("<?xml") {
            let end = self.find("?>", "XML declaration")?;
            self.pos = end + 2;
        }
        loop {
            match self.peek() {
                None => break,
                Some(b'<') => {
                    self.flush_text()?;
                    self.dispatch_markup()?;
                }
                Some(_) => self.consume_text()?,
            }
        }
        self.flush_text()?;
        if self.depth != 0 {
            return Err(self.err(format!(
                "unexpected end of input: <{}> not closed",
                self.open_names.last().unwrap_or(&"?")
            )));
        }
        if !self.seen_root {
            return Err(self.err("document has no root element"));
        }
        Ok(())
    }

    fn dispatch_markup(&mut self) -> Result<(), ParseError> {
        if self.starts_with("<!--") {
            self.parse_comment()
        } else if self.starts_with("<![CDATA[") {
            self.parse_cdata()
        } else if self.starts_with("<!DOCTYPE") {
            self.skip_doctype()
        } else if self.starts_with("<?") {
            self.parse_pi()
        } else if self.starts_with("</") {
            self.parse_end_tag()
        } else {
            self.parse_start_tag()
        }
    }

    fn parse_comment(&mut self) -> Result<(), ParseError> {
        self.bump(4); // <!--
        let end = self.find("-->", "comment")?;
        let content = &self.input[self.pos..end];
        if self.depth > 0 {
            self.builder.comment(content);
        }
        self.pos = end + 3;
        Ok(())
    }

    fn parse_cdata(&mut self) -> Result<(), ParseError> {
        if self.depth == 0 {
            return Err(self.err("CDATA outside the root element"));
        }
        self.bump(9); // <![CDATA[
        let end = self.find("]]>", "CDATA section")?;
        // CDATA content is literal: bypass entity decoding.
        self.text_buf.push_str(&self.input[self.pos..end]);
        self.pos = end + 3;
        Ok(())
    }

    fn skip_doctype(&mut self) -> Result<(), ParseError> {
        self.bump(9); // <!DOCTYPE
        let mut bracket_depth = 0usize;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated DOCTYPE")),
                Some(b'[') => {
                    bracket_depth += 1;
                    self.bump(1);
                }
                Some(b']') => {
                    bracket_depth = bracket_depth.saturating_sub(1);
                    self.bump(1);
                }
                Some(b'>') if bracket_depth == 0 => {
                    self.bump(1);
                    return Ok(());
                }
                Some(_) => self.bump(1),
            }
        }
    }

    fn parse_pi(&mut self) -> Result<(), ParseError> {
        self.bump(2); // <?
        let target = self.parse_name("processing-instruction target")?;
        let end = self.find("?>", "processing instruction")?;
        let content = self.input[self.pos..end].trim_start();
        if self.depth > 0 {
            self.builder.pi(target, content);
        }
        self.pos = end + 2;
        Ok(())
    }

    fn parse_name(&mut self, what: &str) -> Result<&'a str, ParseError> {
        let start = self.pos;
        match self.peek() {
            Some(b) if is_name_start(b) => self.bump(1),
            _ => return Err(self.err(format!("invalid {what}"))),
        }
        while let Some(b) = self.peek() {
            if is_name_char(b) {
                self.bump(1);
            } else {
                break;
            }
        }
        Ok(&self.input[start..self.pos])
    }

    fn parse_start_tag(&mut self) -> Result<(), ParseError> {
        self.bump(1); // <
        let name = self.parse_name("element name")?;
        if self.depth == 0 {
            if self.seen_root {
                return Err(self.err("multiple root elements"));
            }
            self.seen_root = true;
        }
        self.builder.start_element(name);
        self.depth += 1;
        self.open_names.push(name);

        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.bump(1);
                    return Ok(());
                }
                Some(b'/') => {
                    self.expect("/>")?;
                    self.builder.end_element();
                    self.depth -= 1;
                    self.open_names.pop();
                    return Ok(());
                }
                Some(b) if is_name_start(b) => {
                    let attr_name = self.parse_name("attribute name")?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let value = self.parse_attr_value()?;
                    self.builder.attribute(attr_name, &value);
                }
                _ => return Err(self.err(format!("malformed start tag <{name}>"))),
            }
        }
    }

    fn parse_attr_value(&mut self) -> Result<String, ParseError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("attribute value must be quoted")),
        };
        self.bump(1);
        let quote_str = if quote == b'"' { "\"" } else { "'" };
        let end = self.find(quote_str, "attribute value")?;
        let raw = &self.input[self.pos..end];
        self.pos = end + 1;
        if raw.contains('<') {
            return Err(self.err("'<' not allowed in attribute value"));
        }
        decode_entities(raw, self.input, self.pos)
    }

    fn parse_end_tag(&mut self) -> Result<(), ParseError> {
        self.bump(2); // </
        let name = self.parse_name("end tag name")?;
        self.skip_ws();
        self.expect(">")?;
        match self.open_names.pop() {
            Some(open) if open == name => {
                self.builder.end_element();
                self.depth -= 1;
                Ok(())
            }
            Some(open) => {
                Err(self.err(format!("mismatched end tag </{name}>, expected </{open}>")))
            }
            None => Err(self.err(format!("unmatched end tag </{name}>"))),
        }
    }

    fn consume_text(&mut self) -> Result<(), ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'<' {
                break;
            }
            self.bump(1);
        }
        let raw = &self.input[start..self.pos];
        if self.depth == 0 {
            if !raw.trim().is_empty() {
                return Err(ParseError::new(
                    "text outside the root element",
                    self.input,
                    start,
                ));
            }
            return Ok(());
        }
        let decoded = decode_entities(raw, self.input, start)?;
        self.text_buf.push_str(&decoded);
        Ok(())
    }

    fn flush_text(&mut self) -> Result<(), ParseError> {
        if self.text_buf.is_empty() {
            return Ok(());
        }
        let keep =
            !self.options.strip_whitespace_text || !self.text_buf.chars().all(char::is_whitespace);
        if keep && self.depth > 0 {
            self.builder.text(&self.text_buf);
        }
        self.text_buf.clear();
        Ok(())
    }
}

#[inline]
fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
}

#[inline]
fn is_name_char(b: u8) -> bool {
    is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
}

/// Decode the five predefined entities and numeric character references.
/// `full_input`/`base_offset` are used only for error positions.
fn decode_entities(raw: &str, full_input: &str, base_offset: usize) -> Result<String, ParseError> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let semi = after.find(';').ok_or_else(|| {
            ParseError::new("unterminated entity reference", full_input, base_offset)
        })?;
        let entity = &after[..semi];
        match entity {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16).map_err(|_| {
                    ParseError::new(
                        format!("invalid character reference &{entity};"),
                        full_input,
                        base_offset,
                    )
                })?;
                out.push(char::from_u32(code).ok_or_else(|| {
                    ParseError::new(
                        format!("character reference &{entity}; out of range"),
                        full_input,
                        base_offset,
                    )
                })?);
            }
            _ if entity.starts_with('#') => {
                let code: u32 = entity[1..].parse().map_err(|_| {
                    ParseError::new(
                        format!("invalid character reference &{entity};"),
                        full_input,
                        base_offset,
                    )
                })?;
                out.push(char::from_u32(code).ok_or_else(|| {
                    ParseError::new(
                        format!("character reference &{entity}; out of range"),
                        full_input,
                        base_offset,
                    )
                })?);
            }
            _ => {
                return Err(ParseError::new(
                    format!("unknown entity &{entity};"),
                    full_input,
                    base_offset,
                ))
            }
        }
        rest = &after[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeId, NodeKind};

    #[test]
    fn minimal_document() {
        let d = parse_document("<a/>").unwrap();
        assert_eq!(d.node_count(), 2);
        assert_eq!(d.kind(1), NodeKind::Element);
        assert_eq!(d.node_name(NodeId::tree(1)), "a");
    }

    #[test]
    fn nested_elements_and_text() {
        let d = parse_document("<a><b>hello</b><c>world</c></a>").unwrap();
        d.check_invariants().unwrap();
        assert_eq!(d.string_value(NodeId::tree(1)), "helloworld");
        assert_eq!(d.elements_named("b"), &[2]);
        assert_eq!(d.elements_named("c"), &[4]);
    }

    #[test]
    fn attributes_both_quote_styles() {
        let d = parse_document(r#"<a x="1" y='2'/>"#).unwrap();
        assert_eq!(d.attribute(1, "x"), Some("1"));
        assert_eq!(d.attribute(1, "y"), Some("2"));
    }

    #[test]
    fn figure1_standoff_document_parses() {
        // The multimedia example from Figure 1 of the paper.
        let text = r#"<sample>
  <video>
    <shot id="Intro" start="0" end="8"/>
    <shot id="Interview" start="8" end="64"/>
    <shot id="Outro" start="64" end="94"/>
  </video>
  <audio>
    <music artist="U2" start="0" end="31"/>
    <music artist="Bach" start="52" end="94"/>
  </audio>
</sample>"#;
        let d = parse_document(text).unwrap();
        d.check_invariants().unwrap();
        assert_eq!(d.elements_named("shot").len(), 3);
        assert_eq!(d.elements_named("music").len(), 2);
        let intro = d.elements_named("shot")[0];
        assert_eq!(d.attribute(intro, "id"), Some("Intro"));
        assert_eq!(d.attribute(intro, "start"), Some("0"));
    }

    #[test]
    fn entity_decoding() {
        let d = parse_document("<a b=\"&lt;&amp;&gt;\">&quot;x&apos; &#65;&#x42;</a>").unwrap();
        assert_eq!(d.attribute(1, "b"), Some("<&>"));
        assert_eq!(d.string_value(NodeId::tree(1)), "\"x' AB");
    }

    #[test]
    fn cdata_is_literal() {
        let d = parse_document("<a><![CDATA[<not&an;entity>]]></a>").unwrap();
        assert_eq!(d.string_value(NodeId::tree(1)), "<not&an;entity>");
    }

    #[test]
    fn comments_and_pis() {
        let d = parse_document("<a><!-- note --><?php echo?></a>").unwrap();
        assert_eq!(d.kind(2), NodeKind::Comment);
        assert_eq!(d.value(2), " note ");
        assert_eq!(d.kind(3), NodeKind::Pi);
        assert_eq!(d.node_name(NodeId::tree(3)), "php");
    }

    #[test]
    fn xml_declaration_and_doctype_are_skipped() {
        let d =
            parse_document("<?xml version=\"1.0\"?>\n<!DOCTYPE a [ <!ELEMENT a EMPTY> ]>\n<a/>")
                .unwrap();
        assert_eq!(d.node_count(), 2);
    }

    #[test]
    fn whitespace_stripping_default() {
        let d = parse_document("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(d.node_count(), 3); // doc, a, b — whitespace dropped
        let d = parse_with_options(
            "<a>\n  <b/>\n</a>",
            ParseOptions {
                strip_whitespace_text: false,
            },
        )
        .unwrap();
        assert_eq!(d.node_count(), 5); // plus two whitespace text nodes
    }

    #[test]
    fn mismatched_tags_error() {
        let e = parse_document("<a><b></a></b>").unwrap_err();
        assert!(e.message.contains("mismatched"), "{e}");
    }

    #[test]
    fn unclosed_root_error() {
        let e = parse_document("<a><b/>").unwrap_err();
        assert!(e.message.contains("not closed"), "{e}");
    }

    #[test]
    fn multiple_roots_error() {
        let e = parse_document("<a/><b/>").unwrap_err();
        assert!(e.message.contains("multiple root"), "{e}");
    }

    #[test]
    fn text_outside_root_error() {
        let e = parse_document("<a/>junk").unwrap_err();
        assert!(e.message.contains("outside the root"), "{e}");
    }

    #[test]
    fn unknown_entity_error() {
        let e = parse_document("<a>&nope;</a>").unwrap_err();
        assert!(e.message.contains("unknown entity"), "{e}");
    }

    #[test]
    fn unquoted_attribute_error() {
        let e = parse_document("<a x=1/>").unwrap_err();
        assert!(e.message.contains("quoted"), "{e}");
    }

    #[test]
    fn error_positions_are_tracked() {
        let e = parse_document("<a>\n<b x=\"&bad;\"/></a>").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn large_flat_document() {
        let mut s = String::from("<root>");
        for i in 0..1000 {
            s.push_str(&format!("<item n=\"{i}\">v{i}</item>"));
        }
        s.push_str("</root>");
        let d = parse_document(&s).unwrap();
        d.check_invariants().unwrap();
        assert_eq!(d.elements_named("item").len(), 1000);
        assert_eq!(d.attribute(d.elements_named("item")[999], "n"), Some("999"));
    }
}
