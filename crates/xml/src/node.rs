//! Node identifiers and kinds.
//!
//! A [`NodeId`] identifies a node *within one document*. Tree nodes
//! (document root, elements, text, comments, processing instructions) are
//! identified by their pre-order rank; attribute nodes live in a separate
//! table (as in MonetDB/XQuery) and are identified by their index in that
//! table, tagged with a high bit. A [`NodeRef`] pairs a `NodeId` with the
//! [`DocId`] of its document inside a [`crate::Store`].

use std::fmt;

/// Identifier of a document within a [`crate::Store`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DocId(pub u32);

/// Tag bit distinguishing attribute ids from tree-node pre ranks.
const ATTR_BIT: u32 = 1 << 31;

/// Identifier of a node within one document.
///
/// Packed into a single `u32`: tree nodes store their pre-order rank,
/// attribute nodes store their attribute-table index with the high bit set.
/// This mirrors MonetDB/XQuery, where attributes are shredded into a
/// separate table keyed by owner pre rank.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Node id of a tree node with the given pre-order rank.
    #[inline]
    pub fn tree(pre: u32) -> Self {
        debug_assert!(pre & ATTR_BIT == 0, "pre rank too large");
        NodeId(pre)
    }

    /// Node id of the attribute with the given attribute-table index.
    #[inline]
    pub fn attr(idx: u32) -> Self {
        debug_assert!(idx & ATTR_BIT == 0, "attribute index too large");
        NodeId(idx | ATTR_BIT)
    }

    /// Is this an attribute node?
    #[inline]
    pub fn is_attr(self) -> bool {
        self.0 & ATTR_BIT != 0
    }

    /// Pre-order rank if this is a tree node.
    #[inline]
    pub fn pre(self) -> Option<u32> {
        if self.is_attr() {
            None
        } else {
            Some(self.0)
        }
    }

    /// Attribute-table index if this is an attribute node.
    #[inline]
    pub fn attr_index(self) -> Option<u32> {
        if self.is_attr() {
            Some(self.0 & !ATTR_BIT)
        } else {
            None
        }
    }

    /// Raw packed representation (useful as a map key).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuild from [`NodeId::raw`].
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        NodeId(raw)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(i) = self.attr_index() {
            write!(f, "attr#{i}")
        } else {
            write!(f, "pre#{}", self.0)
        }
    }
}

/// A node in a document collection: document id plus in-document node id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NodeRef {
    pub doc: DocId,
    pub id: NodeId,
}

impl NodeRef {
    #[inline]
    pub fn new(doc: DocId, id: NodeId) -> Self {
        NodeRef { doc, id }
    }

    /// Tree node reference from document id and pre rank.
    #[inline]
    pub fn tree(doc: DocId, pre: u32) -> Self {
        NodeRef {
            doc,
            id: NodeId::tree(pre),
        }
    }
}

/// The kind of a tree node.
///
/// Attributes are not tree nodes (they live in the attribute table), so
/// there is no `Attribute` variant here; [`NodeId::is_attr`] distinguishes
/// them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum NodeKind {
    /// The document node (always pre rank 0).
    Document = 0,
    /// An element node.
    Element = 1,
    /// A text node.
    Text = 2,
    /// A comment node.
    Comment = 3,
    /// A processing instruction node.
    Pi = 4,
}

impl NodeKind {
    /// Short display name used by `EXPLAIN` output and error messages.
    pub fn as_str(self) -> &'static str {
        match self {
            NodeKind::Document => "document",
            NodeKind::Element => "element",
            NodeKind::Text => "text",
            NodeKind::Comment => "comment",
            NodeKind::Pi => "processing-instruction",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_ids_round_trip() {
        let id = NodeId::tree(42);
        assert!(!id.is_attr());
        assert_eq!(id.pre(), Some(42));
        assert_eq!(id.attr_index(), None);
        assert_eq!(NodeId::from_raw(id.raw()), id);
    }

    #[test]
    fn attr_ids_round_trip() {
        let id = NodeId::attr(7);
        assert!(id.is_attr());
        assert_eq!(id.pre(), None);
        assert_eq!(id.attr_index(), Some(7));
        assert_eq!(NodeId::from_raw(id.raw()), id);
    }

    #[test]
    fn tree_and_attr_ids_are_disjoint() {
        assert_ne!(NodeId::tree(3), NodeId::attr(3));
    }

    #[test]
    fn node_kind_names() {
        assert_eq!(NodeKind::Element.as_str(), "element");
        assert_eq!(NodeKind::Pi.as_str(), "processing-instruction");
    }
}
