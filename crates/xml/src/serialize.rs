//! Document and subtree serialization.
//!
//! Serialization walks the pre/size encoding linearly with an explicit
//! end-tag stack — no recursion, so arbitrarily deep documents serialize in
//! `O(n)` without stack growth.

use std::fmt::Write as _;

use crate::doc::Document;
use crate::node::{NodeId, NodeKind};

/// Serialization configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct SerializeOptions {
    /// Indent output with two spaces per level and newlines between
    /// element children. Text content is emitted verbatim either way.
    pub indent: bool,
}

/// Serialize a whole document (children of the document node).
pub fn serialize_document(doc: &Document, options: SerializeOptions) -> String {
    serialize_node(doc, doc.root(), options)
}

/// Serialize the subtree rooted at `node`. For the document node this
/// serializes all its children; for attributes, the `name="value"` form.
pub fn serialize_node(doc: &Document, node: NodeId, options: SerializeOptions) -> String {
    let mut out = String::new();
    if let Some(a) = node.attr_index() {
        let name = doc.names().lexical(doc.attr_name_id(a));
        let _ = write!(out, "{name}=\"{}\"", escape_attr(doc.attr_value(a)));
        return out;
    }
    let root_pre = node.pre().expect("tree node");
    match doc.kind(root_pre) {
        NodeKind::Document => {
            for child in doc.children(root_pre) {
                serialize_subtree(doc, child, options, &mut out);
                if options.indent {
                    out.push('\n');
                }
            }
        }
        _ => serialize_subtree(doc, root_pre, options, &mut out),
    }
    out
}

/// Non-recursive subtree serializer.
fn serialize_subtree(doc: &Document, root: u32, options: SerializeOptions, out: &mut String) {
    // Stack of (pre, name) of elements whose end tag is still pending.
    let mut open: Vec<(u32, String)> = Vec::new();
    let end = root + doc.size(root);
    let base_level = doc.level(root);
    let mut pre = root;
    while pre <= end {
        // Close elements whose subtree we have left.
        while let Some(&(open_pre, _)) = open.last() {
            if pre > open_pre + doc.size(open_pre) {
                let (open_pre, name) = open.pop().unwrap();
                close_tag(doc, open_pre, &name, options, base_level, out);
            } else {
                break;
            }
        }
        match doc.kind(pre) {
            NodeKind::Element => {
                let name = doc.names().lexical(doc.name_id(pre));
                if options.indent {
                    indent(doc, pre, base_level, out);
                }
                out.push('<');
                out.push_str(&name);
                for a in doc.attr_range(pre) {
                    let an = doc.names().lexical(doc.attr_name_id(a));
                    let _ = write!(out, " {an}=\"{}\"", escape_attr(doc.attr_value(a)));
                }
                if doc.size(pre) == 0 {
                    out.push_str("/>");
                } else {
                    out.push('>');
                    open.push((pre, name));
                }
            }
            NodeKind::Text => out.push_str(&escape_text(doc.value(pre))),
            NodeKind::Comment => {
                if options.indent {
                    indent(doc, pre, base_level, out);
                }
                let _ = write!(out, "<!--{}-->", doc.value(pre));
            }
            NodeKind::Pi => {
                if options.indent {
                    indent(doc, pre, base_level, out);
                }
                let name = doc.names().lexical(doc.name_id(pre));
                if doc.value(pre).is_empty() {
                    let _ = write!(out, "<?{name}?>");
                } else {
                    let _ = write!(out, "<?{name} {}?>", doc.value(pre));
                }
            }
            NodeKind::Document => {}
        }
        pre += 1;
    }
    while let Some((open_pre, name)) = open.pop() {
        close_tag(doc, open_pre, &name, options, base_level, out);
    }
}

fn close_tag(
    doc: &Document,
    open_pre: u32,
    name: &str,
    options: SerializeOptions,
    base_level: u16,
    out: &mut String,
) {
    // Indent the close tag only if the element has element/comment/PI
    // children (mixed text content stays inline).
    if options.indent
        && doc
            .children(open_pre)
            .any(|c| doc.kind(c) != NodeKind::Text)
    {
        let _ = write!(
            out,
            "\n{:width$}",
            "",
            width = ((doc.level(open_pre) - base_level) as usize) * 2
        );
    }
    let _ = write!(out, "</{name}>");
}

fn indent(doc: &Document, pre: u32, base_level: u16, out: &mut String) {
    // Only break before a node whose parent has non-text children
    // (i.e. we're in "element content").
    if !out.is_empty() && !out.ends_with('\n') {
        let parent = doc.parent(pre);
        if doc.kind(parent) != NodeKind::Document
            && doc.children(parent).any(|c| doc.kind(c) == NodeKind::Text)
        {
            return; // mixed content: stay inline
        }
        out.push('\n');
    }
    if out.ends_with('\n') || out.is_empty() {
        let _ = write!(
            out,
            "{:width$}",
            "",
            width = ((doc.level(pre).saturating_sub(base_level)) as usize) * 2
        );
    }
}

/// Escape character data for text content.
pub fn escape_text(s: &str) -> String {
    if !s.contains(['<', '>', '&']) {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape character data for attribute values (double-quoted).
pub fn escape_attr(s: &str) -> String {
    if !s.contains(['<', '>', '&', '"']) {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    fn round_trip(xml: &str) -> String {
        let doc = parse_document(xml).unwrap();
        serialize_document(&doc, SerializeOptions::default())
    }

    #[test]
    fn simple_round_trip() {
        assert_eq!(
            round_trip("<a><b x=\"1\"/>text</a>"),
            "<a><b x=\"1\"/>text</a>"
        );
    }

    #[test]
    fn escaping_round_trips() {
        let xml = "<a x=\"&lt;&quot;&amp;\">&lt;body&gt; &amp; soul</a>";
        let once = round_trip(xml);
        assert_eq!(round_trip(&once), once, "serialization is stable");
        let doc = parse_document(&once).unwrap();
        assert_eq!(doc.attribute(1, "x"), Some("<\"&"));
        assert_eq!(doc.string_value(crate::NodeId::tree(1)), "<body> & soul");
    }

    #[test]
    fn subtree_serialization() {
        let doc = parse_document("<a><b><c/></b><d/></a>").unwrap();
        let b_pre = doc.elements_named("b")[0];
        let s = serialize_node(
            &doc,
            crate::NodeId::tree(b_pre),
            SerializeOptions::default(),
        );
        assert_eq!(s, "<b><c/></b>");
    }

    #[test]
    fn attribute_serialization() {
        let doc = parse_document("<a k=\"v\"/>").unwrap();
        let attr = doc.attributes(1).next().unwrap();
        assert_eq!(
            serialize_node(&doc, attr, SerializeOptions::default()),
            "k=\"v\""
        );
    }

    #[test]
    fn comments_and_pis_round_trip() {
        let s = round_trip("<a><!--hi--><?t d?></a>");
        assert_eq!(s, "<a><!--hi--><?t d?></a>");
    }

    #[test]
    fn indent_mode_produces_parseable_output() {
        let doc = parse_document("<a><b><c/></b><d>txt</d></a>").unwrap();
        let pretty = serialize_document(&doc, SerializeOptions { indent: true });
        let re = parse_document(&pretty).unwrap();
        assert_eq!(re.elements_named("c").len(), 1);
        assert_eq!(
            re.string_value(crate::NodeId::tree(re.elements_named("d")[0])),
            "txt"
        );
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn deep_document_serializes_without_stack_overflow() {
        let mut xml = String::new();
        let depth = 50_000;
        for _ in 0..depth {
            xml.push_str("<n>");
        }
        for _ in 0..depth {
            xml.push_str("</n>");
        }
        let doc = parse_document(&xml).unwrap();
        let out = serialize_document(&doc, SerializeOptions::default());
        // The innermost empty element self-closes: 3 bytes shorter.
        assert_eq!(out.len(), xml.len() - 3);
        let re = parse_document(&out).unwrap();
        assert_eq!(re.node_count(), doc.node_count());
    }
}
