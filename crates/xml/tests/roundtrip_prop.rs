//! Property tests: parse/serialize round-trips and structural invariants
//! of the shredded storage.

use proptest::prelude::*;

use standoff_xml::{parse_document, serialize_document, DocumentBuilder, SerializeOptions};

/// A generated element tree.
#[derive(Clone, Debug)]
enum Node {
    Element {
        name: String,
        attrs: Vec<(String, String)>,
        children: Vec<Node>,
    },
    Text(String),
}

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_-]{0,6}".prop_map(|s| s)
}

/// Attribute values and text with characters that need escaping.
fn text_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~åß€]{0,20}").unwrap()
}

fn node_strategy() -> impl Strategy<Value = Node> {
    let leaf = prop_oneof![
        text_strategy().prop_map(Node::Text),
        (name_strategy(), attr_strategy()).prop_map(|(name, attrs)| Node::Element {
            name,
            attrs,
            children: Vec::new(),
        }),
    ];
    leaf.prop_recursive(4, 32, 5, |inner| {
        (
            name_strategy(),
            attr_strategy(),
            prop::collection::vec(inner, 0..5),
        )
            .prop_map(|(name, attrs, children)| Node::Element {
                name,
                attrs,
                children,
            })
    })
}

fn attr_strategy() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec((name_strategy(), text_strategy()), 0..3).prop_map(|attrs| {
        // Attribute names must be unique per element.
        let mut seen = std::collections::HashSet::new();
        attrs
            .into_iter()
            .filter(|(n, _)| seen.insert(n.clone()))
            .collect()
    })
}

fn build(node: &Node, b: &mut DocumentBuilder) {
    match node {
        Node::Text(t) => {
            b.text(t);
        }
        Node::Element {
            name,
            attrs,
            children,
        } => {
            b.start_element(name);
            for (k, v) in attrs {
                b.attribute(k, v);
            }
            for c in children {
                build(c, b);
            }
            b.end_element();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// build → serialize → parse preserves structure and content.
    #[test]
    fn serialize_parse_round_trip(root in node_strategy()) {
        // Force an element root.
        let root = match root {
            e @ Node::Element { .. } => e,
            Node::Text(t) => Node::Element {
                name: "wrap".into(),
                attrs: vec![],
                children: vec![Node::Text(t)],
            },
        };
        let mut b = DocumentBuilder::new();
        build(&root, &mut b);
        let doc = b.finish().unwrap();
        doc.check_invariants().unwrap();

        let xml = serialize_document(&doc, SerializeOptions::default());
        let reparsed = parse_document(&xml).unwrap();
        reparsed.check_invariants().unwrap();

        // Serialization reaches a fixpoint after one parse (the first
        // parse may strip whitespace-only text nodes under the default
        // options, so compare from the reparsed form onward).
        let xml2 = serialize_document(&reparsed, SerializeOptions::default());
        let reparsed2 = parse_document(&xml2).unwrap();
        let xml3 = serialize_document(&reparsed2, SerializeOptions::default());
        prop_assert_eq!(&xml2, &xml3);

        // Whitespace-only text nodes are stripped by the default parse
        // options, so compare structure modulo those.
        let strip_ws = |d: &standoff_xml::Document| -> Vec<(u8, String, String)> {
            (0..d.node_count() as u32)
                .filter(|&p| {
                    d.kind(p) != standoff_xml::NodeKind::Text
                        || !d.value(p).chars().all(char::is_whitespace)
                })
                .map(|p| {
                    (
                        d.kind(p) as u8,
                        d.names().lexical(d.name_id(p)),
                        d.value(p).to_string(),
                    )
                })
                .collect()
        };
        prop_assert_eq!(strip_ws(&doc), strip_ws(&reparsed));
    }

    /// The pretty-printer produces re-parseable XML with identical
    /// element structure.
    #[test]
    fn indented_output_reparses(root in node_strategy()) {
        let root = match root {
            e @ Node::Element { .. } => e,
            Node::Text(t) => Node::Element {
                name: "wrap".into(),
                attrs: vec![],
                children: vec![Node::Text(t)],
            },
        };
        let mut b = DocumentBuilder::new();
        build(&root, &mut b);
        let doc = b.finish().unwrap();
        let pretty = serialize_document(&doc, SerializeOptions { indent: true });
        let reparsed = parse_document(&pretty).unwrap();
        let elems = |d: &standoff_xml::Document| {
            (0..d.node_count() as u32)
                .filter(|&p| d.kind(p) == standoff_xml::NodeKind::Element)
                .map(|p| d.names().lexical(d.name_id(p)))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(elems(&doc), elems(&reparsed));
    }

    /// Structural invariants hold for arbitrary built documents, and the
    /// element-name index is complete.
    #[test]
    fn shredded_invariants(root in node_strategy()) {
        let root = match root {
            e @ Node::Element { .. } => e,
            Node::Text(t) => Node::Element {
                name: "wrap".into(),
                attrs: vec![],
                children: vec![Node::Text(t)],
            },
        };
        let mut b = DocumentBuilder::new();
        build(&root, &mut b);
        let doc = b.finish().unwrap();
        doc.check_invariants().unwrap();

        // The name index finds exactly the elements of each name.
        let mut by_name: std::collections::HashMap<String, Vec<u32>> = Default::default();
        for p in 0..doc.node_count() as u32 {
            if doc.kind(p) == standoff_xml::NodeKind::Element {
                by_name
                    .entry(doc.names().lexical(doc.name_id(p)))
                    .or_default()
                    .push(p);
            }
        }
        for (name, pres) in by_name {
            prop_assert_eq!(doc.elements_named(&name), &pres[..]);
        }

        // children() and parent() agree.
        for p in 0..doc.node_count() as u32 {
            for c in doc.children(p) {
                prop_assert_eq!(doc.parent(c), p);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Binary codec round-trip: byte-identical serialization and equal
    /// structure for arbitrary documents.
    #[test]
    fn binary_codec_round_trip(root in node_strategy()) {
        let root = match root {
            e @ Node::Element { .. } => e,
            Node::Text(t) => Node::Element {
                name: "wrap".into(),
                attrs: vec![],
                children: vec![Node::Text(t)],
            },
        };
        let mut b = DocumentBuilder::new();
        build(&root, &mut b);
        let doc = b.finish().unwrap();

        let mut buf = Vec::new();
        standoff_xml::write_document(&doc, &mut buf).unwrap();
        let loaded = standoff_xml::read_document(&mut buf.as_slice()).unwrap();
        loaded.check_invariants().unwrap();
        prop_assert_eq!(
            serialize_document(&doc, SerializeOptions::default()),
            serialize_document(&loaded, SerializeOptions::default())
        );
        prop_assert_eq!(doc.node_count(), loaded.node_count());
        prop_assert_eq!(doc.attr_count(), loaded.attr_count());
        // Writing the loaded document again is byte-identical.
        let mut buf2 = Vec::new();
        standoff_xml::write_document(&loaded, &mut buf2).unwrap();
        prop_assert_eq!(buf, buf2);
    }
}
