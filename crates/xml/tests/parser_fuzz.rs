//! Parser robustness: arbitrary input must never panic — it either
//! parses or reports a positioned error. A parsed document always
//! satisfies the shredding invariants and survives a serialize/reparse
//! cycle.

use proptest::prelude::*;

use standoff_xml::{parse_document, serialize_document};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// No panic on arbitrary UTF-8 junk.
    #[test]
    fn arbitrary_input_never_panics(input in ".{0,200}") {
        let _ = parse_document(&input);
    }

    /// No panic on XML-ish soup assembled from markup fragments.
    #[test]
    fn markup_soup_never_panics(
        parts in prop::collection::vec(
            prop_oneof![
                Just("<a>".to_string()),
                Just("</a>".to_string()),
                Just("<b x='1'>".to_string()),
                Just("<c/>".to_string()),
                Just("text".to_string()),
                Just("&amp;".to_string()),
                Just("&bogus;".to_string()),
                Just("<!--".to_string()),
                Just("-->".to_string()),
                Just("<![CDATA[".to_string()),
                Just("]]>".to_string()),
                Just("<?pi".to_string()),
                Just("?>".to_string()),
                Just("<!DOCTYPE d [".to_string()),
                Just("]>".to_string()),
                Just("\"".to_string()),
                Just("=".to_string()),
                Just("<".to_string()),
            ],
            0..24,
        )
    ) {
        let input: String = parts.concat();
        if let Ok(doc) = parse_document(&input) {
            doc.check_invariants().unwrap();
            // Whatever parsed must serialize and reparse.
            let xml = serialize_document(&doc, Default::default());
            let re = parse_document(&xml).unwrap();
            re.check_invariants().unwrap();
        }
    }

    /// Valid element-only skeletons always parse.
    #[test]
    fn balanced_skeletons_parse(depth_walk in prop::collection::vec(0u8..3, 1..40)) {
        let mut xml = String::from("<r>");
        let mut depth = 0usize;
        for op in depth_walk {
            match op {
                0 => {
                    xml.push_str("<n>");
                    depth += 1;
                }
                1 if depth > 0 => {
                    xml.push_str("</n>");
                    depth -= 1;
                }
                _ => xml.push_str("<l/>"),
            }
        }
        for _ in 0..depth {
            xml.push_str("</n>");
        }
        xml.push_str("</r>");
        let doc = parse_document(&xml).unwrap();
        doc.check_invariants().unwrap();
    }
}
