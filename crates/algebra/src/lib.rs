//! # standoff-algebra
//!
//! The loop-lifting substrate of MonetDB/XQuery, rebuilt in Rust.
//!
//! Pathfinder (the MonetDB/XQuery compiler) translates XQuery into
//! relational algebra over tables of the shape `iter|pos|item`: each row is
//! one item of the result sequence of one iteration of the enclosing
//! for-loop scope (paper §4.1). All expressions are evaluated *once per
//! scope* in bulk — never once per iteration — which is what makes the
//! loop-lifted StandOff MergeJoin (and loop-lifted Staircase Join before
//! it) an order of magnitude faster than iterative evaluation.
//!
//! This crate provides:
//!
//! * [`Item`] — the XQuery item model (nodes, integers, doubles, strings,
//!   booleans) with the comparison/atomization semantics the engine needs;
//! * [`LlSeq`] — a loop-lifted item sequence (`iter|pos|item` with `pos`
//!   implicit in row order);
//! * [`NodeTable`] — the specialized loop-lifted *node* sequence used by
//!   path steps, with document-order normalization and deduplication;
//! * [`staircase`] — Staircase Join (Grust et al., VLDB 2003) for the XPath
//!   tree axes in its loop-lifted form: context pruning per iteration plus
//!   pre/size range emission, the tree-shaped sibling of the paper's
//!   StandOff MergeJoin.

pub mod item;
pub mod nodeseq;
pub mod sequence;
pub mod staircase;

pub use item::Item;
pub use nodeseq::NodeTable;
pub use sequence::LlSeq;
pub use staircase::{KindTest, NameCache, NodeTest, TreeAxis};
