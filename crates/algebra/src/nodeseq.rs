//! Loop-lifted node sequences.
//!
//! Path steps consume and produce *node* sequences that are duplicate-free
//! and in document order per iteration (XPath step semantics, which the
//! paper requires the StandOff steps to share — §3.2 Alternative 4). The
//! [`NodeTable`] specializes [`crate::LlSeq`] for that case: two parallel
//! columns `iter|node`, grouped by `iter`, with a normalization pass that
//! sorts by document order and deduplicates within each group.

use standoff_xml::{NodeRef, Store};

use crate::item::Item;
use crate::sequence::LlSeq;

/// A loop-lifted node sequence (`iter|node` columns, `pos` implicit).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeTable {
    iters: Vec<u32>,
    nodes: Vec<NodeRef>,
}

impl NodeTable {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        NodeTable {
            iters: Vec::with_capacity(n),
            nodes: Vec::with_capacity(n),
        }
    }

    /// Single iteration 0 holding `nodes` (entry point of a query).
    pub fn for_single_iter(nodes: Vec<NodeRef>) -> Self {
        NodeTable {
            iters: vec![0; nodes.len()],
            nodes,
        }
    }

    pub fn from_columns(iters: Vec<u32>, nodes: Vec<NodeRef>) -> Self {
        assert_eq!(iters.len(), nodes.len());
        debug_assert!(iters.windows(2).all(|w| w[0] <= w[1]), "iters not grouped");
        NodeTable { iters, nodes }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    #[inline]
    pub fn iters(&self) -> &[u32] {
        &self.iters
    }

    #[inline]
    pub fn nodes(&self) -> &[NodeRef] {
        &self.nodes
    }

    /// Push one row; `iter` must be non-decreasing.
    #[inline]
    pub fn push(&mut self, iter: u32, node: NodeRef) {
        debug_assert!(self.iters.last().is_none_or(|&last| last <= iter));
        self.iters.push(iter);
        self.nodes.push(node);
    }

    /// Iterate `(iter, nodes)` groups.
    pub fn groups(&self) -> NodeGroups<'_> {
        NodeGroups { t: self, pos: 0 }
    }

    /// Node slice of one iteration.
    pub fn group(&self, iter: u32) -> &[NodeRef] {
        let start = self.iters.partition_point(|&i| i < iter);
        let end = self.iters.partition_point(|&i| i <= iter);
        &self.nodes[start..end]
    }

    /// Sort each iteration group into document order and remove duplicate
    /// nodes within the group. This is the `/.`-style normalization the
    /// paper's Figure 2 applies ("a final self-axis step `/.` ensures
    /// unique results in document order").
    pub fn normalize(&mut self, store: &Store) {
        let n = self.len();
        if n < 2 {
            return;
        }
        // Already normalized? One ordered scan to check (the common case
        // for staircase-join output, which emits in order).
        let mut sorted = true;
        for k in 1..n {
            if self.iters[k] == self.iters[k - 1] {
                let a = store.order_key(self.nodes[k - 1]);
                let b = store.order_key(self.nodes[k]);
                if a >= b {
                    sorted = false;
                    break;
                }
            }
        }
        if sorted {
            return;
        }
        // Sort an index permutation per (iter, order-key), then rebuild.
        let mut idx: Vec<u32> = (0..n as u32).collect();
        idx.sort_by_key(|&k| {
            let ku = k as usize;
            (self.iters[ku], store.order_key(self.nodes[ku]))
        });
        let mut iters = Vec::with_capacity(n);
        let mut nodes = Vec::with_capacity(n);
        for &k in &idx {
            let ku = k as usize;
            let (it, nd) = (self.iters[ku], self.nodes[ku]);
            if iters.last() == Some(&it) && nodes.last() == Some(&nd) {
                continue; // duplicate within iteration
            }
            iters.push(it);
            nodes.push(nd);
        }
        self.iters = iters;
        self.nodes = nodes;
    }

    /// Convert into the generic item table.
    pub fn into_llseq(self) -> LlSeq {
        LlSeq::from_columns(self.iters, self.nodes.into_iter().map(Item::Node).collect())
    }

    /// Extract a node table from a generic table; returns `Err` with the
    /// offending item description if a non-node item is present.
    pub fn from_llseq(seq: &LlSeq) -> Result<NodeTable, String> {
        let mut out = NodeTable::with_capacity(seq.len());
        for (&iter, item) in seq.iters().iter().zip(seq.items()) {
            match item {
                Item::Node(n) => out.push(iter, *n),
                other => return Err(format!("expected node sequence, found {other}")),
            }
        }
        Ok(out)
    }

    /// Keep rows whose predicate holds.
    pub fn filter(&self, mut pred: impl FnMut(u32, NodeRef) -> bool) -> NodeTable {
        let mut out = NodeTable::with_capacity(self.len());
        for (&iter, &node) in self.iters.iter().zip(&self.nodes) {
            if pred(iter, node) {
                out.push(iter, node);
            }
        }
        out
    }
}

/// Iterator over `(iter, node-slice)` groups of a [`NodeTable`].
pub struct NodeGroups<'a> {
    t: &'a NodeTable,
    pos: usize,
}

impl<'a> Iterator for NodeGroups<'a> {
    type Item = (u32, &'a [NodeRef]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.t.iters.len() {
            return None;
        }
        let iter = self.t.iters[self.pos];
        let start = self.pos;
        while self.pos < self.t.iters.len() && self.t.iters[self.pos] == iter {
            self.pos += 1;
        }
        Some((iter, &self.t.nodes[start..self.pos]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use standoff_xml::Store;

    fn store() -> (Store, standoff_xml::DocId) {
        let mut s = Store::new();
        let d = s.load("d", "<a><b/><c/><d/></a>").unwrap();
        (s, d)
    }

    #[test]
    fn normalize_sorts_and_dedups_within_iterations() {
        let (s, d) = store();
        let n = |pre| NodeRef::tree(d, pre);
        let mut t =
            NodeTable::from_columns(vec![0, 0, 0, 1, 1], vec![n(3), n(2), n(3), n(4), n(4)]);
        t.normalize(&s);
        assert_eq!(t.group(0), &[n(2), n(3)]);
        assert_eq!(t.group(1), &[n(4)]);
    }

    #[test]
    fn normalize_keeps_duplicates_across_iterations() {
        let (s, d) = store();
        let n = |pre| NodeRef::tree(d, pre);
        let mut t = NodeTable::from_columns(vec![0, 1], vec![n(2), n(2)]);
        t.normalize(&s);
        assert_eq!(t.len(), 2, "same node may appear in different iterations");
    }

    #[test]
    fn normalize_fast_path_for_sorted_input() {
        let (s, d) = store();
        let n = |pre| NodeRef::tree(d, pre);
        let mut t = NodeTable::from_columns(vec![0, 0], vec![n(2), n(3)]);
        let before = t.clone();
        t.normalize(&s);
        assert_eq!(t, before);
    }

    #[test]
    fn llseq_round_trip() {
        let (_, d) = store();
        let n = |pre| NodeRef::tree(d, pre);
        let t = NodeTable::from_columns(vec![0, 2], vec![n(1), n(2)]);
        let seq = t.clone().into_llseq();
        let back = NodeTable::from_llseq(&seq).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn from_llseq_rejects_atoms() {
        let seq = LlSeq::for_iter(0, vec![Item::Integer(1)]);
        assert!(NodeTable::from_llseq(&seq).is_err());
    }
}
