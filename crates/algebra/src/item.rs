//! The XQuery item model.
//!
//! The engine manipulates sequences of *items*: nodes or atomic values.
//! Atomic typing is deliberately lightweight — annotation workloads use
//! untyped documents, so node atomization yields untyped values that the
//! comparison rules coerce per XPath general-comparison conventions.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use standoff_xml::{NodeRef, Store};

/// One XQuery item.
#[derive(Clone, Debug)]
pub enum Item {
    /// A node reference into the engine's document store.
    Node(NodeRef),
    /// `xs:integer` — also the paper's default region position type.
    Integer(i64),
    /// `xs:double` (covers decimals; the engine does not track the
    /// distinction, which the workloads never observe).
    Double(f64),
    /// `xs:string`; reference-counted so sequence copies stay cheap
    /// (atomically, so results can cross executor worker threads).
    String(Arc<str>),
    /// `xs:boolean`.
    Boolean(bool),
    /// Untyped atomic (the result of atomizing a node).
    Untyped(Arc<str>),
}

impl Item {
    pub fn str(s: impl AsRef<str>) -> Item {
        Item::String(Arc::from(s.as_ref()))
    }

    pub fn untyped(s: impl AsRef<str>) -> Item {
        Item::Untyped(Arc::from(s.as_ref()))
    }

    /// Is this a node item?
    #[inline]
    pub fn is_node(&self) -> bool {
        matches!(self, Item::Node(_))
    }

    #[inline]
    pub fn as_node(&self) -> Option<NodeRef> {
        match self {
            Item::Node(n) => Some(*n),
            _ => None,
        }
    }

    /// Atomize: nodes become untyped atomics carrying their string value;
    /// atomic values pass through.
    pub fn atomize(&self, store: &Store) -> Item {
        match self {
            Item::Node(n) => Item::Untyped(Arc::from(store.string_value(*n).as_str())),
            other => other.clone(),
        }
    }

    /// String value per `fn:string`.
    pub fn string_value(&self, store: &Store) -> String {
        match self {
            Item::Node(n) => store.string_value(*n),
            Item::Integer(i) => i.to_string(),
            Item::Double(d) => format_double(*d),
            Item::String(s) | Item::Untyped(s) => s.to_string(),
            Item::Boolean(b) => b.to_string(),
        }
    }

    /// Numeric value if this item is a number or a string/untyped that
    /// parses as one.
    pub fn as_number(&self, store: &Store) -> Option<f64> {
        match self {
            Item::Integer(i) => Some(*i as f64),
            Item::Double(d) => Some(*d),
            Item::String(s) | Item::Untyped(s) => s.trim().parse().ok(),
            Item::Boolean(b) => Some(if *b { 1.0 } else { 0.0 }),
            Item::Node(_) => self.atomize(store).as_number(store),
        }
    }

    /// Effective boolean value of a *single* item (sequence-level EBV is in
    /// [`crate::LlSeq::effective_boolean`]).
    pub fn effective_boolean(&self) -> bool {
        match self {
            Item::Node(_) => true,
            Item::Boolean(b) => *b,
            Item::Integer(i) => *i != 0,
            Item::Double(d) => *d != 0.0 && !d.is_nan(),
            Item::String(s) | Item::Untyped(s) => !s.is_empty(),
        }
    }

    /// XPath *general comparison* between two atomized items, with the
    /// untyped coercion rules: untyped vs numeric compares numerically;
    /// untyped vs untyped compares numerically when **both** parse as
    /// numbers (the XPath 1.0 heritage that annotation queries like the
    /// paper's Figure 2 UDF — `@end <= @end` on integer positions — rely
    /// on), as strings otherwise.
    pub fn general_compare(&self, other: &Item, store: &Store) -> Option<Ordering> {
        let a = self.atomize(store);
        let b = other.atomize(store);
        use Item::*;
        match (&a, &b) {
            (Integer(x), Integer(y)) => Some(x.cmp(y)),
            (Boolean(x), Boolean(y)) => Some(x.cmp(y)),
            (Untyped(x), Untyped(y)) => {
                match (x.trim().parse::<f64>().ok(), y.trim().parse::<f64>().ok()) {
                    (Some(nx), Some(ny)) => nx.partial_cmp(&ny),
                    _ => Some(x.as_ref().cmp(y.as_ref())),
                }
            }
            (String(x), String(y)) | (String(x), Untyped(y)) | (Untyped(x), String(y)) => {
                Some(x.as_ref().cmp(y.as_ref()))
            }
            // Numeric if either side is numeric.
            (Integer(_) | Double(_), _) | (_, Integer(_) | Double(_)) => {
                let x = a.as_number(store)?;
                let y = b.as_number(store)?;
                x.partial_cmp(&y)
            }
            (Boolean(_), _) | (_, Boolean(_)) => {
                Some(a.effective_boolean().cmp(&b.effective_boolean()))
            }
            (Node(_), _) | (_, Node(_)) => unreachable!("atomize removed nodes"),
        }
    }
}

/// Format a double the way XQuery serializes it (integers print without a
/// decimal point).
pub fn format_double(d: f64) -> String {
    if d.fract() == 0.0 && d.abs() < 1e15 {
        format!("{}", d as i64)
    } else {
        format!("{d}")
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Item::Node(n) => write!(f, "node({:?}/{:?})", n.doc, n.id),
            Item::Integer(i) => write!(f, "{i}"),
            Item::Double(d) => write!(f, "{}", format_double(*d)),
            Item::String(s) | Item::Untyped(s) => write!(f, "{s}"),
            Item::Boolean(b) => write!(f, "{b}"),
        }
    }
}

impl PartialEq for Item {
    /// Structural equality (used by tests and dedup of atomic values) —
    /// *not* XQuery `eq`; use [`Item::general_compare`] for that.
    fn eq(&self, other: &Self) -> bool {
        use Item::*;
        match (self, other) {
            (Node(a), Node(b)) => a == b,
            (Integer(a), Integer(b)) => a == b,
            (Double(a), Double(b)) => a == b,
            (String(a), String(b)) | (Untyped(a), Untyped(b)) => a == b,
            (Boolean(a), Boolean(b)) => a == b,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_store() -> Store {
        Store::new()
    }

    #[test]
    fn effective_boolean_values() {
        assert!(!Item::Integer(0).effective_boolean());
        assert!(Item::Integer(-3).effective_boolean());
        assert!(!Item::Double(f64::NAN).effective_boolean());
        assert!(!Item::str("").effective_boolean());
        assert!(Item::str("false").effective_boolean()); // non-empty string!
        assert!(!Item::Boolean(false).effective_boolean());
    }

    #[test]
    fn general_compare_numeric_coercion() {
        let s = empty_store();
        // untyped "10" vs integer 9 compares numerically, not lexically
        assert_eq!(
            Item::untyped("10").general_compare(&Item::Integer(9), &s),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Item::untyped("10").general_compare(&Item::untyped("9"), &s),
            Some(Ordering::Greater) // both numeric-looking: numeric compare
        );
        assert_eq!(
            Item::untyped("abc").general_compare(&Item::untyped("abd"), &s),
            Some(Ordering::Less) // non-numeric untyped pair: string compare
        );
    }

    #[test]
    fn general_compare_strings() {
        let s = empty_store();
        assert_eq!(
            Item::str("abc").general_compare(&Item::untyped("abc"), &s),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn non_numeric_untyped_vs_number_is_incomparable() {
        let s = empty_store();
        assert_eq!(
            Item::untyped("hello").general_compare(&Item::Integer(1), &s),
            None
        );
    }

    #[test]
    fn node_atomization_uses_string_value() {
        let mut store = Store::new();
        store.load("d", "<a>42</a>").unwrap();
        let node = Item::Node(NodeRef::tree(store.by_uri("d").unwrap(), 1));
        assert_eq!(node.as_number(&store), Some(42.0));
        assert_eq!(
            node.general_compare(&Item::Integer(42), &store),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn double_formatting() {
        assert_eq!(format_double(3.0), "3");
        assert_eq!(format_double(3.5), "3.5");
        assert_eq!(Item::Double(12.0).string_value(&empty_store()), "12");
    }
}
