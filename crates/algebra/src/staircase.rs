//! Staircase Join: loop-lifted evaluation of the XPath tree axes.
//!
//! Grust, van Keulen and Teubner ("Staircase Join: Teach a Relational DBMS
//! to Watch its (Axis) Steps", VLDB 2003) evaluate XPath axes on the
//! pre/size document encoding with three ideas: *pruning* (drop context
//! nodes whose result is covered by another context node), *partitioning*
//! (each document region is scanned once), and *skipping* (jump over
//! subtrees that cannot contain results). Boncz et al. (SIGMOD 2006) showed
//! the loop-lifted variant computes an axis step for *many* context
//! sequences (one per for-loop iteration) in a single pass.
//!
//! This module implements the loop-lifted step for all tree axes. For the
//! recursive axes the classic staircase optimizations apply directly on
//! pre/size:
//!
//! * `descendant`: prune contexts contained in an earlier context of the
//!   same iteration, then emit each pruned context's `pre+1 ..= pre+size`
//!   range — results stream out in document order, no sort needed;
//! * `following`: the union over a context sequence collapses to a single
//!   range `(min(pre+size), end]`;
//! * `preceding`: collapses to `{v : v.pre + v.size < max(pre)}`.
//!
//! The paper's StandOff MergeJoin (in `standoff-core`) is the analogue of
//! this join for *overlapping* region annotations, where these tree
//! shortcuts no longer hold.

use standoff_xml::{DocId, Document, NameId, NodeId, NodeKind, NodeRef, Store};

use crate::nodeseq::NodeTable;

/// The XPath tree axes (the four StandOff axes live in `standoff-core`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TreeAxis {
    Child,
    Descendant,
    DescendantOrSelf,
    SelfAxis,
    Parent,
    Ancestor,
    AncestorOrSelf,
    FollowingSibling,
    PrecedingSibling,
    Following,
    Preceding,
    Attribute,
}

impl TreeAxis {
    pub fn as_str(self) -> &'static str {
        match self {
            TreeAxis::Child => "child",
            TreeAxis::Descendant => "descendant",
            TreeAxis::DescendantOrSelf => "descendant-or-self",
            TreeAxis::SelfAxis => "self",
            TreeAxis::Parent => "parent",
            TreeAxis::Ancestor => "ancestor",
            TreeAxis::AncestorOrSelf => "ancestor-or-self",
            TreeAxis::FollowingSibling => "following-sibling",
            TreeAxis::PrecedingSibling => "preceding-sibling",
            TreeAxis::Following => "following",
            TreeAxis::Preceding => "preceding",
            TreeAxis::Attribute => "attribute",
        }
    }
}

/// Node kind test of a step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KindTest {
    /// `node()`
    AnyKind,
    /// name test or `element()` / `*`
    Element,
    /// `text()`
    Text,
    /// `comment()`
    Comment,
    /// `processing-instruction()`
    Pi,
    /// `document-node()`
    Document,
}

/// A node test: kind plus optional name (element name, attribute name, or
/// PI target depending on the axis).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NodeTest {
    pub kind: KindTest,
    pub name: Option<String>,
}

impl NodeTest {
    /// `*` (any element).
    pub fn any_element() -> Self {
        NodeTest {
            kind: KindTest::Element,
            name: None,
        }
    }

    /// `node()`.
    pub fn any_node() -> Self {
        NodeTest {
            kind: KindTest::AnyKind,
            name: None,
        }
    }

    /// Element name test.
    pub fn named(name: impl Into<String>) -> Self {
        NodeTest {
            kind: KindTest::Element,
            name: Some(name.into()),
        }
    }
}

/// The test as written in a path step: the name when one is given, `*`
/// for any element, `kind()` otherwise. Shared by plan explain output
/// and diagnostics so every layer prints tests the same way.
impl std::fmt::Display for NodeTest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.name, self.kind) {
            (Some(n), _) => f.write_str(n),
            (None, KindTest::Element) => f.write_str("*"),
            (None, k) => write!(f, "{}()", format!("{k:?}").to_lowercase()),
        }
    }
}

/// Name test resolved against one document's name table. `NoMatch` means
/// the name does not occur in the document, so the test can never match —
/// the step short-circuits to an empty result for that fragment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ResolvedName {
    Any,
    Id(NameId),
    NoMatch,
}

fn resolve_name(doc: &Document, test: &NodeTest) -> ResolvedName {
    match &test.name {
        None => ResolvedName::Any,
        Some(n) => match doc.names().get(n) {
            Some(id) => ResolvedName::Id(id),
            None => ResolvedName::NoMatch,
        },
    }
}

/// Memo of name-test resolutions, keyed by `(test address, document)`.
///
/// A name test is an `Option<String>` that must be looked up in each
/// fragment's name table every time its step runs; for plans that
/// re-execute the same step — recursive user-defined functions, repeated
/// call sites — the resolution is pure repetition. The cache keys on the
/// *address* of the `NodeTest`, so it is sound only under the contract
/// the plan evaluator provides: every cached test outlives the cache
/// (tests live in the `Arc`'d plan, the cache dies with the per-query
/// evaluator), making addresses unique for the cache's lifetime. Do not
/// feed it stack-temporary tests.
#[derive(Debug, Default)]
pub struct NameCache {
    map: std::collections::HashMap<(usize, u32), ResolvedName>,
}

impl NameCache {
    pub fn new() -> NameCache {
        NameCache::default()
    }

    fn resolve(&mut self, doc: &Document, doc_id: DocId, test: &NodeTest) -> ResolvedName {
        if test.name.is_none() {
            return ResolvedName::Any; // nothing to look up or memoize
        }
        *self
            .map
            .entry((test as *const NodeTest as usize, doc_id.0))
            .or_insert_with(|| resolve_name(doc, test))
    }
}

/// Does the tree node at `pre` match the test?
#[inline]
fn matches_tree(doc: &Document, pre: u32, test: &NodeTest, name: ResolvedName) -> bool {
    let kind = doc.kind(pre);
    let kind_ok = match test.kind {
        KindTest::AnyKind => true,
        KindTest::Element => kind == NodeKind::Element,
        KindTest::Text => kind == NodeKind::Text,
        KindTest::Comment => kind == NodeKind::Comment,
        KindTest::Pi => kind == NodeKind::Pi,
        KindTest::Document => kind == NodeKind::Document,
    };
    if !kind_ok {
        return false;
    }
    match name {
        ResolvedName::Any => true,
        ResolvedName::NoMatch => false,
        // A name test only matches named kinds (elements / PI targets).
        ResolvedName::Id(id) => {
            matches!(kind, NodeKind::Element | NodeKind::Pi) && doc.name_id(pre) == id
        }
    }
}

/// Evaluate a loop-lifted tree-axis step: for every iteration in `ctx`,
/// compute the axis result of its context node sequence. The result is
/// duplicate-free and in document order per iteration.
pub fn ll_step(store: &Store, ctx: &NodeTable, axis: TreeAxis, test: &NodeTest) -> NodeTable {
    ll_step_impl(store, ctx, axis, test, None)
}

/// [`ll_step`] with a [`NameCache`] memoizing per-document name-test
/// resolution across step executions. See the cache's soundness
/// contract: `test` must outlive `cache`.
pub fn ll_step_cached(
    store: &Store,
    ctx: &NodeTable,
    axis: TreeAxis,
    test: &NodeTest,
    cache: &mut NameCache,
) -> NodeTable {
    ll_step_impl(store, ctx, axis, test, Some(cache))
}

fn ll_step_impl(
    store: &Store,
    ctx: &NodeTable,
    axis: TreeAxis,
    test: &NodeTest,
    mut cache: Option<&mut NameCache>,
) -> NodeTable {
    let mut ctx = ctx.clone();
    ctx.normalize(store);
    let mut out = NodeTable::new();
    for (iter, nodes) in ctx.groups() {
        // Nodes are sorted by (doc, order); process per-document runs.
        let mut k = 0;
        while k < nodes.len() {
            let doc_id = nodes[k].doc;
            let mut j = k;
            while j < nodes.len() && nodes[j].doc == doc_id {
                j += 1;
            }
            step_fragment(
                store,
                doc_id,
                iter,
                &nodes[k..j],
                axis,
                test,
                cache.as_deref_mut(),
                &mut out,
            );
            k = j;
        }
    }
    out.normalize(store);
    out
}

/// Evaluate one axis step for the context nodes of a single iteration and
/// a single document fragment (`nodes` sorted in document order).
#[allow(clippy::too_many_arguments)]
fn step_fragment(
    store: &Store,
    doc_id: DocId,
    iter: u32,
    nodes: &[NodeRef],
    axis: TreeAxis,
    test: &NodeTest,
    cache: Option<&mut NameCache>,
    out: &mut NodeTable,
) {
    let doc = store.doc(doc_id);
    let name = match cache {
        Some(c) => c.resolve(doc, doc_id, test),
        None => resolve_name(doc, test),
    };
    if name == ResolvedName::NoMatch && axis != TreeAxis::Attribute {
        return;
    }
    let push_tree = |out: &mut NodeTable, pre: u32| {
        out.push(iter, NodeRef::tree(doc_id, pre));
    };

    match axis {
        TreeAxis::SelfAxis => {
            for n in nodes {
                match n.id.pre() {
                    Some(pre) => {
                        if matches_tree(doc, pre, test, name) {
                            push_tree(out, pre);
                        }
                    }
                    None => {
                        // Attribute self: only node() matches (attributes
                        // are not the principal node kind of tree axes).
                        if test.kind == KindTest::AnyKind && test.name.is_none() {
                            out.push(iter, *n);
                        }
                    }
                }
            }
        }
        TreeAxis::Child => {
            for n in nodes {
                if let Some(pre) = n.id.pre() {
                    for c in doc.children(pre) {
                        if matches_tree(doc, c, test, name) {
                            push_tree(out, c);
                        }
                    }
                }
            }
        }
        TreeAxis::Descendant | TreeAxis::DescendantOrSelf => {
            // Staircase pruning: skip contexts covered by a previous
            // context of the same iteration, then emit ranges — the output
            // streams in document order.
            let or_self = axis == TreeAxis::DescendantOrSelf;
            let mut covered_end: Option<u32> = None;
            for n in nodes {
                let Some(pre) = n.id.pre() else {
                    // Attribute context: descendant-or-self::node() is the
                    // attribute itself.
                    if or_self && test.kind == KindTest::AnyKind && test.name.is_none() {
                        out.push(iter, *n);
                    }
                    continue;
                };
                if let Some(end) = covered_end {
                    if pre <= end {
                        continue; // pruned: contained in earlier context
                    }
                }
                let end = pre + doc.size(pre);
                covered_end = Some(end);
                let start = if or_self { pre } else { pre + 1 };
                for v in start..=end {
                    if matches_tree(doc, v, test, name) {
                        push_tree(out, v);
                    }
                }
            }
        }
        TreeAxis::Parent => {
            for n in nodes {
                let parent = match n.id.attr_index() {
                    Some(a) => Some(doc.attr_owner(a)),
                    None => {
                        let pre = n.id.pre().unwrap();
                        if pre == 0 {
                            None
                        } else {
                            Some(doc.parent(pre))
                        }
                    }
                };
                if let Some(p) = parent {
                    if matches_tree(doc, p, test, name) {
                        push_tree(out, p);
                    }
                }
            }
        }
        TreeAxis::Ancestor | TreeAxis::AncestorOrSelf => {
            let or_self = axis == TreeAxis::AncestorOrSelf;
            // Climbing stops at a pre we have already emitted for this
            // (iteration, fragment): its ancestors were emitted too.
            let mut seen = std::collections::HashSet::new();
            for n in nodes {
                let mut cur = match n.id.attr_index() {
                    Some(a) => {
                        if or_self && test.kind == KindTest::AnyKind && test.name.is_none() {
                            out.push(iter, *n);
                        }
                        Some(doc.attr_owner(a))
                    }
                    None => {
                        let pre = n.id.pre().unwrap();
                        if or_self {
                            Some(pre)
                        } else if pre == 0 {
                            None
                        } else {
                            Some(doc.parent(pre))
                        }
                    }
                };
                while let Some(pre) = cur {
                    if !seen.insert(pre) {
                        break;
                    }
                    if matches_tree(doc, pre, test, name) {
                        push_tree(out, pre);
                    }
                    cur = if pre == 0 {
                        None
                    } else {
                        Some(doc.parent(pre))
                    };
                }
            }
        }
        TreeAxis::FollowingSibling => {
            for n in nodes {
                if let Some(pre) = n.id.pre() {
                    let mut cur = doc.next_sibling(pre);
                    while let Some(s) = cur {
                        if matches_tree(doc, s, test, name) {
                            push_tree(out, s);
                        }
                        cur = doc.next_sibling(s);
                    }
                }
            }
        }
        TreeAxis::PrecedingSibling => {
            for n in nodes {
                if let Some(pre) = n.id.pre() {
                    if pre == 0 {
                        continue;
                    }
                    for s in doc.children(doc.parent(pre)) {
                        if s >= pre {
                            break;
                        }
                        if matches_tree(doc, s, test, name) {
                            push_tree(out, s);
                        }
                    }
                }
            }
        }
        TreeAxis::Following => {
            // Union over the context collapses to one range starting after
            // the earliest subtree end (staircase partitioning).
            let start = nodes
                .iter()
                .map(|n| match n.id.attr_index() {
                    Some(a) => doc.attr_owner(a) + 1,
                    None => {
                        let pre = n.id.pre().unwrap();
                        pre + doc.size(pre) + 1
                    }
                })
                .min();
            if let Some(start) = start {
                let end = doc.node_count() as u32 - 1;
                for v in start..=end {
                    if matches_tree(doc, v, test, name) {
                        push_tree(out, v);
                    }
                }
            }
        }
        TreeAxis::Preceding => {
            // Union collapses to {v : v.pre + v.size < max(ctx pre)}.
            let cmax = nodes
                .iter()
                .map(|n| match n.id.attr_index() {
                    Some(a) => doc.attr_owner(a),
                    None => n.id.pre().unwrap(),
                })
                .max();
            if let Some(cmax) = cmax {
                for v in 1..cmax {
                    if v + doc.size(v) < cmax && matches_tree(doc, v, test, name) {
                        push_tree(out, v);
                    }
                }
            }
        }
        TreeAxis::Attribute => {
            // The principal node kind of this axis is attribute: the name
            // test applies to attribute names.
            let attr_name = match &test.name {
                None => ResolvedName::Any,
                Some(n) => match doc.names().get(n) {
                    Some(id) => ResolvedName::Id(id),
                    None => ResolvedName::NoMatch,
                },
            };
            if attr_name == ResolvedName::NoMatch {
                return;
            }
            for n in nodes {
                if let Some(pre) = n.id.pre() {
                    for a in doc.attr_range(pre) {
                        let ok = match attr_name {
                            ResolvedName::Any => true,
                            ResolvedName::Id(id) => doc.attr_name_id(a) == id,
                            ResolvedName::NoMatch => false,
                        };
                        if ok {
                            out.push(iter, NodeRef::new(doc_id, NodeId::attr(a)));
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use standoff_xml::Store;

    /// `<a><b><c/><d>t</d></b><e/><b><f/></b></a>`
    /// pre: 0=doc 1=a 2=b 3=c 4=d 5=t 6=e 7=b 8=f
    fn fixture() -> (Store, DocId) {
        let mut s = Store::new();
        let d = s
            .load("d", "<a><b><c/><d>t</d></b><e/><b><f/></b></a>")
            .unwrap();
        (s, d)
    }

    fn ctx(d: DocId, pres: &[u32]) -> NodeTable {
        NodeTable::for_single_iter(pres.iter().map(|&p| NodeRef::tree(d, p)).collect())
    }

    fn pres(t: &NodeTable) -> Vec<u32> {
        t.nodes().iter().map(|n| n.id.pre().unwrap()).collect()
    }

    #[test]
    fn descendant_with_pruning() {
        let (s, d) = fixture();
        // Context {a, b#2}: b#2 is inside a, so it is pruned; single scan.
        let out = ll_step(
            &s,
            &ctx(d, &[1, 2]),
            TreeAxis::Descendant,
            &NodeTest::any_node(),
        );
        assert_eq!(pres(&out), vec![2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn descendant_name_test() {
        let (s, d) = fixture();
        let out = ll_step(
            &s,
            &ctx(d, &[1]),
            TreeAxis::Descendant,
            &NodeTest::named("b"),
        );
        assert_eq!(pres(&out), vec![2, 7]);
    }

    #[test]
    fn descendant_or_self() {
        let (s, d) = fixture();
        let out = ll_step(
            &s,
            &ctx(d, &[2]),
            TreeAxis::DescendantOrSelf,
            &NodeTest::any_element(),
        );
        assert_eq!(pres(&out), vec![2, 3, 4]);
    }

    #[test]
    fn child_results_sorted_across_contexts() {
        let (s, d) = fixture();
        // Contexts out of document order; results must come back sorted.
        let out = ll_step(
            &s,
            &ctx(d, &[7, 2]),
            TreeAxis::Child,
            &NodeTest::any_element(),
        );
        assert_eq!(pres(&out), vec![3, 4, 8]);
    }

    #[test]
    fn parent_and_ancestor() {
        let (s, d) = fixture();
        let out = ll_step(
            &s,
            &ctx(d, &[3, 4]),
            TreeAxis::Parent,
            &NodeTest::any_element(),
        );
        assert_eq!(pres(&out), vec![2], "shared parent deduplicated");

        let out = ll_step(&s, &ctx(d, &[5]), TreeAxis::Ancestor, &NodeTest::any_node());
        assert_eq!(pres(&out), vec![0, 1, 2, 4]);

        let out = ll_step(
            &s,
            &ctx(d, &[5, 8]),
            TreeAxis::Ancestor,
            &NodeTest::named("b"),
        );
        assert_eq!(pres(&out), vec![2, 7]);
    }

    #[test]
    fn ancestor_or_self_includes_self() {
        let (s, d) = fixture();
        let out = ll_step(
            &s,
            &ctx(d, &[3]),
            TreeAxis::AncestorOrSelf,
            &NodeTest::any_element(),
        );
        assert_eq!(pres(&out), vec![1, 2, 3]);
    }

    #[test]
    fn sibling_axes() {
        let (s, d) = fixture();
        let out = ll_step(
            &s,
            &ctx(d, &[2]),
            TreeAxis::FollowingSibling,
            &NodeTest::any_node(),
        );
        assert_eq!(pres(&out), vec![6, 7]);
        let out = ll_step(
            &s,
            &ctx(d, &[7]),
            TreeAxis::PrecedingSibling,
            &NodeTest::any_node(),
        );
        assert_eq!(pres(&out), vec![2, 6]);
    }

    #[test]
    fn following_collapses_to_one_range() {
        let (s, d) = fixture();
        let out = ll_step(
            &s,
            &ctx(d, &[2, 7]),
            TreeAxis::Following,
            &NodeTest::any_node(),
        );
        // following(b#1) = {e, b#2, f}; following(b#2) = {} — union from
        // the earliest subtree end.
        assert_eq!(pres(&out), vec![6, 7, 8]);
    }

    #[test]
    fn preceding_excludes_ancestors() {
        let (s, d) = fixture();
        let out = ll_step(
            &s,
            &ctx(d, &[8]),
            TreeAxis::Preceding,
            &NodeTest::any_node(),
        );
        // Everything before f except its ancestors a, b#2 (and doc).
        assert_eq!(pres(&out), vec![2, 3, 4, 5, 6]);
    }

    #[test]
    fn attribute_axis() {
        let mut s = Store::new();
        let d = s.load("d", r#"<a x="1" y="2"><b x="3"/></a>"#).unwrap();
        let out = ll_step(
            &s,
            &ctx(d, &[1]),
            TreeAxis::Attribute,
            &NodeTest::any_node(),
        );
        assert_eq!(out.len(), 2);
        let out = ll_step(
            &s,
            &ctx(d, &[1, 2]),
            TreeAxis::Attribute,
            &NodeTest::named("x"),
        );
        assert_eq!(out.len(), 2);
        assert!(out.nodes().iter().all(|n| n.id.is_attr()));
    }

    #[test]
    fn attribute_parent_is_owner() {
        let mut s = Store::new();
        let d = s.load("d", r#"<a><b x="1"/></a>"#).unwrap();
        let attrs = ll_step(
            &s,
            &ctx(d, &[2]),
            TreeAxis::Attribute,
            &NodeTest::any_node(),
        );
        let parents = ll_step(&s, &attrs, TreeAxis::Parent, &NodeTest::any_element());
        assert_eq!(pres(&parents), vec![2]);
    }

    #[test]
    fn unknown_name_short_circuits() {
        let (s, d) = fixture();
        let out = ll_step(
            &s,
            &ctx(d, &[1]),
            TreeAxis::Descendant,
            &NodeTest::named("zzz"),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn loop_lifted_iterations_stay_separate() {
        let (s, d) = fixture();
        let t = NodeTable::from_columns(vec![0, 1], vec![NodeRef::tree(d, 2), NodeRef::tree(d, 7)]);
        let out = ll_step(&s, &t, TreeAxis::Descendant, &NodeTest::any_element());
        assert_eq!(
            out.group(0)
                .iter()
                .map(|n| n.id.pre().unwrap())
                .collect::<Vec<_>>(),
            vec![3, 4]
        );
        assert_eq!(
            out.group(1)
                .iter()
                .map(|n| n.id.pre().unwrap())
                .collect::<Vec<_>>(),
            vec![8]
        );
    }

    #[test]
    fn text_kind_test() {
        let (s, d) = fixture();
        let out = ll_step(
            &s,
            &ctx(d, &[1]),
            TreeAxis::Descendant,
            &NodeTest {
                kind: KindTest::Text,
                name: None,
            },
        );
        assert_eq!(pres(&out), vec![5]);
    }
}
