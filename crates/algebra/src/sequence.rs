//! Loop-lifted item sequences (`iter|pos|item` tables).
//!
//! An [`LlSeq`] represents the result of an expression for *every*
//! iteration of its scope at once: row `k` belongs to iteration
//! `iters[k]` and carries `items[k]`; the `pos` column of the paper is
//! implicit in row order. Rows are grouped by ascending `iter`.
//!
//! Example from paper §4.1 — in the scope of
//! `for $x in ("twenty","thirty") for $y in ("one","two")`, the variable
//! `$z := ($x,$y)` is the single table
//! `iter|pos|item = 1|1|twenty, 1|2|one, 2|1|twenty, 2|2|two, ...`.

use standoff_xml::Store;

use crate::item::Item;

/// A loop-lifted sequence: for each iteration, an ordered item sequence.
#[derive(Clone, Debug, Default)]
pub struct LlSeq {
    iters: Vec<u32>,
    items: Vec<Item>,
}

impl LlSeq {
    /// The empty table (empty sequence in every iteration).
    pub fn empty() -> Self {
        Self::default()
    }

    /// A sequence holding `items` in the single iteration `iter`.
    pub fn for_iter(iter: u32, items: Vec<Item>) -> Self {
        LlSeq {
            iters: vec![iter; items.len()],
            items,
        }
    }

    /// Loop-lift a constant: one copy of `item` in each of `n_iters`
    /// iterations (Pathfinder's `loop × literal` product).
    pub fn lifted_const(n_iters: u32, item: Item) -> Self {
        LlSeq {
            iters: (0..n_iters).collect(),
            items: vec![item; n_iters as usize],
        }
    }

    /// Build from raw parallel columns. Debug-asserts grouping.
    pub fn from_columns(iters: Vec<u32>, items: Vec<Item>) -> Self {
        assert_eq!(iters.len(), items.len());
        debug_assert!(iters.windows(2).all(|w| w[0] <= w[1]), "iters not grouped");
        LlSeq { iters, items }
    }

    /// Number of rows (sum of sequence lengths over all iterations).
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Raw columns.
    #[inline]
    pub fn iters(&self) -> &[u32] {
        &self.iters
    }

    #[inline]
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Push one row. Caller must keep `iter` non-decreasing.
    pub fn push(&mut self, iter: u32, item: Item) {
        debug_assert!(self.iters.last().is_none_or(|&last| last <= iter));
        self.iters.push(iter);
        self.items.push(item);
    }

    /// Iterate `(iter, &[Item])` groups in ascending iteration order.
    /// Iterations with empty sequences do not appear.
    pub fn groups(&self) -> Groups<'_> {
        Groups { seq: self, pos: 0 }
    }

    /// The item slice of one iteration (empty if absent).
    pub fn group(&self, iter: u32) -> &[Item] {
        let start = self.iters.partition_point(|&i| i < iter);
        let end = self.iters.partition_point(|&i| i <= iter);
        &self.items[start..end]
    }

    /// Map every item, preserving shape.
    pub fn map_items(&self, mut f: impl FnMut(&Item) -> Item) -> LlSeq {
        LlSeq {
            iters: self.iters.clone(),
            items: self.items.iter().map(&mut f).collect(),
        }
    }

    /// Concatenate two loop-lifted sequences per iteration: the XQuery
    /// comma operator under loop-lifting. Merges group-wise, `self` first.
    pub fn concat(&self, other: &LlSeq) -> LlSeq {
        let mut out = LlSeq::empty();
        out.iters.reserve(self.len() + other.len());
        out.items.reserve(self.len() + other.len());
        let mut a = self.groups().peekable();
        let mut b = other.groups().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (None, None) => break,
                (Some(&(ia, _)), Some(&(ib, _))) if ia == ib => {
                    let (_, xs) = a.next().unwrap();
                    let (_, ys) = b.next().unwrap();
                    for x in xs {
                        out.push(ia, x.clone());
                    }
                    for y in ys {
                        out.push(ia, y.clone());
                    }
                }
                (Some(&(ia, _)), Some(&(ib, _))) if ia < ib => {
                    let (_, xs) = a.next().unwrap();
                    for x in xs {
                        out.push(ia, x.clone());
                    }
                }
                (Some(_), Some(_)) | (None, Some(_)) => {
                    let (ib, ys) = b.next().unwrap();
                    for y in ys {
                        out.push(ib, y.clone());
                    }
                }
                (Some(_), None) => {
                    let (ia, xs) = a.next().unwrap();
                    for x in xs {
                        out.push(ia, x.clone());
                    }
                }
            }
        }
        out
    }

    /// Effective boolean value per iteration, for all `n_iters` iterations
    /// of the scope (absent groups are the empty sequence → `false`).
    ///
    /// Returns a plain vector rather than an `LlSeq` because consumers
    /// (where-clauses, if-conditions) branch on it immediately.
    pub fn effective_boolean(&self, n_iters: u32) -> Vec<bool> {
        let mut out = vec![false; n_iters as usize];
        for (iter, items) in self.groups() {
            // XPath EBV: singleton atomic → its value; first item node →
            // true; longer atomic-only sequences are a type error that we
            // relax to "true" (annotation queries never hit it).
            out[iter as usize] = match items {
                [] => false,
                [single] => single.effective_boolean(),
                // Multi-item: true when it starts with a node; a longer
                // atomic-only sequence is formally a type error, relaxed
                // to true here (annotation queries never hit it).
                [_, ..] => true,
            };
        }
        out
    }

    /// `fn:count` per iteration over the whole scope.
    pub fn count_per_iter(&self, n_iters: u32) -> LlSeq {
        let mut counts = vec![0i64; n_iters as usize];
        for &iter in &self.iters {
            counts[iter as usize] += 1;
        }
        LlSeq {
            iters: (0..n_iters).collect(),
            items: counts.into_iter().map(Item::Integer).collect(),
        }
    }

    /// Keep only rows of iterations flagged `true`, renumbering iterations
    /// densely (Pathfinder's loop-relation restriction under `where`).
    /// Returns the filtered sequence and the mapping new→old iteration.
    pub fn restrict(&self, keep: &[bool]) -> (LlSeq, Vec<u32>) {
        let mut renumber = vec![u32::MAX; keep.len()];
        let mut mapping = Vec::new();
        for (old, &k) in keep.iter().enumerate() {
            if k {
                renumber[old] = mapping.len() as u32;
                mapping.push(old as u32);
            }
        }
        let mut out = LlSeq::empty();
        for (&iter, item) in self.iters.iter().zip(&self.items) {
            let new = renumber[iter as usize];
            if new != u32::MAX {
                out.push(new, item.clone());
            }
        }
        (out, mapping)
    }

    /// Re-label iterations through `mapping[new] = old`, producing a table
    /// back in the outer numbering (inverse of [`LlSeq::restrict`]).
    pub fn unrestrict(&self, mapping: &[u32]) -> LlSeq {
        let mut out = LlSeq::empty();
        for (&iter, item) in self.iters.iter().zip(&self.items) {
            out.push(mapping[iter as usize], item.clone());
        }
        out
    }

    /// Expand into a new scope: `map[new_iter] = old_iter` (monotone).
    /// Each new iteration receives a copy of its mapped old iteration's
    /// group — Pathfinder's variable lifting when entering a for-loop.
    pub fn expand(&self, map: &[u32]) -> LlSeq {
        debug_assert!(map.windows(2).all(|w| w[0] <= w[1]), "map not monotone");
        let mut out = LlSeq::empty();
        for (new_iter, &old_iter) in map.iter().enumerate() {
            for item in self.group(old_iter) {
                out.push(new_iter as u32, item.clone());
            }
        }
        out
    }

    /// Flatten to a plain item vector (callers that need the sequence of a
    /// single-iteration scope).
    pub fn into_items(self) -> Vec<Item> {
        self.items
    }

    /// String values of all items in row order.
    pub fn string_values(&self, store: &Store) -> Vec<String> {
        self.items.iter().map(|i| i.string_value(store)).collect()
    }
}

/// Iterator over `(iter, items)` groups.
pub struct Groups<'a> {
    seq: &'a LlSeq,
    pos: usize,
}

impl<'a> Iterator for Groups<'a> {
    type Item = (u32, &'a [Item]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.seq.iters.len() {
            return None;
        }
        let iter = self.seq.iters[self.pos];
        let start = self.pos;
        while self.pos < self.seq.iters.len() && self.seq.iters[self.pos] == iter {
            self.pos += 1;
        }
        Some((iter, &self.seq.items[start..self.pos]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(rows: &[(u32, i64)]) -> LlSeq {
        LlSeq::from_columns(
            rows.iter().map(|r| r.0).collect(),
            rows.iter().map(|r| Item::Integer(r.1)).collect(),
        )
    }

    #[test]
    fn groups_iterate_in_order() {
        let s = seq(&[(0, 1), (0, 2), (2, 3)]);
        let gs: Vec<(u32, usize)> = s.groups().map(|(i, xs)| (i, xs.len())).collect();
        assert_eq!(gs, vec![(0, 2), (2, 1)]);
        assert_eq!(s.group(0).len(), 2);
        assert_eq!(s.group(1).len(), 0);
        assert_eq!(s.group(2).len(), 1);
    }

    #[test]
    fn lifted_const_repeats_per_iteration() {
        let s = LlSeq::lifted_const(3, Item::Integer(7));
        assert_eq!(s.len(), 3);
        assert_eq!(s.group(2), &[Item::Integer(7)]);
    }

    #[test]
    fn concat_is_per_iteration() {
        // Paper §4.1: $z := ($x, $y) interleaves per iteration.
        let x = seq(&[(0, 20), (1, 30)]);
        let y = seq(&[(0, 1), (1, 2)]);
        let z = x.concat(&y);
        assert_eq!(z.group(0), &[Item::Integer(20), Item::Integer(1)]);
        assert_eq!(z.group(1), &[Item::Integer(30), Item::Integer(2)]);
    }

    #[test]
    fn concat_with_missing_groups() {
        let x = seq(&[(1, 10)]);
        let y = seq(&[(0, 5), (2, 6)]);
        let z = x.concat(&y);
        assert_eq!(z.group(0), &[Item::Integer(5)]);
        assert_eq!(z.group(1), &[Item::Integer(10)]);
        assert_eq!(z.group(2), &[Item::Integer(6)]);
    }

    #[test]
    fn effective_boolean_handles_absent_iterations() {
        let s = seq(&[(1, 1)]);
        assert_eq!(s.effective_boolean(3), vec![false, true, false]);
    }

    #[test]
    fn count_per_iter_includes_zero_groups() {
        let s = seq(&[(0, 1), (0, 2), (2, 3)]);
        let c = s.count_per_iter(3);
        assert_eq!(
            c.items(),
            &[Item::Integer(2), Item::Integer(0), Item::Integer(1)]
        );
    }

    #[test]
    fn restrict_renumbers_densely() {
        let s = seq(&[(0, 1), (1, 2), (2, 3)]);
        let (r, mapping) = s.restrict(&[true, false, true]);
        assert_eq!(mapping, vec![0, 2]);
        assert_eq!(r.group(0), &[Item::Integer(1)]);
        assert_eq!(r.group(1), &[Item::Integer(3)]);
        // And back:
        let u = r.unrestrict(&mapping);
        assert_eq!(u.group(0), &[Item::Integer(1)]);
        assert_eq!(u.group(2), &[Item::Integer(3)]);
    }
}
