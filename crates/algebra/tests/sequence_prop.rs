//! Algebraic laws of the loop-lifted sequence tables — the invariants the
//! evaluator's correctness rests on.

use proptest::prelude::*;

use standoff_algebra::{Item, LlSeq};

fn table_strategy(max_iter: u32) -> impl Strategy<Value = LlSeq> {
    prop::collection::vec((0..max_iter, any::<i16>()), 0..40).prop_map(|mut rows| {
        rows.sort_by_key(|r| r.0);
        LlSeq::from_columns(
            rows.iter().map(|r| r.0).collect(),
            rows.iter().map(|r| Item::Integer(r.1 as i64)).collect(),
        )
    })
}

fn as_groups(t: &LlSeq, n: u32) -> Vec<Vec<i64>> {
    (0..n)
        .map(|i| {
            t.group(i)
                .iter()
                .map(|x| match x {
                    Item::Integer(v) => *v,
                    _ => unreachable!(),
                })
                .collect()
        })
        .collect()
}

const N: u32 = 6;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// concat is associative and per-iteration (group-wise append).
    #[test]
    fn concat_laws(a in table_strategy(N), b in table_strategy(N), c in table_strategy(N)) {
        let ab_c = a.concat(&b).concat(&c);
        let a_bc = a.concat(&b.concat(&c));
        prop_assert_eq!(as_groups(&ab_c, N), as_groups(&a_bc, N));

        // Group-wise definition.
        let ab = a.concat(&b);
        for i in 0..N {
            let mut expected: Vec<i64> = as_groups(&a, N)[i as usize].clone();
            expected.extend(&as_groups(&b, N)[i as usize]);
            prop_assert_eq!(&as_groups(&ab, N)[i as usize], &expected);
        }

        // Empty is the identity.
        let e = LlSeq::empty();
        prop_assert_eq!(as_groups(&a.concat(&e), N), as_groups(&a, N));
        prop_assert_eq!(as_groups(&e.concat(&a), N), as_groups(&a, N));
    }

    /// restrict followed by unrestrict reproduces exactly the kept
    /// groups.
    #[test]
    fn restrict_unrestrict_inverse(
        t in table_strategy(N),
        keep in prop::collection::vec(any::<bool>(), N as usize..=N as usize),
    ) {
        let (restricted, mapping) = t.restrict(&keep);
        let back = restricted.unrestrict(&mapping);
        for i in 0..N {
            if keep[i as usize] {
                prop_assert_eq!(back.group(i), t.group(i));
            } else {
                prop_assert!(back.group(i).is_empty());
            }
        }
    }

    /// expand through a composed map equals expanding twice.
    #[test]
    fn expand_composes(
        t in table_strategy(N),
        m1 in prop::collection::vec(0..N, 0..10),
        m2_picks in prop::collection::vec(any::<u8>(), 0..10),
    ) {
        let mut m1 = m1;
        m1.sort_unstable();
        if m1.is_empty() {
            return Ok(());
        }
        let mut m2: Vec<u32> = m2_picks
            .iter()
            .map(|&p| p as u32 % m1.len() as u32)
            .collect();
        m2.sort_unstable();

        let step = t.expand(&m1).expand(&m2);
        let composed: Vec<u32> = m2.iter().map(|&k| m1[k as usize]).collect();
        let direct = t.expand(&composed);
        prop_assert_eq!(
            as_groups(&step, m2.len() as u32),
            as_groups(&direct, m2.len() as u32)
        );
    }

    /// count_per_iter counts group sizes, for every iteration of the
    /// scope including empty ones.
    #[test]
    fn count_matches_groups(t in table_strategy(N)) {
        let counts = t.count_per_iter(N);
        prop_assert_eq!(counts.len(), N as usize);
        for i in 0..N {
            let c = match counts.group(i) {
                [Item::Integer(c)] => *c,
                other => return Err(TestCaseError::fail(format!("bad count {other:?}"))),
            };
            prop_assert_eq!(c as usize, t.group(i).len());
        }
    }

    /// expand with the identity map is the identity (up to the scope
    /// size).
    #[test]
    fn expand_identity(t in table_strategy(N)) {
        let id: Vec<u32> = (0..N).collect();
        let e = t.expand(&id);
        prop_assert_eq!(as_groups(&e, N), as_groups(&t, N));
    }
}
