//! Property tests: Staircase Join against a brute-force axis oracle.
//!
//! Random trees, random context sets, every axis — the optimized
//! (pruning/collapsing) implementation must equal the from-definition
//! evaluation.

use proptest::prelude::*;

use standoff_algebra::staircase::{ll_step, TreeAxis};
use standoff_algebra::{NodeTable, NodeTest};
use standoff_xml::{DocId, Document, DocumentBuilder, NodeKind, NodeRef, Store};

/// Build a random tree from a parenthesis-walk: each step either opens a
/// child (with a name from a tiny alphabet) or closes the current one.
fn build_tree(walk: &[u8]) -> Document {
    let mut b = DocumentBuilder::new();
    b.start_element("root");
    let mut depth = 1;
    for &op in walk {
        match op % 4 {
            0 | 1 => {
                let name = ["a", "b", "c"][(op as usize / 4) % 3];
                b.start_element(name);
                depth += 1;
            }
            2 if depth > 1 => {
                b.end_element();
                depth -= 1;
            }
            _ => {
                b.text("t");
            }
        }
    }
    while depth > 0 {
        b.end_element();
        depth -= 1;
    }
    b.finish().unwrap()
}

/// Brute-force evaluation of an axis from its definition.
fn brute_force(doc: &Document, ctx: &[u32], axis: TreeAxis, name: Option<&str>) -> Vec<u32> {
    let n = doc.node_count() as u32;
    let mut out: Vec<u32> = Vec::new();
    for v in 0..n {
        // Name test (principal kind element) or node().
        if let Some(name) = name {
            if doc.kind(v) != NodeKind::Element || doc.names().lexical(doc.name_id(v)) != name {
                continue;
            }
        }
        let selected = ctx.iter().any(|&c| match axis {
            TreeAxis::SelfAxis => v == c,
            TreeAxis::Child => v != 0 && doc.parent(v) == c,
            TreeAxis::Parent => c != 0 && doc.parent(c) == v,
            TreeAxis::Descendant => doc.is_ancestor(c, v),
            TreeAxis::DescendantOrSelf => v == c || doc.is_ancestor(c, v),
            TreeAxis::Ancestor => doc.is_ancestor(v, c),
            TreeAxis::AncestorOrSelf => v == c || doc.is_ancestor(v, c),
            TreeAxis::FollowingSibling => {
                v != 0 && c != 0 && doc.parent(v) == doc.parent(c) && v > c
            }
            TreeAxis::PrecedingSibling => {
                v != 0 && c != 0 && doc.parent(v) == doc.parent(c) && v < c
            }
            TreeAxis::Following => v > c + doc.size(c),
            TreeAxis::Preceding => v + doc.size(v) < c,
            TreeAxis::Attribute => false,
        });
        if selected {
            out.push(v);
        }
    }
    out
}

const AXES: [TreeAxis; 11] = [
    TreeAxis::SelfAxis,
    TreeAxis::Child,
    TreeAxis::Parent,
    TreeAxis::Descendant,
    TreeAxis::DescendantOrSelf,
    TreeAxis::Ancestor,
    TreeAxis::AncestorOrSelf,
    TreeAxis::FollowingSibling,
    TreeAxis::PrecedingSibling,
    TreeAxis::Following,
    TreeAxis::Preceding,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn staircase_equals_brute_force(
        walk in prop::collection::vec(any::<u8>(), 0..120),
        ctx_picks in prop::collection::vec(any::<u16>(), 1..8),
        name_pick in 0usize..4,
    ) {
        let doc = build_tree(&walk);
        let n = doc.node_count() as u32;
        let mut store = Store::new();
        let doc_id = DocId(0);
        let ctx: Vec<u32> = {
            let mut c: Vec<u32> = ctx_picks.iter().map(|&p| p as u32 % n).collect();
            c.sort_unstable();
            c.dedup();
            c
        };
        let name = [None, Some("a"), Some("b"), Some("zzz")][name_pick];
        store.add(doc, None);
        let doc = store.doc(doc_id);

        for axis in AXES {
            let expected = brute_force(doc, &ctx, axis, name);
            let table = NodeTable::for_single_iter(
                ctx.iter().map(|&p| NodeRef::tree(doc_id, p)).collect(),
            );
            let test = match name {
                None => NodeTest::any_node(),
                Some(n) => NodeTest::named(n),
            };
            let got: Vec<u32> = ll_step(&store, &table, axis, &test)
                .nodes()
                .iter()
                .map(|r| r.id.pre().unwrap())
                .collect();
            prop_assert_eq!(
                &got, &expected,
                "axis {} with test {:?} on ctx {:?}", axis.as_str(), name, ctx
            );
        }
    }

    /// Loop-lifted evaluation must equal per-iteration evaluation glued
    /// together (the defining property of loop-lifting).
    #[test]
    fn loop_lifted_equals_per_iteration(
        walk in prop::collection::vec(any::<u8>(), 0..80),
        picks in prop::collection::vec((0u32..4, any::<u16>()), 1..12),
    ) {
        let doc = build_tree(&walk);
        let n = doc.node_count() as u32;
        let mut store = Store::new();
        let doc_id = DocId(0);
        store.add(doc, None);

        let mut rows: Vec<(u32, u32)> = picks
            .iter()
            .map(|&(iter, p)| (iter, p as u32 % n))
            .collect();
        rows.sort_unstable();
        rows.dedup();

        for axis in [TreeAxis::Descendant, TreeAxis::Ancestor, TreeAxis::Following] {
            // All iterations at once.
            let table = NodeTable::from_columns(
                rows.iter().map(|r| r.0).collect(),
                rows.iter().map(|r| NodeRef::tree(doc_id, r.1)).collect(),
            );
            let bulk = ll_step(&store, &table, axis, &NodeTest::any_node());

            // One iteration at a time.
            for iter in 0..4u32 {
                let group: Vec<NodeRef> = rows
                    .iter()
                    .filter(|r| r.0 == iter)
                    .map(|r| NodeRef::tree(doc_id, r.1))
                    .collect();
                let single = ll_step(
                    &store,
                    &NodeTable::for_single_iter(group),
                    axis,
                    &NodeTest::any_node(),
                );
                prop_assert_eq!(
                    bulk.group(iter),
                    single.group(0),
                    "axis {} iteration {}",
                    axis.as_str(),
                    iter
                );
            }
        }
    }

    /// Axis-step results are always duplicate-free and document-ordered
    /// per iteration.
    #[test]
    fn results_sorted_and_unique(
        walk in prop::collection::vec(any::<u8>(), 0..100),
        picks in prop::collection::vec((0u32..3, any::<u16>()), 1..10),
    ) {
        let doc = build_tree(&walk);
        let n = doc.node_count() as u32;
        let mut store = Store::new();
        let doc_id = DocId(0);
        store.add(doc, None);
        let mut rows: Vec<(u32, u32)> = picks
            .iter()
            .map(|&(iter, p)| (iter, p as u32 % n))
            .collect();
        rows.sort_unstable();
        rows.dedup();
        let table = NodeTable::from_columns(
            rows.iter().map(|r| r.0).collect(),
            rows.iter().map(|r| NodeRef::tree(doc_id, r.1)).collect(),
        );
        for axis in AXES {
            let out = ll_step(&store, &table, axis, &NodeTest::any_node());
            for (_, nodes) in out.groups() {
                for w in nodes.windows(2) {
                    prop_assert!(
                        store.order_key(w[0]) < store.order_key(w[1]),
                        "axis {} output not strictly document-ordered",
                        axis.as_str()
                    );
                }
            }
        }
    }
}
