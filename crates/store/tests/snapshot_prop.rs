//! Property tests for the snapshot format (mirroring
//! `crates/xml/tests/roundtrip_prop.rs`): `save(load(x)) == x` for the
//! documents, region indices and layer metadata of arbitrary layer sets,
//! and corrupted/truncated snapshots are rejected, never mis-loaded.

use proptest::prelude::*;

use standoff_core::StandoffConfig;
use standoff_store::{read_snapshot, write_snapshot, LayerSet};
use standoff_xml::{parse_document, serialize_document, Document};

/// Random non-touching annotation spans: (start, end) pairs.
fn spans_strategy(max_annotations: usize) -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0i64..400, 1i64..30), 0..max_annotations).prop_map(|raw| {
        let mut spans: Vec<(i64, i64)> = raw.into_iter().map(|(s, l)| (s, s + l)).collect();
        spans.sort_unstable();
        spans
    })
}

/// An annotation-layer document: one element per span. Nested/overlapping
/// spans are fine — they are independent area-annotations.
fn layer_doc(elem: &str, spans: &[(i64, i64)]) -> Document {
    let mut xml = String::from("<layer>");
    for (k, (s, e)) in spans.iter().enumerate() {
        xml.push_str(&format!(r#"<{elem} n="{k}" start="{s}" end="{e}"/>"#));
    }
    xml.push_str("</layer>");
    parse_document(&xml).unwrap()
}

fn layer_names(n: usize) -> Vec<String> {
    (0..n).map(|k| format!("layer{k}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// write → read → write is byte-identical, and the reload preserves
    /// every document, index and piece of layer metadata.
    #[test]
    fn snapshot_round_trip(
        base_spans in spans_strategy(24),
        layer_spans in prop::collection::vec(spans_strategy(16), 0..4),
    ) {
        let mut set = LayerSet::build(
            "prop-corpus",
            layer_doc("seg", &base_spans),
            StandoffConfig::default(),
        )
        .unwrap();
        for (name, spans) in layer_names(layer_spans.len()).iter().zip(&layer_spans) {
            set.add_layer(name, layer_doc("ann", spans), StandoffConfig::default())
                .unwrap();
        }

        let mut buf = Vec::new();
        write_snapshot(&set, &mut buf).unwrap();
        let loaded = read_snapshot(&mut buf.as_slice()).unwrap();

        // Metadata.
        prop_assert_eq!(loaded.uri(), set.uri());
        prop_assert_eq!(loaded.len(), set.len());
        for (a, b) in set.layers().iter().zip(loaded.layers()) {
            prop_assert_eq!(a.name(), b.name());
            prop_assert_eq!(a.config(), b.config());
            // Documents: identical serialization.
            prop_assert_eq!(
                serialize_document(a.doc(), Default::default()),
                serialize_document(b.doc(), Default::default())
            );
            // Region indices: identical entries and node views.
            prop_assert_eq!(a.index().entries(), b.index().entries());
            prop_assert_eq!(a.index().annotated_nodes(), b.index().annotated_nodes());
            prop_assert_eq!(a.index().max_regions(), b.index().max_regions());
            for &pre in a.index().annotated_nodes() {
                prop_assert_eq!(a.index().regions_of(pre), b.index().regions_of(pre));
            }
        }

        // save(load(x)) == x, byte for byte.
        let mut buf2 = Vec::new();
        write_snapshot(&loaded, &mut buf2).unwrap();
        prop_assert_eq!(buf, buf2);
    }

    /// Truncation at every prefix length fails cleanly.
    #[test]
    fn truncation_rejected(base_spans in spans_strategy(10), cut_frac in 0u32..1000) {
        let set = LayerSet::build(
            "t",
            layer_doc("seg", &base_spans),
            StandoffConfig::default(),
        )
        .unwrap();
        let mut buf = Vec::new();
        write_snapshot(&set, &mut buf).unwrap();
        let cut = (cut_frac as usize * buf.len()) / 1000;
        prop_assert!(cut < buf.len());
        prop_assert!(read_snapshot(&mut buf[..cut].to_vec().as_slice()).is_err());
    }

    /// Arbitrary single-byte corruption either fails cleanly or yields a
    /// structurally valid layer set — never a panic, never a broken index.
    #[test]
    fn corruption_never_panics(
        base_spans in spans_strategy(8),
        byte in any::<u8>(),
        pos_frac in 0u32..1000,
    ) {
        let set = LayerSet::build(
            "c",
            layer_doc("seg", &base_spans),
            StandoffConfig::default(),
        )
        .unwrap();
        let mut buf = Vec::new();
        write_snapshot(&set, &mut buf).unwrap();
        let pos = (pos_frac as usize * buf.len()) / 1000;
        buf[pos] ^= byte;
        if let Ok(loaded) = read_snapshot(&mut buf.as_slice()) {
            // Whatever decoded must uphold the structural invariants.
            for layer in loaded.layers() {
                layer.doc().check_invariants().unwrap();
                for &pre in layer.index().annotated_nodes() {
                    prop_assert!(!layer.index().regions_of(pre).is_empty());
                }
            }
        }
    }
}
