//! SOSN columnar mount semantics: lazy layer materialization, zero-copy
//! column views, and a corrupted-snapshot sweep (hard errors, no
//! panics, no silent misreads). The current writer emits v4 (the v3
//! layout plus a per-section CRC32 table), so the sweep here also
//! proves the detection guarantee: a flipped payload byte cannot
//! survive materialization.

use standoff_core::StandoffConfig;
use standoff_store::{write_snapshot, write_snapshot_legacy, LayerSet, Snapshot, StoreError};
use standoff_xml::parse_document;

fn sample_set() -> LayerSet {
    let base =
        parse_document(r#"<doc><seg start="0" end="19"/><seg start="20" end="39"/>état</doc>"#)
            .unwrap();
    let tokens = parse_document(
        r#"<toks><w start="0" end="4"/><w start="5" end="9"/><w start="21" end="27"/></toks>"#,
    )
    .unwrap();
    let entities = parse_document(r#"<ents><person start="0" end="9"/></ents>"#).unwrap();
    let mut set = LayerSet::build("corpus.xml", base, StandoffConfig::default()).unwrap();
    set.add_layer("tokens", tokens, StandoffConfig::default())
        .unwrap();
    set.add_layer("entities", entities, StandoffConfig::default())
        .unwrap();
    set
}

fn v3_bytes() -> Vec<u8> {
    let mut buf = Vec::new();
    write_snapshot(&sample_set(), &mut buf).unwrap();
    buf
}

/// Parse the v3 section table: `(tag, layer, table_entry_offset, off, len)`.
fn table_of(buf: &[u8]) -> Vec<(u32, u32, usize, u64, u64)> {
    let count = u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize;
    (0..count)
        .map(|k| {
            let at = 16 + 24 * k;
            (
                u32::from_le_bytes(buf[at..at + 4].try_into().unwrap()),
                u32::from_le_bytes(buf[at + 4..at + 8].try_into().unwrap()),
                at,
                u64::from_le_bytes(buf[at + 8..at + 16].try_into().unwrap()),
                u64::from_le_bytes(buf[at + 16..at + 24].try_into().unwrap()),
            )
        })
        .collect()
}

/// Opening or materializing the tampered bytes must fail — never panic,
/// never silently succeed.
fn assert_rejected(bytes: Vec<u8>, what: &str) {
    match Snapshot::from_bytes(bytes) {
        Err(_) => {}
        Ok(snapshot) => {
            let all: Result<Vec<_>, _> =
                (0..snapshot.len()).map(|k| snapshot.layer_at(k)).collect();
            assert!(all.is_err(), "{what}: tampering must be rejected");
        }
    }
}

#[test]
fn open_is_lazy_and_layer_access_materializes_one() {
    let snapshot = Snapshot::from_bytes(v3_bytes()).unwrap();
    assert_eq!(snapshot.version(), 4);
    assert_eq!(snapshot.uri(), "corpus.xml");
    assert_eq!(
        snapshot.layer_names().collect::<Vec<_>>(),
        ["base", "tokens", "entities"]
    );
    // Opening walked only the header: nothing is materialized.
    for k in 0..3 {
        assert!(!snapshot.is_materialized(k), "open must not decode layers");
    }
    // `info` (what `standoff-xq inspect` prints) still reports counts —
    // they live in the layer headers, not the payloads.
    let info = snapshot.info();
    assert_eq!(info.layers[1].annotations, Some(3));
    assert_eq!(info.layers[2].annotations, Some(1));
    for k in 0..3 {
        assert!(!snapshot.is_materialized(k), "info must not materialize");
    }
    // First access realizes exactly the touched layer.
    let tokens = snapshot.layer("tokens").unwrap();
    assert_eq!(tokens.annotation_count(), 3);
    assert!(snapshot.is_materialized(1));
    assert!(!snapshot.is_materialized(0) && !snapshot.is_materialized(2));
    // Repeated access shares the cached layer.
    let again = snapshot.layer("tokens").unwrap();
    assert!(std::sync::Arc::ptr_eq(&tokens, &again));
}

#[test]
#[cfg(target_endian = "little")]
fn materialized_layers_are_zero_copy_views() {
    let snapshot = Snapshot::from_bytes(v3_bytes()).unwrap();
    let base = snapshot.layer("base").unwrap();
    assert!(
        base.doc().is_mounted(),
        "v3 mount must back document columns with buffer views"
    );
    assert!(
        base.index().is_mounted(),
        "v3 mount must back index columns with buffer views"
    );
    // And the mounted data reads back correctly.
    // pre: 0=document 1=<doc> 2=<seg> 3=<seg> 4=text "état"
    assert_eq!(base.doc().elements_named("seg").len(), 2);
    assert_eq!(base.doc().attribute(2, "end"), Some("19"));
    assert_eq!(
        base.doc().string_value(standoff_xml::NodeId::tree(4)),
        "état"
    );
    assert_eq!(base.index().annotated_nodes(), &[2, 3]);
}

#[test]
fn legacy_files_open_through_snapshot_eagerly() {
    let mut buf = Vec::new();
    write_snapshot_legacy(&sample_set(), &mut buf).unwrap();
    let snapshot = Snapshot::from_bytes(buf).unwrap();
    assert_eq!(snapshot.version(), 1);
    // Legacy decode is eager: everything is already materialized.
    for k in 0..3 {
        assert!(snapshot.is_materialized(k));
    }
    let set = snapshot.to_layer_set().unwrap();
    assert_eq!(set.layer("tokens").unwrap().annotation_count(), 3);
}

#[test]
fn v3_and_legacy_agree() {
    let set = sample_set();
    let mut v3 = Vec::new();
    write_snapshot(&set, &mut v3).unwrap();
    let mut v1 = Vec::new();
    write_snapshot_legacy(&set, &mut v1).unwrap();
    let a = Snapshot::from_bytes(v3).unwrap().to_layer_set().unwrap();
    let b = Snapshot::from_bytes(v1).unwrap().to_layer_set().unwrap();
    for (la, lb) in a.layers().iter().zip(b.layers()) {
        assert_eq!(la.name(), lb.name());
        assert_eq!(la.index().entries(), lb.index().entries());
        assert_eq!(
            standoff_xml::serialize_document(la.doc(), Default::default()),
            standoff_xml::serialize_document(lb.doc(), Default::default())
        );
    }
}

// ---- corruption sweep ----

#[test]
fn truncated_section_table_rejected() {
    let buf = v3_bytes();
    // Cut mid-table.
    assert_rejected(buf[..20].to_vec(), "mid-table cut");
    // Section count claiming more entries than the file holds.
    let mut huge = buf.clone();
    huge[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_rejected(huge, "hostile section count");
}

#[test]
fn section_outside_file_rejected() {
    let buf = v3_bytes();
    let table = table_of(&buf);
    // Push one section's offset past EOF.
    let (_, _, at, _, _) = table[3];
    let mut bad = buf.clone();
    bad[at + 8..at + 16].copy_from_slice(&(buf.len() as u64).to_le_bytes());
    assert_rejected(bad, "offset past EOF");
    // Length overflowing u64.
    let mut bad = buf.clone();
    bad[at + 16..at + 24].copy_from_slice(&u64::MAX.to_le_bytes());
    assert_rejected(bad, "overflowing length");
}

#[test]
fn overlapping_sections_rejected() {
    let buf = v3_bytes();
    let table = table_of(&buf);
    // Alias section 3 onto section 2's byte range.
    let (_, _, _, off2, len2) = table[2];
    assert!(len2 > 0);
    let (_, _, at3, _, _) = table[3];
    let mut bad = buf.clone();
    bad[at3 + 8..at3 + 16].copy_from_slice(&off2.to_le_bytes());
    bad[at3 + 16..at3 + 24].copy_from_slice(&len2.to_le_bytes());
    assert_rejected(bad, "aliased sections");
}

#[test]
fn misaligned_column_offsets_rejected() {
    let buf = v3_bytes();
    const SEC_DOC_SIZE: u32 = 12;
    let (_, _, at, off, len) = *table_of(&buf)
        .iter()
        .find(|&&(tag, layer, ..)| tag == SEC_DOC_SIZE && layer == 0)
        .unwrap();
    // Shift the size column one byte into neighboring padding: the view
    // either collides with a sibling section or decodes values that
    // violate the structural invariants.
    let mut shifted = buf.clone();
    shifted[at + 8..at + 16].copy_from_slice(&(off + 1).to_le_bytes());
    assert_rejected(shifted, "shifted column");
    // A ragged byte length (not a whole number of u32s) is a hard error.
    let mut ragged = buf.clone();
    ragged[at + 16..at + 24].copy_from_slice(&(len - 1).to_le_bytes());
    assert_rejected(ragged, "ragged column length");
}

#[test]
fn out_of_range_string_slots_rejected() {
    let buf = v3_bytes();
    const SEC_DOC_VAL_OFF: u32 = 17;
    let (_, _, _, off, len) = *table_of(&buf)
        .iter()
        .find(|&&(tag, layer, ..)| tag == SEC_DOC_VAL_OFF && layer == 0)
        .unwrap();
    // Point the final slot boundary far past the heap.
    let last = (off + len) as usize - 4;
    let mut bad = buf.clone();
    bad[last..last + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_rejected(bad, "slot past heap");
    // Non-monotone offsets.
    let first = off as usize;
    let mut bad = buf.clone();
    bad[first..first + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_rejected(bad, "non-monotone slots");
}

#[test]
fn single_byte_corruption_never_panics_and_is_always_detected() {
    let buf = v3_bytes();
    // Classify every byte: semantic (header fields, table entries,
    // section payloads — a flip there MUST be detected) vs inert (the
    // reserved header word and alignment padding — a flip there must at
    // worst be harmless; the checksums do not cover gap bytes).
    let mut semantic = vec![false; buf.len()];
    for b in semantic.iter_mut().take(12) {
        *b = true; // magic, version, section count
    }
    let table = table_of(&buf);
    for &(_, _, at, off, len) in &table {
        for b in semantic.iter_mut().skip(at).take(24) {
            *b = true; // the table entry itself
        }
        if len == 0 {
            // The offset of an empty section is meaningless (its CRC is
            // the empty CRC wherever it points): a flip there that
            // stays in-bounds is undetectable and harmless.
            for b in semantic.iter_mut().skip(at + 8).take(8) {
                *b = false;
            }
        }
        for b in semantic.iter_mut().skip(off as usize).take(len as usize) {
            *b = true; // the section payload
        }
    }
    for k in 0..buf.len() {
        let mut mutated = buf.clone();
        mutated[k] ^= 0xff;
        // Detection: open fails, or the deep verify (checksums + full
        // materialization) fails. Never a panic either way.
        let detected = match Snapshot::mount_bytes(mutated) {
            Err(_) => true,
            Ok(snapshot) => {
                let failed = snapshot.verify().is_err();
                let _ = snapshot.info();
                failed
            }
        };
        if semantic[k] {
            assert!(detected, "flip of semantic byte {k} must be detected");
        }
    }
}

#[test]
fn payload_flip_is_corrupt_at_materialization_open_stays_lazy() {
    let buf = v3_bytes();
    // Flip one byte inside the tokens layer's kind column: a bulk
    // payload the open path must not hash.
    const SEC_DOC_KIND: u32 = 11;
    let (_, _, _, off, len) = *table_of(&buf)
        .iter()
        .find(|&&(tag, layer, ..)| tag == SEC_DOC_KIND && layer == 1)
        .unwrap();
    assert!(len > 0);
    let mut mutated = buf.clone();
    mutated[off as usize] ^= 0xff;
    // Opening succeeds — checksums of untouched-at-open sections are
    // deferred — and nothing is materialized.
    let snapshot = Snapshot::mount_bytes(mutated).expect("lazy open must not hash bulk columns");
    assert!(!snapshot.is_materialized(1));
    // Sibling layers are unaffected.
    snapshot.layer("base").expect("clean sibling materializes");
    // The damaged layer is a categorized corruption error, not a panic.
    match snapshot.layer("tokens") {
        Err(StoreError::Corrupt { section, detail }) => {
            assert!(section.contains("doc.kind"), "section: {section}");
            assert!(detail.contains("checksum mismatch"), "detail: {detail}");
        }
        Err(other) => panic!("expected StoreError::Corrupt, got {other}"),
        Ok(_) => panic!("corrupted layer must not materialize"),
    }
}
