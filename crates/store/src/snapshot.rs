//! The versioned binary snapshot format.
//!
//! A snapshot persists a whole [`LayerSet`] — every layer's shredded
//! document, element-name table and prebuilt region index. Three
//! on-disk versions exist:
//!
//! * **Version 4** (current, written by [`write_snapshot`]): the
//!   columnar layout of version 3 plus a trailing checksum section — a
//!   CRC32 per section payload, verified lazily at layer
//!   materialization (see [`crate::mount`]).
//! * **Version 3** (written by [`write_snapshot_unchecksummed`]): the
//!   columnar, offset-indexed format of [`crate::mount`]. Files are
//!   *mounted* — one shared buffer, zero-copy column views, lazily
//!   materialized layers — rather than decoded.
//! * **Version 1** (legacy, written by [`write_snapshot_legacy`]):
//!   streaming length-prefixed sections, decoded eagerly. Still fully
//!   readable; kept so existing snapshot files never rot. Layout:
//!
//! ```text
//! magic "SOSN" | u32 version | u32 section-count
//! section-count × section:  u32 tag | u64 byte-length | payload
//!
//! tag 1 META:   string store-uri | u32 layer-count
//! tag 2 LAYER:  string layer-name
//!               | config: string position-type, string start-name,
//!                 string end-name, u8 has-region (+ string region-name),
//!                 u8 lenient
//!               | document     ("SOXD", standoff_xml::write_document)
//!               | region index ("SORX", RegionIndex::write_into)
//! ```
//!
//! Strings are u32-length-prefixed UTF-8. Sections are length-prefixed so
//! readers skip tags they do not know. The first LAYER section is the
//! base layer. No external serde dependencies.
//!
//! Reading dispatches on the version field, so [`read_snapshot`] /
//! [`load_snapshot`] accept both formats transparently. [`inspect_snapshot`]
//! summarizes either format without decoding payloads: v3 is a pure
//! header walk, legacy skims each section's name prefix and *seeks* over
//! the rest (no draining reads).

use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use standoff_core::{RegionIndex, StandoffConfig};
use standoff_xml::wire::{
    read_string, read_u32, read_u64, read_u8, write_string, write_u32, write_u64,
};

use crate::error::StoreError;
use crate::layer::{Layer, LayerSet};
use crate::mount::{
    Snapshot, HEADER_BYTES, SEC_CHECKSUMS, SEC_LAYER_HDR, SEC_META, TABLE_ENTRY_BYTES,
};

pub(crate) const MAGIC: &[u8; 4] = b"SOSN";
/// The legacy streaming format.
pub(crate) const VERSION_LEGACY: u32 = 1;
/// The columnar mounted format. (2 is skipped: snapshot generations
/// align with the embedded document codec's, whose current version is 2.)
pub(crate) const VERSION_V3: u32 = 3;
/// The columnar format plus per-section CRC32 checksums.
pub(crate) const VERSION_V4: u32 = 4;

const SECTION_META: u32 = 1;
const SECTION_LAYER: u32 = 2;

// ---- primitives ----

pub(crate) fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("snapshot: {msg}"))
}

fn io_from_store(e: StoreError) -> io::Error {
    match e {
        StoreError::Io(e) => e,
        other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
    }
}

pub(crate) fn write_config<W: Write>(w: &mut W, config: &StandoffConfig) -> io::Result<()> {
    write_string(w, &config.position_type)?;
    write_string(w, &config.start_name)?;
    write_string(w, &config.end_name)?;
    match &config.region_name {
        Some(name) => {
            w.write_all(&[1])?;
            write_string(w, name)?;
        }
        None => w.write_all(&[0])?,
    }
    w.write_all(&[config.lenient as u8])
}

pub(crate) fn read_config<R: Read>(r: &mut R) -> io::Result<StandoffConfig> {
    let position_type = read_string(r)?;
    let start_name = read_string(r)?;
    let end_name = read_string(r)?;
    let region_name = match read_u8(r)? {
        0 => None,
        1 => Some(read_string(r)?),
        _ => return Err(bad("bad region-name flag")),
    };
    let lenient = match read_u8(r)? {
        0 => false,
        1 => true,
        _ => return Err(bad("bad lenient flag")),
    };
    let config = StandoffConfig {
        position_type,
        start_name,
        end_name,
        region_name,
        lenient,
    };
    config
        .validate()
        .map_err(|e| bad(&format!("bad layer config: {e}")))?;
    Ok(config)
}

// ---- write ----

/// Serialize a layer set into `w` in the current (v4, columnar +
/// checksummed) format.
pub fn write_snapshot<W: Write>(set: &LayerSet, w: &mut W) -> io::Result<()> {
    crate::mount::write_snapshot_v4(set, w)
}

/// Serialize a layer set into `w` in the v3 columnar format, without
/// section checksums — for compatibility fixtures and for benchmarking
/// checksummed mounts against their baseline.
pub fn write_snapshot_unchecksummed<W: Write>(set: &LayerSet, w: &mut W) -> io::Result<()> {
    crate::mount::write_snapshot_v3(set, w)
}

/// Serialize a layer set in the legacy (version 1) streaming format —
/// kept for compatibility tests and for producing fixtures old readers
/// can consume.
pub fn write_snapshot_legacy<W: Write>(set: &LayerSet, w: &mut W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(w, VERSION_LEGACY)?;
    write_u32(w, 1 + set.len() as u32)?;

    let mut meta = Vec::new();
    write_string(&mut meta, set.uri())?;
    write_u32(&mut meta, set.len() as u32)?;
    write_section(w, SECTION_META, &meta)?;

    for layer in set.layers() {
        let mut body = Vec::new();
        write_string(&mut body, layer.name())?;
        write_config(&mut body, layer.config())?;
        standoff_xml::write_document(layer.doc(), &mut body)?;
        layer.index().write_into(&mut body)?;
        write_section(w, SECTION_LAYER, &body)?;
    }
    Ok(())
}

fn write_section<W: Write>(w: &mut W, tag: u32, payload: &[u8]) -> io::Result<()> {
    write_u32(w, tag)?;
    write_u64(w, payload.len() as u64)?;
    w.write_all(payload)
}

/// Serialize a layer set to a file (current format), atomically: the
/// bytes are written to a temp file in the same directory, fsynced,
/// renamed over `path`, and the directory is fsynced. A crash at any
/// point leaves either the previous file or the complete new one.
pub fn save_snapshot(set: &LayerSet, path: impl AsRef<Path>) -> Result<(), StoreError> {
    crate::atomic::atomic_replace(path.as_ref(), |w| write_snapshot(set, w))?;
    Ok(())
}

// ---- read (version dispatch) ----

/// Deserialize a snapshot written by [`write_snapshot`] (either
/// version). Documents, element-name tables and region indices are
/// loaded column-wise and validated; `RegionIndex::build` is never
/// called. For the lazy entry point that materializes layers on demand,
/// use [`crate::Snapshot`] directly.
pub fn read_snapshot<R: Read>(r: &mut R) -> io::Result<LayerSet> {
    Ok(read_snapshot_with_info(r)?.0)
}

/// [`read_snapshot`] plus the on-disk statistics of [`inspect_snapshot`].
pub fn read_snapshot_with_info<R: Read>(r: &mut R) -> io::Result<(LayerSet, SnapshotInfo)> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    let snapshot = Snapshot::from_bytes(bytes)?;
    let info = snapshot.info();
    let set = snapshot.to_layer_set().map_err(io_from_store)?;
    Ok((set, info))
}

/// Deserialize a snapshot from a file (either version, eagerly).
pub fn load_snapshot(path: impl AsRef<Path>) -> Result<LayerSet, StoreError> {
    Snapshot::open(path)?.to_layer_set()
}

/// [`load_snapshot`] plus on-disk statistics.
pub fn load_snapshot_with_info(
    path: impl AsRef<Path>,
) -> Result<(LayerSet, SnapshotInfo), StoreError> {
    let snapshot = Snapshot::open(path)?;
    let info = snapshot.info();
    Ok((snapshot.to_layer_set()?, info))
}

// ---- legacy streaming decode ----

/// Validate the legacy header and return the declared section count.
fn open_sections<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a standoff snapshot (bad magic)"));
    }
    if read_u32(r)? != VERSION_LEGACY {
        return Err(bad("unsupported snapshot version"));
    }
    read_u32(r)
}

/// Stream the sections of a legacy snapshot. `visit` receives each
/// section's tag, declared payload length, and a reader limited to that
/// payload — it may consume any prefix (trailing payload bytes are
/// drained, which is what skips unknown tags and future in-section
/// extensions). Nothing is buffered: a hostile section length costs I/O,
/// not memory.
fn for_each_section<R: Read>(
    r: &mut R,
    mut visit: impl FnMut(u32, u64, &mut dyn Read) -> io::Result<()>,
) -> io::Result<()> {
    let count = open_sections(r)?;
    for _ in 0..count {
        let tag = read_u32(r)?;
        let len = read_u64(r)?;
        let mut section = r.take(len);
        visit(tag, len, &mut section)?;
        io::copy(&mut section, &mut io::sink())?;
        if section.limit() > 0 {
            return Err(bad("truncated section"));
        }
    }
    Ok(())
}

/// Decode a legacy (version 1) snapshot eagerly, gathering the on-disk
/// statistics in the same pass. The v3 path never comes through here.
pub(crate) fn read_snapshot_legacy_with_info<R: Read>(
    r: &mut R,
) -> io::Result<(LayerSet, SnapshotInfo)> {
    let mut meta: Option<(String, u32)> = None;
    let mut layers: Vec<Layer> = Vec::new();
    let mut infos: Vec<LayerInfo> = Vec::new();
    let mut payload_bytes = 0u64;
    for_each_section(r, |tag, len, mut p| {
        payload_bytes += len;
        match tag {
            SECTION_META => {
                if meta.is_some() {
                    return Err(bad("duplicate META section"));
                }
                let uri = read_string(&mut p)?;
                let count = read_u32(&mut p)?;
                meta = Some((uri, count));
            }
            SECTION_LAYER => {
                let name = read_string(&mut p)?;
                let config = read_config(&mut p)?;
                let doc = standoff_xml::read_document(&mut p)?;
                let index = RegionIndex::read_from(&mut p)?;
                // The index must describe this document: every annotated
                // node is an element of it. The query optimizer's
                // post-filter elision *relies* on join outputs being
                // elements, so a snapshot index annotating any other
                // node kind must fail here — mounted indexes are used
                // as-is, never rebuilt, and nothing downstream re-checks.
                // (Region validity was checked by `read_from`;
                // config/area agreement is the writer's contract.)
                if let Some(&last) = index.annotated_nodes().last() {
                    if last as usize >= doc.node_count() {
                        return Err(bad("region index references nodes beyond the document"));
                    }
                }
                if index
                    .annotated_nodes()
                    .iter()
                    .any(|&pre| doc.kind(pre) != standoff_xml::NodeKind::Element)
                {
                    return Err(bad("region index annotates a non-element node"));
                }
                let layer = Layer::from_parts(name, config, doc, index)
                    .map_err(|e| bad(&format!("bad layer: {e}")))?;
                infos.push(LayerInfo {
                    name: layer.name().to_string(),
                    bytes: len,
                    nodes: Some(layer.doc().node_count() as u64),
                    annotations: Some(layer.annotation_count() as u64),
                    sections: Vec::new(),
                });
                layers.push(layer);
            }
            _ => {} // unknown section: skip (forward compatibility)
        }
        Ok(())
    })?;
    let (uri, declared) = meta.ok_or_else(|| bad("missing META section"))?;
    if declared as usize != layers.len() {
        return Err(bad("layer count disagrees with META"));
    }
    if layers
        .first()
        .is_some_and(|l| l.name() != crate::layer::BASE_LAYER)
    {
        // LayerSet semantics hinge on layers[0] being the base; a
        // reordered (hand-edited) snapshot must not silently swap what
        // the bare store URI resolves to.
        return Err(bad("first layer section is not the base layer"));
    }
    let info = SnapshotInfo {
        version: VERSION_LEGACY,
        uri: uri.clone(),
        layers: infos,
        payload_bytes,
    };
    let set =
        LayerSet::from_layers(&uri, layers).map_err(|e| bad(&format!("bad layer set: {e}")))?;
    Ok((set, info))
}

// ---- inspect ----

/// One on-disk section of a layer: tag, human name, payload size.
/// Available for v3 snapshots only (legacy files store one opaque
/// section per layer); listed in ascending tag order.
#[derive(Clone, Debug)]
pub struct SectionInfo {
    /// The section-table tag (see the `SEC_*` constants in `mount`).
    pub tag: u32,
    /// Stable human-readable name of the tag (`"doc.kind"`, …).
    pub name: &'static str,
    /// Payload size in bytes.
    pub bytes: u64,
}

/// Summary of one layer inside a snapshot.
#[derive(Clone, Debug)]
pub struct LayerInfo {
    pub name: String,
    /// On-disk payload size of the layer's section(s) in bytes.
    pub bytes: u64,
    /// Declared node count — known without decoding for v3 (layer
    /// headers carry it) and for fully decoded loads; `None` when a
    /// legacy file is only skimmed.
    pub nodes: Option<u64>,
    /// Declared annotation count (same availability as `nodes`).
    pub annotations: Option<u64>,
    /// Per-section byte breakdown (v3 only; empty for legacy files).
    pub sections: Vec<SectionInfo>,
}

/// Summary of a snapshot file, cheaply skimmed: v3 is a pure header +
/// section-table walk (payloads untouched); legacy reads each section's
/// name prefix and seeks over the rest.
#[derive(Clone, Debug)]
pub struct SnapshotInfo {
    /// On-disk format version (1 = legacy, 3 = columnar,
    /// 4 = columnar + checksums).
    pub version: u32,
    pub uri: String,
    pub layers: Vec<LayerInfo>,
    /// Total payload bytes across all sections.
    pub payload_bytes: u64,
}

/// Skim a snapshot's header and section table without decoding documents
/// or indices. For v3 files only the section table and the tiny
/// META/LAYER_HDR payloads are read; for legacy files each section's
/// name prefix is read and the remainder is *seeked* over, so inspection
/// cost is independent of payload size either way.
pub fn inspect_snapshot<R: Read + Seek>(r: &mut R) -> io::Result<SnapshotInfo> {
    let end = r.seek(SeekFrom::End(0))?;
    r.seek(SeekFrom::Start(0))?;
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a standoff snapshot (bad magic)"));
    }
    match read_u32(r)? {
        VERSION_LEGACY => inspect_legacy(r, end),
        v @ (VERSION_V3 | VERSION_V4) => inspect_columnar(r, end, v),
        _ => Err(bad("unsupported snapshot version")),
    }
}

fn inspect_legacy<R: Read + Seek>(r: &mut R, end: u64) -> io::Result<SnapshotInfo> {
    let count = read_u32(r)?;
    let mut pos = 12u64;
    let mut uri = None;
    let mut layers = Vec::new();
    let mut payload_bytes = 0u64;
    for _ in 0..count {
        let tag = read_u32(r)?;
        let len = read_u64(r)?;
        pos += 12;
        let section_end = pos
            .checked_add(len)
            .filter(|&e| e <= end)
            .ok_or_else(|| bad("truncated section"))?;
        payload_bytes += len;
        match tag {
            SECTION_META => {
                let mut p = r.take(len);
                uri = Some(read_string(&mut p)?);
            }
            SECTION_LAYER => {
                let mut p = r.take(len);
                layers.push(LayerInfo {
                    name: read_string(&mut p)?,
                    bytes: len,
                    nodes: None,
                    annotations: None,
                    sections: Vec::new(),
                });
            }
            _ => {}
        }
        // Seek (not drain) past the remainder of the payload.
        r.seek(SeekFrom::Start(section_end))?;
        pos = section_end;
    }
    Ok(SnapshotInfo {
        version: VERSION_LEGACY,
        uri: uri.ok_or_else(|| bad("missing META section"))?,
        layers,
        payload_bytes,
    })
}

fn inspect_columnar<R: Read + Seek>(r: &mut R, end: u64, version: u32) -> io::Result<SnapshotInfo> {
    let count = read_u32(r)? as usize;
    let _reserved = read_u32(r)?;
    let table_end = (HEADER_BYTES + TABLE_ENTRY_BYTES * count) as u64;
    if table_end > end {
        return Err(bad("truncated section table"));
    }
    let mut table = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let tag = read_u32(r)?;
        let layer = read_u32(r)?;
        let off = read_u64(r)?;
        let len = read_u64(r)?;
        let section_end = off
            .checked_add(len)
            .filter(|&e| e <= end)
            .ok_or_else(|| bad("section outside the file"))?;
        if off < table_end {
            return Err(bad("section outside the file"));
        }
        let _ = section_end;
        table.push((tag, layer, off, len));
    }
    let payload_bytes = table.iter().map(|&(_, _, _, l)| l).sum();
    let read_payload = |r: &mut R, off: u64, len: u64| -> io::Result<Vec<u8>> {
        r.seek(SeekFrom::Start(off))?;
        standoff_xml::wire::read_exact_vec(r, len)
    };
    let &(_, _, m_off, m_len) = table
        .iter()
        .find(|&&(t, _, _, _)| t == SEC_META)
        .ok_or_else(|| bad("missing META section"))?;
    let meta = read_payload(r, m_off, m_len)?;
    let mut p = meta.as_slice();
    let uri = read_string(&mut p)?;
    let layer_count = read_u32(&mut p)?;
    let mut layers = Vec::new();
    for k in 0..layer_count {
        let &(_, _, off, len) = table
            .iter()
            .find(|&&(t, l, _, _)| t == SEC_LAYER_HDR && l == k)
            .ok_or_else(|| bad(&format!("missing header for layer {k}")))?;
        let hdr = read_payload(r, off, len)?;
        let mut p = hdr.as_slice();
        let name = read_string(&mut p)?;
        let _config = read_config(&mut p)?;
        let nodes = read_u64(&mut p)?;
        let _attrs = read_u64(&mut p)?;
        let annotations = read_u64(&mut p)?;
        let mut sections: Vec<SectionInfo> = table
            .iter()
            .filter(|&&(t, l, _, _)| l == k && t != SEC_META && t != SEC_CHECKSUMS)
            .map(|&(tag, _, _, len)| SectionInfo {
                tag,
                name: crate::mount::section_name(tag),
                bytes: len,
            })
            .collect();
        sections.sort_by_key(|s| s.tag);
        let bytes = sections.iter().map(|s| s.bytes).sum();
        layers.push(LayerInfo {
            name,
            bytes,
            nodes: Some(nodes),
            annotations: Some(annotations),
            sections,
        });
    }
    Ok(SnapshotInfo {
        version,
        uri,
        layers,
        payload_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use standoff_core::Area;
    use standoff_xml::parse_document;

    fn sample_set() -> LayerSet {
        let base =
            parse_document(r#"<doc><seg start="0" end="19"/><seg start="20" end="39"/></doc>"#)
                .unwrap();
        let tokens = parse_document(
            r#"<toks><w start="0" end="4"/><w start="5" end="9"/><w start="21" end="27"/></toks>"#,
        )
        .unwrap();
        let mut set = LayerSet::build("corpus.xml", base, StandoffConfig::default()).unwrap();
        set.add_layer("tokens", tokens, StandoffConfig::default())
            .unwrap();
        set
    }

    #[test]
    fn legacy_round_trip_preserves_everything() {
        let set = sample_set();
        let mut buf = Vec::new();
        write_snapshot_legacy(&set, &mut buf).unwrap();
        let loaded = read_snapshot(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.uri(), "corpus.xml");
        assert_eq!(loaded.len(), 2);
        let tokens = loaded.layer("tokens").unwrap();
        assert_eq!(tokens.annotation_count(), 3);
        assert_eq!(
            tokens.index().entries(),
            set.layer("tokens").unwrap().index().entries()
        );
        // Idempotent re-serialization: the reload carries every bit.
        let mut buf2 = Vec::new();
        write_snapshot_legacy(&loaded, &mut buf2).unwrap();
        assert_eq!(buf, buf2);
    }

    #[test]
    fn v3_round_trip_preserves_everything() {
        let set = sample_set();
        let mut buf = Vec::new();
        write_snapshot(&set, &mut buf).unwrap();
        let loaded = read_snapshot(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.uri(), "corpus.xml");
        assert_eq!(loaded.len(), 2);
        let tokens = loaded.layer("tokens").unwrap();
        assert_eq!(tokens.annotation_count(), 3);
        assert_eq!(
            tokens.index().entries(),
            set.layer("tokens").unwrap().index().entries()
        );
        for (orig, re) in set.layers().iter().zip(loaded.layers()) {
            assert_eq!(orig.name(), re.name());
            assert_eq!(orig.doc().node_count(), re.doc().node_count());
            assert_eq!(
                standoff_xml::serialize_document(orig.doc(), Default::default()),
                standoff_xml::serialize_document(re.doc(), Default::default())
            );
        }
        // v3 re-serialization is byte-idempotent too.
        let mut buf2 = Vec::new();
        write_snapshot(&loaded, &mut buf2).unwrap();
        assert_eq!(buf, buf2);
    }

    /// Unchecksummed v3 files remain first-class: the v4 reader must
    /// keep mounting them (no verification, same contents).
    #[test]
    fn unchecksummed_v3_round_trip_still_reads() {
        let set = sample_set();
        let mut buf = Vec::new();
        write_snapshot_unchecksummed(&set, &mut buf).unwrap();
        let snapshot = Snapshot::from_bytes(buf.clone()).unwrap();
        assert_eq!(snapshot.version(), VERSION_V3);
        assert!(!snapshot.checksummed());
        let loaded = snapshot.to_layer_set().unwrap();
        assert_eq!(loaded.uri(), "corpus.xml");
        assert_eq!(loaded.layer("tokens").unwrap().annotation_count(), 3);
        // And the current writer really is a superset: same bytes up
        // to the version field, table and checksum section aside.
        let mut v4 = Vec::new();
        write_snapshot(&set, &mut v4).unwrap();
        let mounted = Snapshot::from_bytes(v4).unwrap();
        assert_eq!(mounted.version(), VERSION_V4);
        assert!(mounted.checksummed());
        assert!(mounted.verify().is_ok());
    }

    /// The post-filter elision in the query optimizer assumes every
    /// node a mounted region index annotates is an element; a snapshot
    /// whose index points at any other node kind must be rejected at
    /// load time (mounted indexes are never rebuilt or re-filtered) —
    /// in both formats.
    #[test]
    fn snapshot_index_annotating_non_element_rejected() {
        let doc = parse_document(r#"<doc><w start="0" end="4"/>hello</doc>"#).unwrap();
        // pre 3 is the text node "hello" — a forged annotation target.
        assert_eq!(doc.kind(3), standoff_xml::NodeKind::Text);
        let forged = RegionIndex::from_areas(&[(3, Area::single(0, 4).unwrap())]);
        let layer = Layer::from_parts(
            crate::layer::BASE_LAYER.to_string(),
            StandoffConfig::default(),
            doc,
            forged,
        )
        .unwrap();
        let set = LayerSet::from_layers("u", vec![layer]).unwrap();
        for write in [write_snapshot_legacy, write_snapshot] {
            let mut buf = Vec::new();
            write(&set, &mut buf).unwrap();
            let err = read_snapshot(&mut buf.as_slice()).unwrap_err();
            assert!(
                err.to_string().contains("non-element"),
                "unexpected error: {err}"
            );
        }
    }

    #[test]
    fn inspect_reports_without_decoding() {
        let set = sample_set();
        for (write, version) in [
            (
                write_snapshot_legacy as fn(&LayerSet, &mut Vec<u8>) -> io::Result<()>,
                VERSION_LEGACY,
            ),
            (write_snapshot_unchecksummed, VERSION_V3),
            (write_snapshot, VERSION_V4),
        ] {
            let mut buf = Vec::new();
            write(&set, &mut buf).unwrap();
            let info = inspect_snapshot(&mut io::Cursor::new(&buf)).unwrap();
            assert_eq!(info.version, version);
            assert_eq!(info.uri, "corpus.xml");
            assert_eq!(
                info.layers
                    .iter()
                    .map(|l| l.name.as_str())
                    .collect::<Vec<_>>(),
                ["base", "tokens"]
            );
            assert!(info.payload_bytes > 0);
            if version >= VERSION_V3 {
                // v3 headers carry counts — no payload decode needed.
                assert_eq!(info.layers[1].annotations, Some(3));
                assert_eq!(
                    info.layers[0].nodes,
                    Some(set.base().doc().node_count() as u64)
                );
            }
        }
    }

    #[test]
    fn legacy_unknown_sections_are_skipped() {
        let set = sample_set();
        let mut buf = Vec::new();
        write_snapshot_legacy(&set, &mut buf).unwrap();
        // Append an unknown section and bump the section count.
        let mut extended = buf.clone();
        write_u32(&mut extended, 0xBEEF).unwrap();
        write_u64(&mut extended, 3).unwrap();
        extended.extend_from_slice(b"xyz");
        let count = u32::from_le_bytes(extended[8..12].try_into().unwrap());
        extended[8..12].copy_from_slice(&(count + 1).to_le_bytes());
        let loaded = read_snapshot(&mut extended.as_slice()).unwrap();
        assert_eq!(loaded.len(), 2);
    }

    #[test]
    fn legacy_reordered_layers_rejected() {
        // Hand-reorder the two LAYER sections so the base is no longer
        // first: the load must fail rather than silently swap what the
        // bare store URI resolves to.
        let set = sample_set();
        let mut buf = Vec::new();
        write_snapshot_legacy(&set, &mut buf).unwrap();
        // Parse section boundaries: header is 12 bytes, then
        // (tag u32 | len u64 | payload) triples.
        let mut sections: Vec<(usize, usize)> = Vec::new(); // (offset, total size)
        let mut k = 12;
        while k < buf.len() {
            let len = u64::from_le_bytes(buf[k + 4..k + 12].try_into().unwrap()) as usize;
            sections.push((k, 12 + len));
            k += 12 + len;
        }
        assert_eq!(sections.len(), 3, "META + 2 layers");
        let (m_off, m_len) = sections[0];
        let (a_off, a_len) = sections[1];
        let (b_off, b_len) = sections[2];
        let mut swapped = buf[..12].to_vec();
        swapped.extend_from_slice(&buf[m_off..m_off + m_len]);
        swapped.extend_from_slice(&buf[b_off..b_off + b_len]);
        swapped.extend_from_slice(&buf[a_off..a_off + a_len]);
        let err = read_snapshot(&mut swapped.as_slice()).unwrap_err();
        assert!(err.to_string().contains("base layer"), "{err}");
    }

    #[test]
    fn hostile_section_length_fails_without_allocating() {
        // A section header claiming an absurd payload must fail with a
        // clean truncation error, not a giant allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION_LEGACY.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes()); // one section
        buf.extend_from_slice(&SECTION_META.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // hostile length
        buf.extend_from_slice(b"tiny");
        assert!(read_snapshot(&mut buf.as_slice()).is_err());
        assert!(inspect_snapshot(&mut io::Cursor::new(&buf)).is_err());
    }

    #[test]
    fn corruption_is_rejected_cleanly() {
        let set = sample_set();
        for write in [
            write_snapshot_legacy as fn(&LayerSet, &mut Vec<u8>) -> io::Result<()>,
            write_snapshot,
        ] {
            let mut buf = Vec::new();
            write(&set, &mut buf).unwrap();
            // Bad magic.
            let mut bad_magic = buf.clone();
            bad_magic[0] = b'X';
            assert!(read_snapshot(&mut bad_magic.as_slice()).is_err());
            // Bad version.
            let mut bad_version = buf.clone();
            bad_version[4..8].copy_from_slice(&99u32.to_le_bytes());
            assert!(read_snapshot(&mut bad_version.as_slice()).is_err());
            // Every truncation fails, never panics.
            for cut in 0..buf.len() {
                assert!(
                    read_snapshot(&mut buf[..cut].to_vec().as_slice()).is_err(),
                    "truncation at {cut} must fail"
                );
            }
        }
    }
}
