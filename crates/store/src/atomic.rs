//! Crash-safe file replacement.
//!
//! Every durable artifact the store rewrites in place — snapshots from
//! `save_snapshot`/`compact`, the annotate sidecar checkpoint — goes
//! through [`atomic_replace`]: write a temporary file *in the same
//! directory* (rename only works within a filesystem), `fsync` the
//! file, `rename` over the destination, then `fsync` the directory so
//! the rename itself is durable. A crash at any byte offset leaves
//! either the old complete file or the new complete file, never a
//! prefix of the new one.
//!
//! Fault points (`store.atomic.before_sync`, `store.atomic.before_rename`,
//! `store.atomic.after_rename`) let the crash-recovery harness kill the
//! process at each seam and assert exactly that.

use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use standoff_core::fault;

/// Temp-file path for an atomic replace of `path`: hidden, same
/// directory, tagged with the pid so concurrent writers don't clobber
/// each other's scratch (last rename still wins, atomically).
fn temp_path(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unnamed".to_string());
    let tmp = format!(".{}.tmp.{}", name, std::process::id());
    match path.parent() {
        Some(dir) if !dir.as_os_str().is_empty() => dir.join(tmp),
        _ => PathBuf::from(tmp),
    }
}

/// Best-effort fsync of `path`'s parent directory. On platforms where
/// directories cannot be opened (or the fd refuses `fsync`), the rename
/// is still atomic — only its durability across power loss is weakened
/// — so failures here are swallowed rather than failing an
/// otherwise-complete write.
pub(crate) fn sync_parent_dir(path: &Path) {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

/// Atomically replace `path` with whatever `write` produces.
///
/// `write` receives a buffered writer over the temp file; if it errors
/// (or the sync/rename does), the temp file is removed and `path` is
/// left untouched.
pub fn atomic_replace<F>(path: &Path, write: F) -> io::Result<()>
where
    F: FnOnce(&mut BufWriter<File>) -> io::Result<()>,
{
    let tmp = temp_path(path);
    let result = (|| {
        let file = File::create(&tmp)?;
        let mut out = BufWriter::new(file);
        write(&mut out)?;
        out.flush()?;
        fault::point("store.atomic.before_sync");
        let file = out
            .into_inner()
            .map_err(|e| io::Error::other(e.to_string()))?;
        file.sync_all()?;
        fault::point("store.atomic.before_rename");
        fs::rename(&tmp, path)?;
        fault::point("store.atomic.after_rename");
        sync_parent_dir(path);
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// [`atomic_replace`] specialized to a byte slice (sidecar rewrites).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    atomic_replace(path, |out| out.write_all(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("standoff-atomic-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn replaces_and_cleans_up_temp() {
        let dir = temp_dir("ok");
        let target = dir.join("data.txt");
        fs::write(&target, b"old").unwrap();
        atomic_write(&target, b"new contents").unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"new contents");
        let leftovers: Vec<_> = fs::read_dir(&dir).unwrap().collect();
        assert_eq!(leftovers.len(), 1, "temp file must not survive");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn writer_error_leaves_target_untouched() {
        let dir = temp_dir("err");
        let target = dir.join("data.txt");
        fs::write(&target, b"precious").unwrap();
        let err = atomic_replace(&target, |out| {
            out.write_all(b"partial")?;
            Err(io::Error::other("simulated failure"))
        })
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert_eq!(fs::read(&target).unwrap(), b"precious");
        let leftovers: Vec<_> = fs::read_dir(&dir).unwrap().collect();
        assert_eq!(leftovers.len(), 1, "failed temp file must be removed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_before_rename_leaves_target_untouched() {
        let dir = temp_dir("crash");
        let target = dir.join("data.txt");
        fs::write(&target, b"committed state").unwrap();
        fault::inject_times(
            "store.atomic.before_rename",
            standoff_core::fault::FaultAction::Panic,
            1,
        );
        let outcome = std::panic::catch_unwind(|| atomic_write(&target, b"torn write"));
        fault::clear("store.atomic.before_rename");
        assert!(outcome.is_err(), "armed fault point must fire");
        assert_eq!(fs::read(&target).unwrap(), b"committed state");
        let _ = fs::remove_dir_all(&dir);
    }
}
