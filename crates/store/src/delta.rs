//! Writable overlay deltas over immutable layer sets.
//!
//! A [`LayerSet`] (and a fortiori a mounted SOSN snapshot) is immutable:
//! its documents are shredded, its region indexes are clustered columns.
//! Mutation is layered *on top* as a [`DeltaSet`] — per annotation layer,
//! a list of **inserted** annotations (new stand-off elements over the
//! same BLOB) and a list of **retracted** ones (existing annotations
//! hidden from every read). Readers merge base and delta on the fly
//! (merge-on-read); [`compact`] folds the delta down into a fresh,
//! delta-free `LayerSet` that can be written out as a new snapshot.
//!
//! Two invariants make merge-on-read and compaction observably
//! equivalent:
//!
//! * inserted annotations materialize as a small sibling document per
//!   layer ([`LayerDelta::insert_doc`]) whose elements carry the same
//!   `start`/`end` attributes the layer's [`StandoffConfig`] prescribes —
//!   compaction appends exactly those elements to the layer root, in
//!   insertion order;
//! * a retraction hides the **whole subtree** of every matching
//!   annotation element ([`LayerDelta::retracted_pres`]) — compaction
//!   drops the same subtrees from the rebuilt document.
//!
//! Deltas target annotation layers only: the base layer is the document
//! under annotation, not an annotation set, and rewriting it would
//! invalidate every region of every layer above it.

use std::collections::BTreeMap;
use std::time::Instant;

use standoff_core::{MetricsRegistry, Region, StandoffConfig};
use standoff_xml::{Document, DocumentBuilder, NodeKind};

use crate::error::StoreError;
use crate::layer::{Layer, LayerSet};

/// One inserted annotation: an empty element `name` with the layer's
/// configured start/end attributes plus any extra attributes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaAnnotation {
    pub name: String,
    pub start: i64,
    pub end: i64,
    /// Extra attributes beyond the region markup, in document order.
    pub attrs: Vec<(String, String)>,
}

/// A single overlay mutation, addressed to a named annotation layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaOp {
    /// Add an annotation `<name start end attrs…/>` to `layer`.
    Insert {
        layer: String,
        name: String,
        start: i64,
        end: i64,
        attrs: Vec<(String, String)>,
    },
    /// Hide every annotation element of `layer` named `name` that
    /// carries the region `[start, end]` (or drop a still-pending insert
    /// with the same key).
    Retract {
        layer: String,
        name: String,
        start: i64,
        end: i64,
    },
}

/// The pending mutations of one layer.
#[derive(Clone, Debug, Default)]
pub struct LayerDelta {
    inserts: Vec<DeltaAnnotation>,
    /// Retract keys `(name, start, end)` matched against the base layer.
    retracts: Vec<(String, i64, i64)>,
}

impl LayerDelta {
    /// Pending inserted annotations, in application order.
    pub fn inserts(&self) -> &[DeltaAnnotation] {
        &self.inserts
    }

    /// Retract keys applied against the base layer, in application order.
    pub fn retracts(&self) -> &[(String, i64, i64)] {
        &self.retracts
    }

    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.retracts.is_empty()
    }

    /// All pres of `layer`'s document hidden by this delta: every node of
    /// every matching annotation element's subtree. Sorted ascending,
    /// duplicate-free — the exact shape [`standoff_core::RegionSource`]
    /// expects.
    pub fn retracted_pres(&self, layer: &Layer) -> Vec<u32> {
        let doc = layer.doc();
        let mut out: Vec<u32> = Vec::new();
        for (name, start, end) in &self.retracts {
            for &pre in doc.elements_named(name) {
                if annotation_matches(layer, pre, *start, *end) {
                    out.push(pre);
                    out.extend(doc.descendants(pre));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Materialize the pending inserts as a standalone document: the
    /// layer root's element name wrapping one empty element per insert,
    /// region markup first, in insertion order. `None` when there is
    /// nothing to insert (retract-only deltas need no sibling document).
    pub fn insert_doc(&self, layer: &Layer) -> Result<Option<Document>, StoreError> {
        if self.inserts.is_empty() {
            return Ok(None);
        }
        let config = layer.config();
        let root_name = root_element_name(layer.doc())
            .ok_or_else(|| StoreError::Delta("layer document has no root element".into()))?;
        let mut b = DocumentBuilder::new();
        b.start_element(&root_name);
        for a in &self.inserts {
            append_insert(&mut b, a, config);
        }
        b.end_element();
        let doc = b
            .finish()
            .map_err(|e| StoreError::Delta(format!("insert document: {e}")))?;
        Ok(Some(doc))
    }
}

/// Pending mutations for a whole layer set, keyed by layer name.
///
/// All mutation goes through [`DeltaSet::apply`], which validates each
/// op against the layer set it overlays — unknown layers, base-layer
/// writes, inverted regions and retracts that match nothing are rejected
/// *at apply time*, so a `DeltaSet` held by an engine is always
/// consistent with its mount.
#[derive(Clone, Debug, Default)]
pub struct DeltaSet {
    layers: BTreeMap<String, LayerDelta>,
}

impl DeltaSet {
    pub fn new() -> DeltaSet {
        DeltaSet::default()
    }

    pub fn is_empty(&self) -> bool {
        self.layers.values().all(LayerDelta::is_empty)
    }

    /// The pending delta of `layer`, if any mutation targets it.
    pub fn layer_delta(&self, layer: &str) -> Option<&LayerDelta> {
        self.layers.get(layer).filter(|d| !d.is_empty())
    }

    /// Layer names with pending mutations, sorted.
    pub fn layer_names(&self) -> Vec<&str> {
        self.layers
            .iter()
            .filter(|(_, d)| !d.is_empty())
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// Total pending inserts across all layers.
    pub fn insert_count(&self) -> usize {
        self.layers.values().map(|d| d.inserts.len()).sum()
    }

    /// Total applied retract keys across all layers.
    pub fn retract_count(&self) -> usize {
        self.layers.values().map(|d| d.retracts.len()).sum()
    }

    /// Validate and record one mutation against `set`.
    pub fn apply(&mut self, op: DeltaOp, set: &LayerSet) -> Result<(), StoreError> {
        match op {
            DeltaOp::Insert {
                layer,
                name,
                start,
                end,
                attrs,
            } => {
                let target = self.check_layer(&layer, set)?;
                Region::new(start, end)
                    .map_err(|e| StoreError::Delta(format!("insert into {layer:?}: {e}")))?;
                let config = target.config();
                if config.region_name.is_some() {
                    return Err(StoreError::Delta(format!(
                        "layer {layer:?} uses the element region representation; \
                         delta inserts support the attribute representation only"
                    )));
                }
                check_token(&name, "element name")?;
                for (k, v) in &attrs {
                    check_token(k, "attribute name")?;
                    check_token(v, "attribute value")?;
                    if *k == config.start_name || *k == config.end_name {
                        return Err(StoreError::Delta(format!(
                            "attribute {k:?} collides with the layer's region markup"
                        )));
                    }
                }
                self.layers
                    .entry(layer)
                    .or_default()
                    .inserts
                    .push(DeltaAnnotation {
                        name,
                        start,
                        end,
                        attrs,
                    });
                MetricsRegistry::global().add("store.delta.inserts", 1);
                Ok(())
            }
            DeltaOp::Retract {
                layer,
                name,
                start,
                end,
            } => {
                let target = self.check_layer(&layer, set)?;
                let delta = self.layers.entry(layer.clone()).or_default();
                // A retract first cancels still-pending inserts with the
                // same key — those never existed as far as readers are
                // concerned, so no retract key is recorded for them.
                let before = delta.inserts.len();
                delta
                    .inserts
                    .retain(|a| !(a.name == name && a.start == start && a.end == end));
                if delta.inserts.len() != before {
                    MetricsRegistry::global().add("store.delta.retracts", 1);
                    return Ok(());
                }
                let key = (name, start, end);
                if delta.retracts.contains(&key) {
                    return Err(StoreError::Delta(format!(
                        "annotation <{} {}..{}> of layer {layer:?} is already retracted",
                        key.0, start, end
                    )));
                }
                let (name, start, end) = key;
                let matched = target
                    .doc()
                    .elements_named(&name)
                    .iter()
                    .any(|&pre| annotation_matches(target, pre, start, end));
                if !matched {
                    return Err(StoreError::Delta(format!(
                        "retract <{name} {start}..{end}> matches no annotation of \
                         layer {layer:?}"
                    )));
                }
                delta.retracts.push((name, start, end));
                MetricsRegistry::global().add("store.delta.retracts", 1);
                Ok(())
            }
        }
    }

    /// Apply a batch; ops after the first failure are not applied.
    pub fn apply_all(
        &mut self,
        ops: impl IntoIterator<Item = DeltaOp>,
        set: &LayerSet,
    ) -> Result<usize, StoreError> {
        let mut n = 0;
        for op in ops {
            self.apply(op, set)?;
            n += 1;
        }
        Ok(n)
    }

    /// The recorded mutations as a replayable op batch: retracts of
    /// surviving keys first would be wrong (inserts could collide), so
    /// ops come out layer by layer, inserts in order, then retracts.
    /// Replaying them through [`DeltaSet::apply`] against the same base
    /// reproduces this delta exactly.
    pub fn to_ops(&self) -> Vec<DeltaOp> {
        let mut out = Vec::new();
        for (layer, delta) in &self.layers {
            for a in &delta.inserts {
                out.push(DeltaOp::Insert {
                    layer: layer.clone(),
                    name: a.name.clone(),
                    start: a.start,
                    end: a.end,
                    attrs: a.attrs.clone(),
                });
            }
            for (name, start, end) in &delta.retracts {
                out.push(DeltaOp::Retract {
                    layer: layer.clone(),
                    name: name.clone(),
                    start: *start,
                    end: *end,
                });
            }
        }
        out
    }

    fn check_layer<'a>(&self, layer: &str, set: &'a LayerSet) -> Result<&'a Layer, StoreError> {
        let target = set
            .layer(layer)
            .ok_or_else(|| StoreError::Delta(format!("no layer named {layer:?}")))?;
        if layer == set.base().name() {
            return Err(StoreError::Delta(format!(
                "layer {layer:?} is the base document; deltas target annotation layers"
            )));
        }
        Ok(target)
    }
}

/// Fold `delta` into `set`: every layer with pending mutations is
/// rebuilt — matching retracted subtrees dropped, inserts appended to
/// the layer root in insertion order — and re-validated through
/// [`Layer::build`]; untouched layers are shared as-is (`Arc` clones).
/// Records the `store.compact_ns` histogram.
pub fn compact(set: &LayerSet, delta: &DeltaSet) -> Result<LayerSet, StoreError> {
    let started = Instant::now();
    let mut layers: Vec<Layer> = Vec::with_capacity(set.len());
    for layer in set.layers() {
        match delta.layer_delta(layer.name()) {
            None => layers.push(layer.clone()),
            Some(d) => layers.push(compact_layer(layer, d)?),
        }
    }
    let out = LayerSet::from_layers(set.uri(), layers)?;
    MetricsRegistry::global().record(
        "store.compact_ns",
        started.elapsed().as_nanos().min(u64::MAX as u128) as u64,
    );
    Ok(out)
}

fn compact_layer(layer: &Layer, delta: &LayerDelta) -> Result<Layer, StoreError> {
    let doc = layer.doc();
    // Element pres whose subtrees the rebuild skips. Matching is
    // re-derived here (not taken from `retracted_pres`) because the copy
    // needs subtree *roots*, not the expanded node set.
    let mut dropped: Vec<u32> = Vec::new();
    for (name, start, end) in delta.retracts() {
        for &pre in doc.elements_named(name) {
            if annotation_matches(layer, pre, *start, *end) {
                dropped.push(pre);
            }
        }
    }
    dropped.sort_unstable();
    dropped.dedup();

    let root = root_element_name(doc)
        .ok_or_else(|| StoreError::Delta("layer document has no root element".into()))?;
    let mut b = DocumentBuilder::with_capacity(doc.node_count());
    if let Some(uri) = doc.uri() {
        b.uri(uri);
    }
    let mut inserted_at_root = false;
    // Walk the old document's tree nodes in pre order with an explicit
    // end-stack (the builder wants explicit end_element calls), skipping
    // dropped subtrees whole.
    let mut open: Vec<u32> = Vec::new();
    let mut pre: u32 = 1; // 0 is the document node
    let last = doc.node_count() as u32 - 1;
    while pre <= last {
        while let Some(&top) = open.last() {
            if pre > top + doc.size(top) {
                // Closing the root element? Append the inserts first —
                // that is where compaction and the merge-on-read sibling
                // document agree to put them.
                if open.len() == 1 && !inserted_at_root {
                    for a in delta.inserts() {
                        append_insert(&mut b, a, layer.config());
                    }
                    inserted_at_root = true;
                }
                b.end_element();
                open.pop();
            } else {
                break;
            }
        }
        if dropped.binary_search(&pre).is_ok() {
            pre += doc.size(pre) + 1;
            continue;
        }
        match doc.kind(pre) {
            NodeKind::Element => {
                let name = doc.names().lexical(doc.name_id(pre));
                b.start_element(&name);
                for attr in doc.attributes(pre) {
                    let a = attr.attr_index().expect("attribute node");
                    b.attribute(&doc.names().lexical(doc.attr_name_id(a)), doc.attr_value(a));
                }
                open.push(pre);
            }
            NodeKind::Text => {
                b.text(doc.value(pre));
            }
            NodeKind::Comment => {
                b.comment(doc.value(pre));
            }
            NodeKind::Pi => {
                b.pi(&doc.names().lexical(doc.name_id(pre)), doc.value(pre));
            }
            NodeKind::Document => unreachable!("document node inside the tree"),
        }
        pre += 1;
    }
    while let Some(top) = open.pop() {
        if open.is_empty() && !inserted_at_root {
            for a in delta.inserts() {
                append_insert(&mut b, a, layer.config());
            }
            inserted_at_root = true;
        }
        let _ = top;
        b.end_element();
    }
    debug_assert!(inserted_at_root || delta.inserts().is_empty() || root.is_empty());
    let doc = b
        .finish()
        .map_err(|e| StoreError::Delta(format!("compacted document: {e}")))?;
    Layer::build(layer.name(), doc, layer.config().clone())
}

/// Does the annotation element `pre` of `layer` carry the region
/// `[start, end]`? (Any one region equal — in the attribute
/// representation annotations have exactly one.)
fn annotation_matches(layer: &Layer, pre: u32, start: i64, end: i64) -> bool {
    layer
        .index()
        .regions_of(pre)
        .iter()
        .any(|r| r.start == start && r.end == end)
}

fn append_insert(b: &mut DocumentBuilder, a: &DeltaAnnotation, config: &StandoffConfig) {
    b.start_element(&a.name);
    b.attribute(&config.start_name, &a.start.to_string());
    b.attribute(&config.end_name, &a.end.to_string());
    for (k, v) in &a.attrs {
        b.attribute(k, v);
    }
    b.end_element();
}

fn root_element_name(doc: &Document) -> Option<String> {
    doc.children(0)
        .find(|&c| doc.kind(c) == NodeKind::Element)
        .map(|c| doc.names().lexical(doc.name_id(c)))
}

fn check_token(s: &str, what: &str) -> Result<(), StoreError> {
    let bad = s.is_empty()
        || s.chars()
            .any(|c| c.is_whitespace() || matches!(c, '<' | '>' | '"' | '\'' | '=' | '/' | '&'));
    if bad {
        Err(StoreError::Delta(format!("bad {what}: {s:?}")))
    } else {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Sidecar text format
// ---------------------------------------------------------------------

/// Parse the delta sidecar text format, one op per line:
///
/// ```text
/// # comment / blank lines ignored
/// insert  <layer> <name> <start> <end> [k=v ...]
/// retract <layer> <name> <start> <end>
/// ```
///
/// Tokens are whitespace-separated; names and values must therefore be
/// whitespace-free (enforced again at [`DeltaSet::apply`] time).
pub fn parse_ops(text: &str) -> Result<Vec<DeltaOp>, StoreError> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tok = line.split_whitespace();
        let op = tok.next().unwrap();
        let bad = |msg: &str| {
            StoreError::Delta(format!("line {}: {} in {:?}", lineno + 1, msg, raw.trim()))
        };
        let mut field = |what: &str| tok.next().map(str::to_string).ok_or_else(|| bad(what));
        let layer = field("missing layer")?;
        let name = field("missing element name")?;
        let start: i64 = field("missing start")?
            .parse()
            .map_err(|_| bad("bad start position"))?;
        let end: i64 = field("missing end")?
            .parse()
            .map_err(|_| bad("bad end position"))?;
        match op {
            "insert" => {
                let mut attrs = Vec::new();
                for kv in tok {
                    let (k, v) = kv.split_once('=').ok_or_else(|| bad("attribute not k=v"))?;
                    attrs.push((k.to_string(), v.to_string()));
                }
                out.push(DeltaOp::Insert {
                    layer,
                    name,
                    start,
                    end,
                    attrs,
                });
            }
            "retract" => {
                if tok.next().is_some() {
                    return Err(bad("trailing tokens after retract"));
                }
                out.push(DeltaOp::Retract {
                    layer,
                    name,
                    start,
                    end,
                });
            }
            other => return Err(bad(&format!("unknown op {other:?}"))),
        }
    }
    Ok(out)
}

/// Serialize ops into the sidecar text format ([`parse_ops`] inverse).
pub fn ops_to_text(ops: &[DeltaOp]) -> String {
    let mut out = String::new();
    for op in ops {
        match op {
            DeltaOp::Insert {
                layer,
                name,
                start,
                end,
                attrs,
            } => {
                out.push_str(&format!("insert {layer} {name} {start} {end}"));
                for (k, v) in attrs {
                    out.push_str(&format!(" {k}={v}"));
                }
                out.push('\n');
            }
            DeltaOp::Retract {
                layer,
                name,
                start,
                end,
            } => {
                out.push_str(&format!("retract {layer} {name} {start} {end}\n"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use standoff_xml::parse_document;

    fn sample_set() -> LayerSet {
        let base = parse_document(r#"<text>hello stand-off world</text>"#).unwrap();
        let mut set = LayerSet::build("mem://sample", base, StandoffConfig::default()).unwrap();
        let tokens = parse_document(
            r#"<tokens>
                 <w start="0" end="4" kind="word"/>
                 <w start="6" end="14" kind="word"/>
                 <w start="16" end="20" kind="word"/>
               </tokens>"#,
        )
        .unwrap();
        set.add_layer("tokens", tokens, StandoffConfig::default())
            .unwrap();
        set
    }

    fn insert(layer: &str, name: &str, start: i64, end: i64) -> DeltaOp {
        DeltaOp::Insert {
            layer: layer.into(),
            name: name.into(),
            start,
            end,
            attrs: vec![],
        }
    }

    fn retract(layer: &str, name: &str, start: i64, end: i64) -> DeltaOp {
        DeltaOp::Retract {
            layer: layer.into(),
            name: name.into(),
            start,
            end,
        }
    }

    #[test]
    fn apply_validates_layers_and_regions() {
        let set = sample_set();
        let mut delta = DeltaSet::new();
        assert!(delta.apply(insert("nope", "w", 0, 1), &set).is_err());
        assert!(delta.apply(insert("base", "w", 0, 1), &set).is_err());
        assert!(delta.apply(insert("tokens", "w", 5, 1), &set).is_err());
        assert!(delta
            .apply(
                DeltaOp::Insert {
                    layer: "tokens".into(),
                    name: "w".into(),
                    start: 0,
                    end: 1,
                    attrs: vec![("start".into(), "7".into())],
                },
                &set
            )
            .is_err());
        assert!(delta.apply(retract("tokens", "w", 1, 2), &set).is_err());
        assert!(delta.is_empty());

        delta.apply(insert("tokens", "ner", 6, 14), &set).unwrap();
        delta.apply(retract("tokens", "w", 0, 4), &set).unwrap();
        assert_eq!(delta.insert_count(), 1);
        assert_eq!(delta.retract_count(), 1);
        // Double retract of the same annotation is rejected.
        assert!(delta.apply(retract("tokens", "w", 0, 4), &set).is_err());
    }

    #[test]
    fn retract_cancels_pending_insert() {
        let set = sample_set();
        let mut delta = DeltaSet::new();
        delta.apply(insert("tokens", "ner", 6, 14), &set).unwrap();
        delta.apply(retract("tokens", "ner", 6, 14), &set).unwrap();
        assert!(delta.is_empty());
        assert_eq!(delta.retract_count(), 0);
    }

    #[test]
    fn retracted_pres_cover_whole_subtrees() {
        let base = parse_document("<t>abcdef</t>").unwrap();
        let mut set = LayerSet::build("mem://sub", base, StandoffConfig::default()).unwrap();
        let spans = parse_document(
            r#"<spans><s start="0" end="2"><note>n</note></s><s start="3" end="5"/></spans>"#,
        )
        .unwrap();
        set.add_layer("spans", spans, StandoffConfig::default())
            .unwrap();
        let mut delta = DeltaSet::new();
        delta.apply(retract("spans", "s", 0, 2), &set).unwrap();
        let layer = set.layer("spans").unwrap();
        let hidden = delta.layer_delta("spans").unwrap().retracted_pres(layer);
        let s = layer.doc().elements_named("s")[0];
        let mut expect: Vec<u32> = vec![s];
        expect.extend(layer.doc().descendants(s));
        assert_eq!(hidden, expect);
        assert!(hidden.len() >= 3, "element, child element, text");
    }

    #[test]
    fn compact_folds_inserts_and_retracts() {
        let set = sample_set();
        let mut delta = DeltaSet::new();
        delta
            .apply(
                DeltaOp::Insert {
                    layer: "tokens".into(),
                    name: "ner".into(),
                    start: 6,
                    end: 14,
                    attrs: vec![("class".into(), "MISC".into())],
                },
                &set,
            )
            .unwrap();
        delta.apply(retract("tokens", "w", 0, 4), &set).unwrap();
        let folded = compact(&set, &delta).unwrap();
        // Base untouched — shares the exact document.
        assert!(std::sync::Arc::ptr_eq(
            &set.base().doc_arc(),
            &folded.base().doc_arc()
        ));
        let tokens = folded.layer("tokens").unwrap();
        assert_eq!(tokens.doc().elements_named("w").len(), 2);
        let ner = tokens.doc().elements_named("ner");
        assert_eq!(ner.len(), 1);
        assert_eq!(tokens.doc().attribute(ner[0], "class"), Some("MISC"));
        assert_eq!(tokens.doc().attribute(ner[0], "start"), Some("6"));
        // Inserts land after the surviving originals, as root children.
        let last_w = tokens.doc().elements_named("w")[1];
        assert!(ner[0] > last_w);
        // The rebuilt layer re-validated: index covers 2 + 1 annotations.
        assert_eq!(tokens.annotation_count(), 3);
    }

    #[test]
    fn compact_without_delta_shares_layers() {
        let set = sample_set();
        let folded = compact(&set, &DeltaSet::new()).unwrap();
        for (a, b) in set.layers().iter().zip(folded.layers()) {
            assert!(std::sync::Arc::ptr_eq(&a.doc_arc(), &b.doc_arc()));
        }
    }

    #[test]
    fn sidecar_text_roundtrip() {
        let text = "# delta\ninsert tokens ner 6 14 class=MISC\nretract tokens w 0 4\n";
        let ops = parse_ops(text).unwrap();
        assert_eq!(ops.len(), 2);
        assert_eq!(
            ops[0],
            DeltaOp::Insert {
                layer: "tokens".into(),
                name: "ner".into(),
                start: 6,
                end: 14,
                attrs: vec![("class".into(), "MISC".into())],
            }
        );
        let round = ops_to_text(&ops);
        assert_eq!(parse_ops(&round).unwrap(), ops);
        assert!(parse_ops("insert tokens w 0\n").is_err());
        assert!(parse_ops("frobnicate tokens w 0 4\n").is_err());
        assert!(parse_ops("retract tokens w 0 4 extra\n").is_err());
    }

    #[test]
    fn insert_doc_mirrors_compaction_shape() {
        let set = sample_set();
        let mut delta = DeltaSet::new();
        delta.apply(insert("tokens", "ner", 6, 14), &set).unwrap();
        let layer = set.layer("tokens").unwrap();
        let doc = delta
            .layer_delta("tokens")
            .unwrap()
            .insert_doc(layer)
            .unwrap()
            .unwrap();
        // Root carries the layer root's name; one child per insert.
        let roots = doc.elements_named("tokens");
        assert_eq!(roots.len(), 1);
        assert_eq!(doc.elements_named("ner").len(), 1);
        // Retract-only deltas need no sibling document.
        let mut d2 = DeltaSet::new();
        d2.apply(retract("tokens", "w", 0, 4), &set).unwrap();
        assert!(d2
            .layer_delta("tokens")
            .unwrap()
            .insert_doc(layer)
            .unwrap()
            .is_none());
    }
}
