//! Delta write-ahead log.
//!
//! A sidecar (`corpus.delta`) is a *checkpoint*: the full overlay state
//! as plain-text ops. The WAL (`corpus.delta.wal`) is an append-only
//! journal of the batches applied *since* that checkpoint. A writer
//! appends + fsyncs the batch before making it visible, so a batch
//! whose append returned is durable across SIGKILL; readers replay
//! checkpoint + journal to reconstruct the committed state.
//!
//! ## On-disk format
//!
//! ```text
//! header:  "SOWL" | u32 version (=1)                      (8 bytes)
//! record:  u32 payload_len | u64 seq | u32 payload_crc
//!          | u32 header_crc | payload                     (20 + len bytes)
//! ```
//!
//! All integers little-endian. `payload` is the batch as sidecar ops
//! text (see [`crate::delta::parse_ops`]). `seq` starts at 1 and is
//! strictly increasing within a file. `header_crc` is the CRC32 of the
//! first 16 header bytes; `payload_crc` covers the payload. The header
//! CRC matters: without it, a bit flip in a mid-file `payload_len`
//! would make the record appear to extend past EOF and a recovery pass
//! would silently truncate *committed* later batches. With it, a
//! damaged header is always categorized corruption, and "extends past
//! EOF" with a *valid* header can only mean a torn append.
//!
//! ## Recovery semantics
//!
//! * A record whose frame runs past EOF (with a valid or incomplete
//!   header) is a **torn tail**: the append never completed, so the
//!   batch was never committed. Writer-mode recovery truncates it and
//!   records `store.wal.torn_tail`; read-only scans report it.
//! * A *complete* record that fails its CRC (header or payload), or a
//!   non-monotonic `seq`, is **corruption** — data that was once
//!   committed is damaged — and surfaces as
//!   [`StoreError::Corrupt`], never a silent truncation.
//!
//! ## Checkpoint high-water mark
//!
//! Folding the journal into a rewritten sidecar has an unavoidable
//! window: the checkpoint rename can land while the journal truncation
//! hasn't — and replaying already-folded batches is not idempotent
//! (re-retracts error, re-inserts duplicate). Checkpoint writers
//! therefore stamp the sidecar with [`checkpoint_marker`] (an ops-text
//! comment recording the last folded `seq`), recovery skips journal
//! records with `seq <=` [`checkpointed_seq`], and writers call
//! [`DeltaWal::ensure_seq_above`] with that mark so post-checkpoint
//! batches always sequence above it.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use standoff_core::crc::crc32;
use standoff_core::{fault, MetricsRegistry};

use crate::error::StoreError;

const WAL_MAGIC: &[u8; 4] = b"SOWL";
const WAL_VERSION: u32 = 1;
const HEADER_BYTES: usize = 8;
const RECORD_HEADER_BYTES: usize = 20;

/// One committed batch recovered from the journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotonic batch sequence number (1-based within the file).
    pub seq: u64,
    /// The batch as sidecar ops text.
    pub ops: String,
}

/// Result of a read-only [`DeltaWal::scan`].
#[derive(Clone, Debug, Default)]
pub struct WalScan {
    /// Committed batches, in append order.
    pub records: Vec<WalRecord>,
    /// A torn (partially-appended) final record was found after the
    /// valid prefix. Read-only scans leave it in place; writer-mode
    /// [`DeltaWal::open`] truncates it.
    pub torn_tail: bool,
    /// Length of the valid prefix in bytes (header included).
    pub valid_bytes: u64,
}

/// Append handle over a `<sidecar>.wal` journal.
#[derive(Debug)]
pub struct DeltaWal {
    file: File,
    path: PathBuf,
    next_seq: u64,
    end: u64,
    sync: bool,
}

/// The journal path belonging to a sidecar: `<sidecar>.wal`.
pub fn wal_path(sidecar: &Path) -> PathBuf {
    let mut name = sidecar.as_os_str().to_os_string();
    name.push(".wal");
    PathBuf::from(name)
}

/// The sidecar comment line a checkpoint writer prepends to record the
/// last journal `seq` folded into the checkpoint (`parse_ops` skips
/// `#` lines, so old readers are unaffected).
pub fn checkpoint_marker(seq: u64) -> String {
    format!("# wal-checkpoint-seq {seq}\n")
}

/// The checkpoint high-water mark recorded in sidecar ops text, or 0
/// if none: journal records with `seq` at or below it are already part
/// of the checkpoint and must not replay again.
pub fn checkpointed_seq(sidecar_text: &str) -> u64 {
    sidecar_text
        .lines()
        .map(str::trim)
        .take_while(|l| l.is_empty() || l.starts_with('#'))
        .find_map(|l| l.strip_prefix("# wal-checkpoint-seq "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

fn read_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().unwrap())
}

fn read_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().unwrap())
}

/// Parse journal bytes into the committed prefix. Shared by the
/// read-only scan and writer-mode recovery.
fn parse(bytes: &[u8], source: &Path) -> Result<WalScan, StoreError> {
    let label = source.display();
    if bytes.is_empty() {
        // Absent or just-created journal: empty committed prefix.
        return Ok(WalScan {
            valid_bytes: 0,
            ..WalScan::default()
        });
    }
    if bytes.len() < HEADER_BYTES {
        // A torn creation: the 8-byte header itself never finished.
        return Ok(WalScan {
            torn_tail: true,
            valid_bytes: 0,
            ..WalScan::default()
        });
    }
    if &bytes[..4] != WAL_MAGIC {
        return Err(StoreError::corrupt(
            format!("wal {label}"),
            "bad magic (not a SOWL journal)",
        ));
    }
    let version = read_u32(bytes, 4);
    if version != WAL_VERSION {
        return Err(StoreError::corrupt(
            format!("wal {label}"),
            format!("unsupported journal version {version}"),
        ));
    }
    let mut scan = WalScan {
        valid_bytes: HEADER_BYTES as u64,
        ..WalScan::default()
    };
    let mut at = HEADER_BYTES;
    let mut prev_seq = 0u64;
    while at < bytes.len() {
        let remaining = bytes.len() - at;
        if remaining < RECORD_HEADER_BYTES {
            // Partially-written record header: torn tail by definition
            // (appends are sequential, so nothing can follow it).
            scan.torn_tail = true;
            return Ok(scan);
        }
        let len = read_u32(bytes, at) as usize;
        let seq = read_u64(bytes, at + 4);
        let payload_crc = read_u32(bytes, at + 12);
        let header_crc = read_u32(bytes, at + 16);
        let computed_header = crc32(&bytes[at..at + 16]);
        if computed_header != header_crc {
            return Err(StoreError::corrupt(
                format!("wal {label} record {}", prev_seq + 1),
                format!(
                    "header checksum mismatch: stored {header_crc:#010x}, computed {computed_header:#010x}"
                ),
            ));
        }
        // Header is intact, so `len` can be trusted: a frame running
        // past EOF is a torn payload, nothing after it can be valid.
        if remaining - RECORD_HEADER_BYTES < len {
            scan.torn_tail = true;
            return Ok(scan);
        }
        let payload = &bytes[at + RECORD_HEADER_BYTES..at + RECORD_HEADER_BYTES + len];
        let computed_payload = crc32(payload);
        if computed_payload != payload_crc {
            return Err(StoreError::corrupt(
                format!("wal {label} record {seq}"),
                format!(
                    "payload checksum mismatch: stored {payload_crc:#010x}, computed {computed_payload:#010x}"
                ),
            ));
        }
        if seq <= prev_seq {
            return Err(StoreError::corrupt(
                format!("wal {label} record {seq}"),
                format!("non-monotonic sequence (previous {prev_seq})"),
            ));
        }
        let ops = String::from_utf8(payload.to_vec()).map_err(|_| {
            StoreError::corrupt(
                format!("wal {label} record {seq}"),
                "payload is not valid UTF-8",
            )
        })?;
        prev_seq = seq;
        at += RECORD_HEADER_BYTES + len;
        scan.valid_bytes = at as u64;
        scan.records.push(WalRecord { seq, ops });
    }
    Ok(scan)
}

impl DeltaWal {
    /// Open (creating if absent) the journal at `path` for appending,
    /// recovering the committed prefix. A torn tail is truncated away
    /// (metric `store.wal.torn_tail`); complete-but-damaged records are
    /// [`StoreError::Corrupt`].
    pub fn open(path: &Path) -> Result<(DeltaWal, Vec<WalRecord>), StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let scan = parse(&bytes, path)?;
        let registry = MetricsRegistry::global();
        let mut end = scan.valid_bytes;
        if scan.torn_tail {
            registry.add("store.wal.torn_tail", 1);
            fault::point("store.wal.recover.before_truncate");
            file.set_len(scan.valid_bytes)?;
            file.sync_all()?;
        }
        if end < HEADER_BYTES as u64 {
            // Fresh journal (or one whose own header was torn mid-
            // creation — nothing was committed): stamp the header so
            // even an empty WAL is self-identifying.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(WAL_MAGIC)?;
            file.write_all(&WAL_VERSION.to_le_bytes())?;
            file.sync_all()?;
            crate::atomic::sync_parent_dir(path);
            end = HEADER_BYTES as u64;
        }
        registry.add("store.wal.replayed", scan.records.len() as u64);
        let next_seq = scan.records.last().map(|r| r.seq).unwrap_or(0) + 1;
        Ok((
            DeltaWal {
                file,
                path: path.to_path_buf(),
                next_seq,
                end,
                sync: true,
            },
            scan.records,
        ))
    }

    /// Read-only scan of the journal at `path`. A missing file is an
    /// empty journal; a torn tail is reported, not repaired.
    pub fn scan(path: &Path) -> Result<WalScan, StoreError> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(StoreError::Io(e)),
        };
        parse(&bytes, path)
    }

    /// Disable the per-append fsync (benchmarking the fsync cost; a
    /// production writer keeps it on).
    pub fn set_sync(&mut self, sync: bool) {
        self.sync = sync;
    }

    /// Path this journal lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The highest sequence number this handle has seen or will reuse
    /// (0 on an empty journal): the value a checkpoint writer records
    /// via [`checkpoint_marker`].
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Raise the next sequence number above `seq`. Checkpoint-aware
    /// writers call this with [`checkpointed_seq`] after opening, so a
    /// journal truncated by an earlier checkpoint never re-issues
    /// sequence numbers the checkpoint already covers.
    pub fn ensure_seq_above(&mut self, seq: u64) {
        self.next_seq = self.next_seq.max(seq + 1);
    }

    /// Append one batch (as sidecar ops text) and fsync it. When this
    /// returns `Ok(seq)`, the batch is durable: SIGKILL at any later
    /// instant leaves it recoverable.
    pub fn append(&mut self, ops_text: &str) -> Result<u64, StoreError> {
        fault::point("store.wal.append.start");
        let payload = ops_text.as_bytes();
        let seq = self.next_seq;
        let mut frame = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        let header_crc = crc32(&frame[..16]);
        frame.extend_from_slice(&header_crc.to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.seek(SeekFrom::Start(self.end))?;
        self.file.write_all(&frame)?;
        fault::point("store.wal.append.before_sync");
        if self.sync {
            self.file.sync_all()?;
        }
        fault::point("store.wal.append.after_sync");
        self.end += frame.len() as u64;
        self.next_seq = seq + 1;
        MetricsRegistry::global().add("store.wal.appends", 1);
        Ok(seq)
    }

    /// Checkpoint: drop every journaled batch (the caller has folded
    /// them into the sidecar or a fresh snapshot). Sequence numbers
    /// keep climbing — a later batch must never reuse a `seq` a
    /// checkpoint marker already covers.
    pub fn truncate(&mut self) -> Result<(), StoreError> {
        fault::point("store.wal.truncate.start");
        self.file.set_len(HEADER_BYTES as u64)?;
        self.file.sync_all()?;
        self.end = HEADER_BYTES as u64;
        MetricsRegistry::global().add("store.wal.truncations", 1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("standoff-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("corpus.delta.wal")
    }

    fn cleanup(path: &Path) {
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn append_and_reopen_round_trips() {
        let path = temp_wal("roundtrip");
        let (mut wal, recovered) = DeltaWal::open(&path).unwrap();
        assert!(recovered.is_empty());
        assert_eq!(wal.append("insert tokens w 0 5\n").unwrap(), 1);
        assert_eq!(wal.append("insert tokens w 6 9\n").unwrap(), 2);
        drop(wal);
        let (_wal, recovered) = DeltaWal::open(&path).unwrap();
        assert_eq!(
            recovered,
            vec![
                WalRecord {
                    seq: 1,
                    ops: "insert tokens w 0 5\n".into()
                },
                WalRecord {
                    seq: 2,
                    ops: "insert tokens w 6 9\n".into()
                },
            ]
        );
        cleanup(&path);
    }

    #[test]
    fn truncation_at_every_byte_recovers_committed_prefix() {
        let path = temp_wal("sweep");
        let (mut wal, _) = DeltaWal::open(&path).unwrap();
        let batches = [
            "insert tokens w 0 5\n",
            "insert tokens w 6 9\ninsert tokens w 10 12\n",
            "retract tokens w 0 5\n",
        ];
        let mut ends = vec![HEADER_BYTES as u64];
        for b in &batches {
            wal.append(b).unwrap();
            ends.push(wal.end);
        }
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        let torn = path.parent().unwrap().join("torn.wal");
        for cut in 0..full.len() {
            std::fs::write(&torn, &full[..cut]).unwrap();
            let (_w, recovered) = DeltaWal::open(&torn).unwrap_or_else(|e| {
                panic!("cut at {cut}: recovery must succeed, got {e}");
            });
            // The committed prefix is exactly the records whose frames
            // fit inside the cut (`ends[0]` is the bare file header).
            let expect = ends
                .iter()
                .filter(|&&e| e <= cut as u64)
                .count()
                .saturating_sub(1);
            assert_eq!(recovered.len(), expect, "cut at {cut}");
            for (k, rec) in recovered.iter().enumerate() {
                assert_eq!(rec.ops, batches[k], "cut at {cut}");
            }
            // Recovery truncated the tail: reopening is clean.
            let scan = DeltaWal::scan(&torn).unwrap();
            assert!(!scan.torn_tail, "cut at {cut}: tail must be repaired");
            assert_eq!(scan.records.len(), expect);
        }
        cleanup(&path);
    }

    #[test]
    fn mid_file_bit_flips_are_categorized_corruption() {
        let path = temp_wal("flips");
        let (mut wal, _) = DeltaWal::open(&path).unwrap();
        wal.append("insert tokens w 0 5\n").unwrap();
        wal.append("insert tokens w 6 9\n").unwrap();
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        let bent = path.parent().unwrap().join("bent.wal");
        for at in HEADER_BYTES..full.len() {
            let mut bytes = full.clone();
            bytes[at] ^= 0x40;
            std::fs::write(&bent, &bytes).unwrap();
            let scan = DeltaWal::scan(&bent);
            match scan {
                Err(StoreError::Corrupt { .. }) => {}
                Ok(s) => panic!(
                    "flip at {at}: silently accepted ({} records, torn={})",
                    s.records.len(),
                    s.torn_tail
                ),
                Err(other) => panic!("flip at {at}: wrong category {other}"),
            }
        }
        cleanup(&path);
    }

    #[test]
    fn truncate_checkpoints_and_seq_stays_monotonic() {
        let path = temp_wal("checkpoint");
        let (mut wal, _) = DeltaWal::open(&path).unwrap();
        wal.append("insert tokens w 0 5\n").unwrap();
        wal.truncate().unwrap();
        // Post-checkpoint batches sequence above everything folded.
        assert_eq!(wal.append("insert tokens w 6 9\n").unwrap(), 2);
        drop(wal);
        let (_w, recovered) = DeltaWal::open(&path).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].ops, "insert tokens w 6 9\n");
        assert_eq!(recovered[0].seq, 2);
        cleanup(&path);
    }

    #[test]
    fn checkpoint_marker_round_trips_and_defaults_to_zero() {
        assert_eq!(checkpointed_seq(&checkpoint_marker(17)), 17);
        assert_eq!(
            checkpointed_seq(&format!("{}insert tokens w 0 5\n", checkpoint_marker(3))),
            3
        );
        assert_eq!(checkpointed_seq("insert tokens w 0 5\n"), 0);
        // Only the leading comment block is scanned: ops text that
        // merely *contains* the phrase later doesn't count.
        assert_eq!(
            checkpointed_seq("insert tokens w 0 5\n# wal-checkpoint-seq 9\n"),
            0
        );
    }

    #[test]
    fn ensure_seq_above_prevents_reuse_after_external_checkpoint() {
        let path = temp_wal("hwm");
        let (mut wal, _) = DeltaWal::open(&path).unwrap();
        wal.append("insert tokens w 0 5\n").unwrap();
        wal.append("insert tokens w 6 9\n").unwrap();
        drop(wal);
        // A checkpoint folded seqs 1..=2 and truncated; a *new process*
        // reopens the empty journal and must sequence above the mark.
        let (mut wal, recovered) = DeltaWal::open(&path).unwrap();
        wal.truncate().unwrap();
        drop((wal, recovered));
        let (mut wal, recovered) = DeltaWal::open(&path).unwrap();
        assert!(recovered.is_empty());
        wal.ensure_seq_above(2);
        assert_eq!(wal.append("insert tokens w 10 12\n").unwrap(), 3);
        cleanup(&path);
    }

    #[test]
    fn scan_of_missing_file_is_empty() {
        let path = temp_wal("missing");
        let scan = DeltaWal::scan(&path).unwrap();
        assert!(scan.records.is_empty());
        assert!(!scan.torn_tail);
        cleanup(&path);
    }
}
