//! SOSN v3/v4: the sectioned, offset-indexed columnar snapshot format
//! that is *mounted*, not decoded.
//!
//! Layout (little-endian):
//!
//! ```text
//! 0   magic "SOSN" | u32 version = 3 or 4 | u32 section-count | u32 reserved
//! 16  section table: section-count × (u32 tag | u32 layer | u64 offset | u64 length)
//! …   payloads, each padded to 8-byte alignment, in table order
//! ```
//!
//! Version 4 files additionally carry a CHECKSUMS section (tag 40, the
//! last section): `(u32 tag | u32 layer | u32 crc32)` per *other*
//! section, covering that section's exact payload bytes. Opening a v4
//! file verifies only the tiny eagerly-decoded sections (META, layer
//! headers) plus the checksum table's structure — the lazy-mount hot
//! path never hashes bulk columns. A layer's column checksums are
//! verified the first time the layer is materialized; a mismatch is a
//! categorized [`StoreError::Corrupt`], never a panic. Unchecksummed
//! v3 files remain fully readable (and writable, for comparison
//! benchmarks) — they simply skip verification.
//!
//! Offsets are absolute file positions. Per-layer payloads are one
//! section per *column* — the document's `kind`/`size`/`level`/`parent`/
//! `name` columns, string-arena heaps and offsets, the attribute table,
//! the element-name CSR, and the region index's entry/node/CSR/region
//! columns. [`Snapshot::open`] reads the file into one shared
//! buffer and walks only the section table plus the tiny
//! META/LAYER_HDR payloads; a layer's columns become zero-copy typed
//! views ([`standoff_xml::column::PodCol`]) the first time the layer is
//! accessed — documents and region indexes are *realized lazily* and
//! cached, so `inspect` and single-layer workloads never pay for
//! untouched siblings. All structural invariants the eager decoders
//! enforced are re-validated at materialization time (the query
//! optimizer's post-filter elision relies on them).
//!
//! Alignment padding is an optimization, not an obligation: a misaligned
//! (or big-endian) mount transparently decodes the affected column into
//! owned storage with identical semantics.

use std::collections::HashMap;
use std::io::{self, Write};
use std::ops::Range;
use std::path::Path;
use std::sync::{Arc, OnceLock};

use standoff_core::{RegionIndex, StandoffConfig};
use standoff_xml::column::{write_slice_le, PodCol, SharedBytes, StrArena};
use standoff_xml::{Document, DocumentParts, ElemIndex, KindCol, NameId, NameTable, NodeKind};

use crate::error::StoreError;
use crate::layer::{Layer, LayerSet, BASE_LAYER};
use crate::snapshot::{
    bad, read_config, read_snapshot_legacy_with_info, write_config, LayerInfo, SectionInfo,
    SnapshotInfo, MAGIC, VERSION_LEGACY, VERSION_V3, VERSION_V4,
};

use standoff_core::crc::{crc32, Crc32};

use standoff_core::obs::MetricsRegistry;

use standoff_xml::wire::{read_string, read_u32, read_u64, read_u8, write_string, write_u32};

// ---- section tags ----

pub(crate) const SEC_META: u32 = 1;
pub(crate) const SEC_LAYER_HDR: u32 = 3;

const SEC_DOC_META: u32 = 10;
const SEC_DOC_KIND: u32 = 11;
const SEC_DOC_SIZE: u32 = 12;
const SEC_DOC_LEVEL: u32 = 13;
const SEC_DOC_PARENT: u32 = 14;
const SEC_DOC_NAME: u32 = 15;
const SEC_DOC_VAL_HEAP: u32 = 16;
const SEC_DOC_VAL_OFF: u32 = 17;
const SEC_DOC_ATTR_FIRST: u32 = 18;
const SEC_DOC_ATTR_OWNER: u32 = 19;
const SEC_DOC_ATTR_NAME: u32 = 20;
const SEC_DOC_ATTR_VAL_HEAP: u32 = 21;
const SEC_DOC_ATTR_VAL_OFF: u32 = 22;
const SEC_DOC_ELEM_NAMES: u32 = 23;
const SEC_DOC_ELEM_OFF: u32 = 24;
const SEC_DOC_ELEM_PRES: u32 = 25;
const SEC_RIDX_META: u32 = 30;
const SEC_RIDX_ENTRIES: u32 = 31;
const SEC_RIDX_NODE_IDS: u32 = 32;
const SEC_RIDX_NODE_OFF: u32 = 33;
const SEC_RIDX_REGIONS: u32 = 34;
/// v4 only: `(u32 tag | u32 layer | u32 crc32)` per other section.
pub(crate) const SEC_CHECKSUMS: u32 = 40;
/// Bytes per checksum-table entry.
const CHECKSUM_ENTRY_BYTES: usize = 12;

/// Stable human-readable name of a section tag — what
/// `standoff-xq inspect` prints next to per-section byte sizes.
pub(crate) fn section_name(tag: u32) -> &'static str {
    match tag {
        SEC_META => "meta",
        SEC_LAYER_HDR => "layer.header",
        SEC_DOC_META => "doc.meta",
        SEC_DOC_KIND => "doc.kind",
        SEC_DOC_SIZE => "doc.size",
        SEC_DOC_LEVEL => "doc.level",
        SEC_DOC_PARENT => "doc.parent",
        SEC_DOC_NAME => "doc.name",
        SEC_DOC_VAL_HEAP => "doc.value-heap",
        SEC_DOC_VAL_OFF => "doc.value-offsets",
        SEC_DOC_ATTR_FIRST => "doc.attr-first",
        SEC_DOC_ATTR_OWNER => "doc.attr-owner",
        SEC_DOC_ATTR_NAME => "doc.attr-name",
        SEC_DOC_ATTR_VAL_HEAP => "doc.attr-value-heap",
        SEC_DOC_ATTR_VAL_OFF => "doc.attr-value-offsets",
        SEC_DOC_ELEM_NAMES => "doc.elem-names",
        SEC_DOC_ELEM_OFF => "doc.elem-offsets",
        SEC_DOC_ELEM_PRES => "doc.elem-pres",
        SEC_RIDX_META => "ridx.meta",
        SEC_RIDX_ENTRIES => "ridx.entries",
        SEC_RIDX_NODE_IDS => "ridx.node-ids",
        SEC_RIDX_NODE_OFF => "ridx.node-offsets",
        SEC_RIDX_REGIONS => "ridx.regions",
        SEC_CHECKSUMS => "checksums",
        _ => "unknown",
    }
}

/// Fixed-size prelude: magic + version + section count + reserved.
pub(crate) const HEADER_BYTES: usize = 16;
/// Bytes per section-table entry.
pub(crate) const TABLE_ENTRY_BYTES: usize = 24;

#[inline]
fn align8(off: u64) -> u64 {
    off.div_ceil(8) * 8
}

// ---- writer ----

/// A pending section body: tiny metadata sections are pre-rendered,
/// bulk columns stay *borrowed* until the payload pass streams them —
/// saving never holds a second copy of the corpus.
enum Body<'a> {
    Rendered(Vec<u8>),
    Bytes(&'a [u8]),
    U16(&'a [u16]),
    U32(&'a [u32]),
    Entries(&'a [standoff_core::RegionEntry]),
    Regions(&'a [standoff_core::Region]),
}

impl Body<'_> {
    fn len(&self) -> u64 {
        match self {
            Body::Rendered(v) => v.len() as u64,
            Body::Bytes(s) => s.len() as u64,
            Body::U16(s) => s.len() as u64 * 2,
            Body::U32(s) => s.len() as u64 * 4,
            Body::Entries(s) => s.len() as u64 * 24,
            Body::Regions(s) => s.len() as u64 * 16,
        }
    }

    fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        match self {
            Body::Rendered(v) => w.write_all(v),
            Body::Bytes(s) => w.write_all(s),
            Body::U16(s) => write_slice_le(s, w),
            Body::U32(s) => write_slice_le(s, w),
            Body::Entries(s) => write_slice_le(s, w),
            Body::Regions(s) => write_slice_le(s, w),
        }
    }

    /// CRC32 of the exact bytes [`Body::write_to`] would emit, computed
    /// by streaming the body into a hashing sink (no buffering).
    fn crc(&self) -> u32 {
        let mut sink = CrcSink(Crc32::new());
        self.write_to(&mut sink).expect("hashing sink cannot fail");
        sink.0.finish()
    }
}

/// Recompute one section's CRC32 and compare against the recorded
/// value. `layer_label` is a layer ordinal or name for the error text.
fn check_crc(
    buf: &[u8],
    range: Range<usize>,
    expected: u32,
    section: &str,
    layer_label: Option<&str>,
) -> Result<(), StoreError> {
    let computed = crc32(&buf[range]);
    let registry = MetricsRegistry::global();
    if computed != expected {
        registry.add("store.verify.failures", 1);
        let what = match layer_label {
            Some(layer) => format!("section {section} (layer {layer})"),
            None => format!("section {section}"),
        };
        return Err(StoreError::corrupt(
            what,
            format!("checksum mismatch: stored {expected:#010x}, computed {computed:#010x}"),
        ));
    }
    registry.add("store.verify.sections_checked", 1);
    Ok(())
}

/// `Write` adapter that hashes instead of storing.
struct CrcSink(Crc32);

impl Write for CrcSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.update(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Serialize a layer set in the v3 columnar format *without* section
/// checksums — kept for compatibility fixtures and for benchmarking the
/// checksummed format against its baseline.
pub fn write_snapshot_v3<W: Write>(set: &LayerSet, w: &mut W) -> io::Result<()> {
    write_columnar(set, w, false)
}

/// Serialize a layer set in the current (v4) columnar format: v3's
/// layout plus a trailing CHECKSUMS section with a CRC32 per payload.
pub fn write_snapshot_v4<W: Write>(set: &LayerSet, w: &mut W) -> io::Result<()> {
    write_columnar(set, w, true)
}

fn write_columnar<W: Write>(set: &LayerSet, w: &mut W, checksums: bool) -> io::Result<()> {
    let mut sections: Vec<(u32, u32, Body<'_>)> = Vec::new();

    let mut meta = Vec::new();
    write_string(&mut meta, set.uri())?;
    write_u32(&mut meta, set.len() as u32)?;
    sections.push((SEC_META, 0, Body::Rendered(meta)));

    for (k, layer) in set.layers().iter().enumerate() {
        let k = k as u32;
        let doc = layer.doc().storage();
        let ridx = layer.index().storage();

        let mut hdr = Vec::new();
        write_string(&mut hdr, layer.name())?;
        write_config(&mut hdr, layer.config())?;
        standoff_xml::wire::write_u64(&mut hdr, doc.kind_bytes.len() as u64)?;
        standoff_xml::wire::write_u64(&mut hdr, doc.attr_owner.len() as u64)?;
        standoff_xml::wire::write_u64(&mut hdr, ridx.node_ids.len() as u64)?;
        standoff_xml::wire::write_u64(&mut hdr, ridx.entries.len() as u64)?;
        sections.push((SEC_LAYER_HDR, k, Body::Rendered(hdr)));

        let mut doc_meta = Vec::new();
        match layer.doc().uri() {
            Some(uri) => {
                doc_meta.push(1);
                write_string(&mut doc_meta, uri)?;
            }
            None => doc_meta.push(0),
        }
        write_u32(&mut doc_meta, doc.names.len() as u32)?;
        for id in 0..doc.names.len() as u32 {
            write_string(&mut doc_meta, &doc.names.lexical(NameId(id)))?;
        }
        sections.push((SEC_DOC_META, k, Body::Rendered(doc_meta)));

        sections.push((SEC_DOC_KIND, k, Body::Bytes(doc.kind_bytes)));
        sections.push((SEC_DOC_SIZE, k, Body::U32(doc.size)));
        sections.push((SEC_DOC_LEVEL, k, Body::U16(doc.level)));
        sections.push((SEC_DOC_PARENT, k, Body::U32(doc.parent)));
        sections.push((SEC_DOC_NAME, k, Body::U32(doc.name)));
        sections.push((SEC_DOC_VAL_HEAP, k, Body::Bytes(doc.values.heap_bytes())));
        sections.push((SEC_DOC_VAL_OFF, k, Body::U32(doc.values.offsets())));
        sections.push((SEC_DOC_ATTR_FIRST, k, Body::U32(doc.attr_first)));
        sections.push((SEC_DOC_ATTR_OWNER, k, Body::U32(doc.attr_owner)));
        sections.push((SEC_DOC_ATTR_NAME, k, Body::U32(doc.attr_name)));
        sections.push((
            SEC_DOC_ATTR_VAL_HEAP,
            k,
            Body::Bytes(doc.attr_values.heap_bytes()),
        ));
        sections.push((
            SEC_DOC_ATTR_VAL_OFF,
            k,
            Body::U32(doc.attr_values.offsets()),
        ));
        sections.push((SEC_DOC_ELEM_NAMES, k, Body::U32(&doc.elem.names)));
        sections.push((SEC_DOC_ELEM_OFF, k, Body::U32(&doc.elem.offsets)));
        sections.push((SEC_DOC_ELEM_PRES, k, Body::U32(&doc.elem.pres)));

        let mut ridx_meta = Vec::new();
        write_u32(&mut ridx_meta, ridx.max_regions)?;
        sections.push((SEC_RIDX_META, k, Body::Rendered(ridx_meta)));
        sections.push((SEC_RIDX_ENTRIES, k, Body::Entries(ridx.entries)));
        sections.push((SEC_RIDX_NODE_IDS, k, Body::U32(ridx.node_ids)));
        sections.push((SEC_RIDX_NODE_OFF, k, Body::U32(ridx.node_offsets)));
        sections.push((SEC_RIDX_REGIONS, k, Body::Regions(ridx.node_regions)));
    }

    if checksums {
        // One CRC32 per section, covering its exact payload bytes; the
        // checksum section itself is last and not self-covered.
        let mut payload = Vec::with_capacity(CHECKSUM_ENTRY_BYTES * sections.len());
        for (tag, layer, body) in &sections {
            payload.extend_from_slice(&tag.to_le_bytes());
            payload.extend_from_slice(&layer.to_le_bytes());
            payload.extend_from_slice(&body.crc().to_le_bytes());
        }
        sections.push((SEC_CHECKSUMS, 0, Body::Rendered(payload)));
    }

    // Lay out: header, table, 8-aligned payloads.
    w.write_all(MAGIC)?;
    write_u32(w, if checksums { VERSION_V4 } else { VERSION_V3 })?;
    write_u32(w, sections.len() as u32)?;
    write_u32(w, 0)?; // reserved (keeps the table 8-aligned)
    let mut cur = (HEADER_BYTES + TABLE_ENTRY_BYTES * sections.len()) as u64;
    let mut offsets = Vec::with_capacity(sections.len());
    for (tag, layer, body) in &sections {
        cur = align8(cur);
        offsets.push(cur);
        write_u32(w, *tag)?;
        write_u32(w, *layer)?;
        standoff_xml::wire::write_u64(w, cur)?;
        standoff_xml::wire::write_u64(w, body.len())?;
        cur += body.len();
    }
    let mut pos = (HEADER_BYTES + TABLE_ENTRY_BYTES * sections.len()) as u64;
    for ((_, _, body), off) in sections.iter().zip(offsets) {
        while pos < off {
            w.write_all(&[0])?;
            pos += 1;
        }
        body.write_to(w)?;
        pos += body.len();
    }
    Ok(())
}

// ---- mounted snapshot ----

/// One layer's mount state: header metadata (decoded at open), the
/// section map, and the lazily realized [`Layer`].
struct MountLayer {
    name: String,
    config: StandoffConfig,
    /// Declared counts from the layer header (v3) — what `inspect`
    /// reports without touching payloads.
    nodes: u64,
    attrs: u64,
    annotations: u64,
    entries: u64,
    /// Total payload bytes of this layer's sections.
    bytes: u64,
    sections: HashMap<u32, Range<usize>>,
    /// Per-section byte breakdown for `info()` (v3; empty for legacy).
    section_info: Vec<SectionInfo>,
    /// v4 only: `(tag, payload range, expected crc)` for every section
    /// of this layer still unverified at open — checked (once) when the
    /// layer is materialized.
    checks: Vec<(u32, Range<usize>, u32)>,
    cell: OnceLock<Arc<Layer>>,
}

/// A pending checksum verification: section identity, payload range,
/// recorded CRC32.
#[derive(Clone, Debug)]
struct SectionCheck {
    tag: u32,
    layer: u32,
    range: Range<usize>,
    crc: u32,
}

/// What [`Snapshot::verify`] / [`Snapshot::open_verified`] report back.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// On-disk format version.
    pub version: u32,
    /// Whether the file carries section checksums (v4).
    pub checksummed: bool,
    /// Layers materialized and revalidated.
    pub layers: usize,
    /// Section payloads whose CRC32 was recomputed and matched.
    pub sections_checked: usize,
}

/// A mounted snapshot file: one shared buffer, a parsed section table,
/// and per-layer lazily materialized [`Layer`]s.
///
/// Opening walks only the header, section table and the tiny
/// META/LAYER_HDR payloads. [`Snapshot::layer`] (or any engine mount)
/// realizes a layer's document and region index on first access —
/// zero-copy column views over the shared buffer, fully re-validated —
/// and caches the result, shared across every subsequent consumer.
///
/// Legacy (version 1) snapshot files open through the same type: they
/// are decoded eagerly by the streaming reader, so every accessor works
/// identically, just without the lazy/zero-copy economics.
pub struct Snapshot {
    buf: SharedBytes,
    version: u32,
    uri: String,
    payload_bytes: u64,
    layers: Vec<MountLayer>,
    /// v4 only: every section's pending/recorded checksum, for
    /// [`Snapshot::verify`]. Empty for v3/legacy files.
    checks: Vec<SectionCheck>,
}

impl Snapshot {
    /// Mount a snapshot file.
    pub fn open(path: impl AsRef<Path>) -> Result<Snapshot, StoreError> {
        let bytes = std::fs::read(path)?;
        Snapshot::mount_bytes(bytes)
    }

    /// Mount a snapshot file and eagerly verify everything — every
    /// section checksum, every layer materialized and revalidated —
    /// before returning. The `verify_all` open mode behind
    /// `standoff-xq verify`.
    pub fn open_verified(path: impl AsRef<Path>) -> Result<(Snapshot, VerifyReport), StoreError> {
        let snapshot = Snapshot::open(path)?;
        let report = snapshot.verify()?;
        Ok((snapshot, report))
    }

    /// Mount a snapshot from in-memory bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> io::Result<Snapshot> {
        Snapshot::mount_bytes(bytes).map_err(|e| match e {
            StoreError::Io(io) => io,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        })
    }

    /// [`Snapshot::from_bytes`] with categorized errors — corruption
    /// surfaces as [`StoreError::Corrupt`] rather than flattened into
    /// `io::Error`.
    pub fn mount_bytes(bytes: Vec<u8>) -> Result<Snapshot, StoreError> {
        // Mount timings go to the process-global registry: the store
        // crate has no engine to own a registry, and mounts are rare
        // enough that the global map lookup is immaterial.
        let started = std::time::Instant::now();
        let snapshot = Snapshot::from_bytes_inner(bytes)?;
        let registry = MetricsRegistry::global();
        registry.add("store.snapshots_opened", 1);
        registry.record(
            "store.snapshot_open_ns",
            started.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        );
        Ok(snapshot)
    }

    fn from_bytes_inner(bytes: Vec<u8>) -> Result<Snapshot, StoreError> {
        let buf: SharedBytes = Arc::new(bytes);
        if buf.len() < 8 {
            return Err(bad("truncated header").into());
        }
        if &buf[0..4] != MAGIC {
            return Err(bad("not a standoff snapshot (bad magic)").into());
        }
        let version = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
        match version {
            VERSION_LEGACY => Ok(Snapshot::from_legacy(&buf)?),
            VERSION_V3 | VERSION_V4 => Snapshot::from_columnar(buf, version),
            _ => Err(bad("unsupported snapshot version").into()),
        }
    }

    /// Legacy files: eager streaming decode; every cell starts filled.
    fn from_legacy(buf: &SharedBytes) -> io::Result<Snapshot> {
        let (set, info) = read_snapshot_legacy_with_info(&mut &buf[..])?;
        let (uri, layers) = set.into_layers();
        let layers = layers
            .into_iter()
            .zip(&info.layers)
            .map(|(layer, skim)| {
                let ml = MountLayer {
                    name: layer.name().to_string(),
                    config: layer.config().clone(),
                    nodes: layer.doc().node_count() as u64,
                    attrs: layer.doc().attr_count() as u64,
                    annotations: layer.annotation_count() as u64,
                    entries: layer.index().len() as u64,
                    bytes: skim.bytes,
                    sections: HashMap::new(),
                    section_info: Vec::new(),
                    checks: Vec::new(),
                    cell: OnceLock::new(),
                };
                let _ = ml.cell.set(Arc::new(layer));
                ml
            })
            .collect();
        Ok(Snapshot {
            buf: Arc::new(Vec::new()),
            version: VERSION_LEGACY,
            uri,
            payload_bytes: info.payload_bytes,
            layers,
            checks: Vec::new(),
        })
    }

    /// v3/v4 files: parse and validate the section table, decode only
    /// the META and LAYER_HDR payloads. For v4, parse the checksum
    /// table, verify the eagerly-decoded sections now, and stash the
    /// rest for lazy verification at materialization — bulk columns are
    /// never hashed on this path.
    fn from_columnar(buf: SharedBytes, version: u32) -> Result<Snapshot, StoreError> {
        if buf.len() < HEADER_BYTES {
            return Err(bad("truncated header").into());
        }
        let count = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes")) as usize;
        let table_end = HEADER_BYTES as u64 + TABLE_ENTRY_BYTES as u64 * count as u64;
        if table_end > buf.len() as u64 {
            return Err(bad("truncated section table").into());
        }
        // Parse the table; bounds-check every section.
        let mut table: Vec<(u32, u32, u64, u64)> = Vec::with_capacity(count.min(1 << 16));
        for k in 0..count {
            let at = HEADER_BYTES + TABLE_ENTRY_BYTES * k;
            let e = &buf[at..at + TABLE_ENTRY_BYTES];
            let tag = u32::from_le_bytes(e[0..4].try_into().expect("4 bytes"));
            let layer = u32::from_le_bytes(e[4..8].try_into().expect("4 bytes"));
            let off = u64::from_le_bytes(e[8..16].try_into().expect("8 bytes"));
            let len = u64::from_le_bytes(e[16..24].try_into().expect("8 bytes"));
            let end = off
                .checked_add(len)
                .ok_or_else(|| bad("section length overflows"))?;
            if off < table_end || end > buf.len() as u64 {
                return Err(bad("section outside the file").into());
            }
            table.push((tag, layer, off, len));
        }
        // Sections must not overlap each other (a crafted table could
        // otherwise alias one byte range as two differently-typed
        // columns and confuse every size cross-check).
        let mut spans: Vec<(u64, u64)> = table.iter().map(|&(_, _, o, l)| (o, l)).collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            if w[0].0 + w[0].1 > w[1].0 {
                return Err(bad("overlapping sections").into());
            }
        }
        let payload_bytes: u64 = table.iter().map(|&(_, _, _, l)| l).sum();

        // v4: the checksum table must exist, parse, and cover exactly
        // the other sections — structural failures here are corruption,
        // not format drift.
        let checks = if version >= VERSION_V4 {
            Snapshot::parse_checksums(&buf, &table)?
        } else {
            Vec::new()
        };
        let expected_crc = |tag: u32, layer: u32| -> Option<u32> {
            checks
                .iter()
                .find(|c| c.tag == tag && c.layer == layer)
                .map(|c| c.crc)
        };

        let section = |tag: u32, layer: u32| -> Option<Range<usize>> {
            table.iter().find_map(|&(t, l, off, len)| {
                (t == tag && l == layer).then_some(off as usize..(off + len) as usize)
            })
        };
        // META (verified now for v4 — it is decoded now).
        let meta = section(SEC_META, 0).ok_or_else(|| bad("missing META section"))?;
        if table.iter().filter(|&&(t, _, _, _)| t == SEC_META).count() > 1 {
            return Err(bad("duplicate META section").into());
        }
        if let Some(crc) = expected_crc(SEC_META, 0) {
            check_crc(&buf, meta.clone(), crc, "meta", None)?;
        }
        let meta_bytes = &buf[meta];
        let mut r = meta_bytes;
        let uri = read_string(&mut r)?;
        let layer_count = read_u32(&mut r)? as usize;

        // One LAYER_HDR per layer ordinal, decoded (and, for v4,
        // verified) now — tiny.
        let mut layers = Vec::with_capacity(layer_count.min(1 << 16));
        for k in 0..layer_count as u32 {
            let hdr = section(SEC_LAYER_HDR, k)
                .ok_or_else(|| bad(&format!("missing header for layer {k}")))?;
            if let Some(crc) = expected_crc(SEC_LAYER_HDR, k) {
                check_crc(
                    &buf,
                    hdr.clone(),
                    crc,
                    "layer.header",
                    Some(&format!("{k}")),
                )?;
            }
            let mut r = &buf[hdr];
            let name = read_string(&mut r)?;
            let config = read_config(&mut r)?;
            let nodes = read_u64(&mut r)?;
            let attrs = read_u64(&mut r)?;
            let annotations = read_u64(&mut r)?;
            let entries = read_u64(&mut r)?;
            let mut sections = HashMap::new();
            let mut section_info = Vec::new();
            let mut lazy_checks = Vec::new();
            let mut bytes = 0u64;
            for &(tag, layer, off, len) in &table {
                if layer == k && tag != SEC_META && tag != SEC_CHECKSUMS {
                    let range = off as usize..(off + len) as usize;
                    if tag != SEC_LAYER_HDR {
                        if sections.insert(tag, range.clone()).is_some() {
                            return Err(
                                bad(&format!("duplicate section {tag} for layer {k}")).into()
                            );
                        }
                        // LAYER_HDR was verified above; everything else
                        // is deferred to materialization.
                        if let Some(crc) = expected_crc(tag, k) {
                            lazy_checks.push((tag, range, crc));
                        }
                    }
                    section_info.push(SectionInfo {
                        tag,
                        name: section_name(tag),
                        bytes: len,
                    });
                    bytes += len;
                }
            }
            section_info.sort_by_key(|s| s.tag);
            layers.push(MountLayer {
                name,
                config,
                nodes,
                attrs,
                annotations,
                entries,
                bytes,
                sections,
                section_info,
                checks: lazy_checks,
                cell: OnceLock::new(),
            });
        }
        let snapshot = Snapshot {
            buf,
            version,
            uri,
            payload_bytes,
            layers,
            checks,
        };
        snapshot.validate_names()?;
        Ok(snapshot)
    }

    /// Parse and structurally validate a v4 checksum section against
    /// the section table: one entry per non-checksum section, no
    /// duplicates, no strays.
    fn parse_checksums(
        buf: &SharedBytes,
        table: &[(u32, u32, u64, u64)],
    ) -> Result<Vec<SectionCheck>, StoreError> {
        let mut found: Option<Range<usize>> = None;
        for &(tag, layer, off, len) in table {
            if tag == SEC_CHECKSUMS {
                if found.is_some() || layer != 0 {
                    return Err(StoreError::corrupt(
                        "section checksums",
                        "duplicate or mis-addressed checksum section",
                    ));
                }
                found = Some(off as usize..(off + len) as usize);
            }
        }
        let range = found.ok_or_else(|| {
            StoreError::corrupt("section checksums", "v4 file has no checksum section")
        })?;
        let payload = &buf[range];
        if !payload.len().is_multiple_of(CHECKSUM_ENTRY_BYTES) {
            return Err(StoreError::corrupt(
                "section checksums",
                "checksum table length is not a multiple of the entry size",
            ));
        }
        let mut checks = Vec::with_capacity(payload.len() / CHECKSUM_ENTRY_BYTES);
        for entry in payload.chunks_exact(CHECKSUM_ENTRY_BYTES) {
            let tag = u32::from_le_bytes(entry[0..4].try_into().expect("4 bytes"));
            let layer = u32::from_le_bytes(entry[4..8].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(entry[8..12].try_into().expect("4 bytes"));
            let covered = table
                .iter()
                .find(|&&(t, l, _, _)| t == tag && l == layer && t != SEC_CHECKSUMS)
                .ok_or_else(|| {
                    StoreError::corrupt(
                        "section checksums",
                        format!(
                            "checksum entry for nonexistent section (tag {tag}, layer {layer})"
                        ),
                    )
                })?;
            if checks
                .iter()
                .any(|c: &SectionCheck| c.tag == tag && c.layer == layer)
            {
                return Err(StoreError::corrupt(
                    "section checksums",
                    format!("duplicate checksum entry (tag {tag}, layer {layer})"),
                ));
            }
            let (_, _, off, len) = *covered;
            checks.push(SectionCheck {
                tag,
                layer,
                range: off as usize..(off + len) as usize,
                crc,
            });
        }
        // Every non-checksum section must be covered, or corruption
        // could hide in an uncovered section.
        let covered_count = table
            .iter()
            .filter(|&&(t, _, _, _)| t != SEC_CHECKSUMS)
            .count();
        if checks.len() != covered_count {
            return Err(StoreError::corrupt(
                "section checksums",
                format!(
                    "checksum table covers {} of {} sections",
                    checks.len(),
                    covered_count
                ),
            ));
        }
        Ok(checks)
    }

    fn validate_names(&self) -> io::Result<()> {
        if self.layers.first().is_none_or(|l| l.name != BASE_LAYER) {
            // LayerSet semantics hinge on layers[0] being the base; a
            // reordered (hand-edited) snapshot must not silently swap
            // what the bare store URI resolves to.
            return Err(bad("first layer section is not the base layer"));
        }
        for (k, layer) in self.layers.iter().enumerate() {
            if self.layers[..k].iter().any(|l| l.name == layer.name) {
                return Err(bad(&format!("duplicate layer {:?}", layer.name)));
            }
        }
        Ok(())
    }

    /// The store URI this snapshot mounts under.
    pub fn uri(&self) -> &str {
        &self.uri
    }

    /// On-disk format version (1 = legacy sectioned, 3 = columnar,
    /// 4 = columnar + section checksums).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Whether this file carries section checksums (v4).
    pub fn checksummed(&self) -> bool {
        !self.checks.is_empty()
    }

    /// Deep integrity check: recompute every recorded section checksum
    /// (v4), then materialize every layer, which re-runs the full
    /// structural revalidation the lazy mount path applies. Corruption
    /// is a categorized [`StoreError::Corrupt`]; v3/legacy files verify
    /// structure only (they carry no checksums).
    pub fn verify(&self) -> Result<VerifyReport, StoreError> {
        let mut sections_checked = 0;
        for c in &self.checks {
            let layer_name = usize::try_from(c.layer)
                .ok()
                .and_then(|k| self.layers.get(k))
                .map(|l| l.name.as_str());
            let label = match (c.tag, layer_name) {
                (SEC_META, _) => None,
                (_, Some(name)) => Some(name.to_string()),
                (_, None) => Some(c.layer.to_string()),
            };
            check_crc(
                &self.buf,
                c.range.clone(),
                c.crc,
                section_name(c.tag),
                label.as_deref(),
            )?;
            sections_checked += 1;
        }
        for k in 0..self.layers.len() {
            self.layer_at(k)?;
        }
        Ok(VerifyReport {
            version: self.version,
            checksummed: !self.checks.is_empty(),
            layers: self.layers.len(),
            sections_checked,
        })
    }

    /// Number of layers (including the base).
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Layer names, base first.
    pub fn layer_names(&self) -> impl Iterator<Item = &str> {
        self.layers.iter().map(|l| l.name.as_str())
    }

    /// Has layer `k` been materialized yet? (Benches and tests assert
    /// laziness as mechanism with this.)
    pub fn is_materialized(&self, k: usize) -> bool {
        self.layers.get(k).is_some_and(|l| l.cell.get().is_some())
    }

    /// Snapshot statistics from the header walk alone — payloads are
    /// untouched for v3 files (`standoff-xq inspect`'s backing).
    pub fn info(&self) -> SnapshotInfo {
        SnapshotInfo {
            version: self.version,
            uri: self.uri.clone(),
            payload_bytes: self.payload_bytes,
            layers: self
                .layers
                .iter()
                .map(|l| LayerInfo {
                    name: l.name.clone(),
                    bytes: l.bytes,
                    nodes: Some(l.nodes),
                    annotations: Some(l.annotations),
                    sections: l.section_info.clone(),
                })
                .collect(),
        }
    }

    /// The layer named `name`, materializing it on first access.
    pub fn layer(&self, name: &str) -> Result<Arc<Layer>, StoreError> {
        let k = self
            .layers
            .iter()
            .position(|l| l.name == name)
            .ok_or_else(|| StoreError::BadLayerName(name.to_string()))?;
        self.layer_at(k)
    }

    /// The `k`-th layer (base first), materializing it on first access.
    pub fn layer_at(&self, k: usize) -> Result<Arc<Layer>, StoreError> {
        let slot = self
            .layers
            .get(k)
            .ok_or_else(|| StoreError::BadLayerName(format!("<layer {k}>")))?;
        if let Some(layer) = slot.cell.get() {
            return Ok(Arc::clone(layer));
        }
        let started = std::time::Instant::now();
        let layer = Arc::new(self.materialize(slot)?);
        let registry = MetricsRegistry::global();
        registry.add("store.layers_materialized", 1);
        registry.record(
            "store.layer_materialize_ns",
            started.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        );
        // A racing sibling may have won; either value is equivalent.
        Ok(Arc::clone(slot.cell.get_or_init(|| layer)))
    }

    /// Realize every layer and assemble an eager [`LayerSet`] — the
    /// prefetch path `Engine::mount_store` consumes. Layers stay shared
    /// with this snapshot's cache (cloning a [`Layer`] clones two `Arc`s).
    pub fn to_layer_set(&self) -> Result<LayerSet, StoreError> {
        let mut layers = Vec::with_capacity(self.layers.len());
        for k in 0..self.layers.len() {
            layers.push((*self.layer_at(k)?).clone());
        }
        LayerSet::from_layers(&self.uri, layers)
    }

    /// Decode + validate one layer from its sections.
    fn materialize(&self, slot: &MountLayer) -> Result<Layer, StoreError> {
        // v4: the columns are about to become live views — this is the
        // moment their checksums are verified (once; the materialized
        // layer is cached). A flipped payload byte stops here as
        // `StoreError::Corrupt`, before any view is built.
        for (tag, range, expected) in &slot.checks {
            check_crc(
                &self.buf,
                range.clone(),
                *expected,
                section_name(*tag),
                Some(&slot.name),
            )?;
        }
        let sect = |tag: u32| -> io::Result<Range<usize>> {
            slot.sections
                .get(&tag)
                .cloned()
                .ok_or_else(|| bad(&format!("layer {:?}: missing section {tag}", slot.name)))
        };
        let wrap = |e: io::Error| -> StoreError {
            StoreError::Io(io::Error::new(
                e.kind(),
                format!("layer {:?}: {e}", slot.name),
            ))
        };

        // DOC_META: uri + name table.
        let mut r = &self.buf[sect(SEC_DOC_META).map_err(StoreError::Io)?];
        let uri = if read_u8(&mut r).map_err(wrap)? == 1 {
            Some(read_string(&mut r).map_err(wrap)?)
        } else {
            None
        };
        let name_count = read_u32(&mut r).map_err(wrap)? as usize;
        let mut names = NameTable::new();
        for k in 0..name_count {
            let lexical = read_string(&mut r).map_err(wrap)?;
            if names.intern(&lexical).0 as usize != k {
                return Err(wrap(bad("duplicate name in name table")));
            }
        }

        let kind =
            KindCol::view(&self.buf, sect(SEC_DOC_KIND).map_err(StoreError::Io)?).map_err(wrap)?;
        let col = |tag: u32| -> io::Result<PodCol<u32>> { PodCol::view(&self.buf, sect(tag)?) };
        let values = StrArena::view(
            &self.buf,
            sect(SEC_DOC_VAL_HEAP).map_err(StoreError::Io)?,
            sect(SEC_DOC_VAL_OFF).map_err(StoreError::Io)?,
        )
        .map_err(wrap)?;
        let attr_values = StrArena::view(
            &self.buf,
            sect(SEC_DOC_ATTR_VAL_HEAP).map_err(StoreError::Io)?,
            sect(SEC_DOC_ATTR_VAL_OFF).map_err(StoreError::Io)?,
        )
        .map_err(wrap)?;
        let parts = DocumentParts {
            uri,
            names,
            kind,
            size: col(SEC_DOC_SIZE).map_err(wrap)?,
            level: PodCol::view(&self.buf, sect(SEC_DOC_LEVEL).map_err(StoreError::Io)?)
                .map_err(wrap)?,
            parent: col(SEC_DOC_PARENT).map_err(wrap)?,
            name: col(SEC_DOC_NAME).map_err(wrap)?,
            values,
            attr_first: col(SEC_DOC_ATTR_FIRST).map_err(wrap)?,
            attr_owner: col(SEC_DOC_ATTR_OWNER).map_err(wrap)?,
            attr_name: col(SEC_DOC_ATTR_NAME).map_err(wrap)?,
            attr_values,
            elem: ElemIndex {
                names: col(SEC_DOC_ELEM_NAMES).map_err(wrap)?,
                offsets: col(SEC_DOC_ELEM_OFF).map_err(wrap)?,
                pres: col(SEC_DOC_ELEM_PRES).map_err(wrap)?,
            },
        };
        let doc = Document::from_storage(parts).map_err(|e| wrap(bad(&e)))?;
        if doc.node_count() as u64 != slot.nodes || doc.attr_count() as u64 != slot.attrs {
            return Err(wrap(bad("layer header disagrees with document columns")));
        }

        // Region index columns.
        let mut r = &self.buf[sect(SEC_RIDX_META).map_err(StoreError::Io)?];
        let max_regions = read_u32(&mut r).map_err(wrap)?;
        let index = RegionIndex::from_storage(
            PodCol::view(&self.buf, sect(SEC_RIDX_ENTRIES).map_err(StoreError::Io)?)
                .map_err(wrap)?,
            col(SEC_RIDX_NODE_IDS).map_err(wrap)?,
            col(SEC_RIDX_NODE_OFF).map_err(wrap)?,
            PodCol::view(&self.buf, sect(SEC_RIDX_REGIONS).map_err(StoreError::Io)?)
                .map_err(wrap)?,
            max_regions,
        )
        .map_err(wrap)?;
        if index.annotated_nodes().len() as u64 != slot.annotations
            || index.len() as u64 != slot.entries
        {
            return Err(wrap(bad("layer header disagrees with region index")));
        }
        // The index must describe this document: every annotated node is
        // an element of it. The query optimizer's post-filter elision
        // *relies* on join outputs being elements, so a snapshot index
        // annotating any other node kind must fail here — mounted
        // indexes are used as-is, never rebuilt, and nothing downstream
        // re-checks. (Region validity was checked by `from_storage`;
        // config/area agreement is the writer's contract.)
        if let Some(&last) = index.annotated_nodes().last() {
            if last as usize >= doc.node_count() {
                return Err(wrap(bad(
                    "region index references nodes beyond the document",
                )));
            }
        }
        if index
            .annotated_nodes()
            .iter()
            .any(|&pre| doc.kind(pre) != NodeKind::Element)
        {
            return Err(wrap(bad("region index annotates a non-element node")));
        }
        Layer::from_shared(
            slot.name.clone(),
            slot.config.clone(),
            Arc::new(doc),
            Arc::new(index),
        )
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("uri", &self.uri)
            .field("version", &self.version)
            .field(
                "layers",
                &self.layers.iter().map(|l| &l.name).collect::<Vec<_>>(),
            )
            .field(
                "materialized",
                &(0..self.layers.len())
                    .filter(|&k| self.is_materialized(k))
                    .count(),
            )
            .finish()
    }
}
