//! Annotation layers and layer sets.
//!
//! A [`Layer`] is one stand-off annotation document over a shared BLOB,
//! bundled with the [`RegionIndex`] the StandOff joins need and the
//! [`StandoffConfig`] it was built under. A [`LayerSet`] collects the
//! layers of one corpus — a *base* layer plus any number of named
//! sibling layers (`tokens`, `entities`, `syntax`, …). All layers share
//! the BLOB's coordinate space, which is exactly what lets the StandOff
//! axes join *across* layers: a region is a region, whichever document
//! it came from (Annotation-Graph-style multi-hierarchy annotation).
//!
//! Layers hold their document and index behind [`Arc`]: a layer cloned
//! out of a mounted [`crate::Snapshot`] and into a query engine shares
//! one copy of the (possibly buffer-backed) column data — mounting is
//! pointer plumbing, not duplication.

use std::sync::Arc;

use standoff_core::{RegionIndex, StandoffConfig};
use standoff_xml::Document;

use crate::error::StoreError;

/// Name of the distinguished base layer of every [`LayerSet`].
pub const BASE_LAYER: &str = "base";

/// One annotation layer: document + prebuilt region index + the
/// configuration the index was built under.
#[derive(Clone)]
pub struct Layer {
    name: String,
    config: StandoffConfig,
    doc: Arc<Document>,
    index: Arc<RegionIndex>,
}

impl Layer {
    /// Build a layer, constructing its region index.
    pub fn build(name: &str, doc: Document, config: StandoffConfig) -> Result<Layer, StoreError> {
        let index = RegionIndex::build(&doc, &config)?;
        Layer::from_shared(name.to_string(), config, Arc::new(doc), Arc::new(index))
    }

    /// Assemble a layer from prebuilt parts (the snapshot-load path — no
    /// index construction happens here, that is the point).
    pub fn from_parts(
        name: String,
        config: StandoffConfig,
        doc: Document,
        index: RegionIndex,
    ) -> Result<Layer, StoreError> {
        Layer::from_shared(name, config, Arc::new(doc), Arc::new(index))
    }

    /// Assemble a layer around already-shared parts (the zero-copy mount
    /// path).
    pub fn from_shared(
        name: String,
        config: StandoffConfig,
        doc: Arc<Document>,
        index: Arc<RegionIndex>,
    ) -> Result<Layer, StoreError> {
        validate_name(&name)?;
        Ok(Layer {
            name,
            config,
            doc,
            index,
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn config(&self) -> &StandoffConfig {
        &self.config
    }

    pub fn doc(&self) -> &Document {
        &self.doc
    }

    pub fn index(&self) -> &RegionIndex {
        &self.index
    }

    /// The shared document handle (cheap clone).
    pub fn doc_arc(&self) -> Arc<Document> {
        Arc::clone(&self.doc)
    }

    /// The shared index handle (cheap clone).
    pub fn index_arc(&self) -> Arc<RegionIndex> {
        Arc::clone(&self.index)
    }

    /// Number of area-annotations in this layer.
    pub fn annotation_count(&self) -> usize {
        self.index.annotated_nodes().len()
    }

    /// Decompose into `(name, config, document, index)`. The document
    /// and index stay shared — an engine mounting them takes references,
    /// not copies.
    pub fn into_parts(self) -> (String, StandoffConfig, Arc<Document>, Arc<RegionIndex>) {
        (self.name, self.config, self.doc, self.index)
    }
}

impl std::fmt::Debug for Layer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Layer")
            .field("name", &self.name)
            .field("nodes", &self.doc.node_count())
            .field("annotations", &self.annotation_count())
            .finish()
    }
}

fn validate_name(name: &str) -> Result<(), StoreError> {
    // `#` is reserved: the engine addresses mounted layers as
    // `uri#layer` (see `standoff_xquery::Engine::mount_store`).
    if name.is_empty() || name.contains('#') {
        Err(StoreError::BadLayerName(name.to_string()))
    } else {
        Ok(())
    }
}

/// A base layer plus named sibling annotation layers over one BLOB,
/// addressed by a store URI. Cloning is cheap: layers share their
/// documents and indexes through `Arc`.
#[derive(Clone)]
pub struct LayerSet {
    uri: String,
    /// `layers[0]` is always the base layer.
    layers: Vec<Layer>,
}

impl LayerSet {
    /// Start a layer set from its base document (becomes the
    /// [`BASE_LAYER`] layer, indexed under `config`).
    pub fn build(
        uri: &str,
        base: Document,
        config: StandoffConfig,
    ) -> Result<LayerSet, StoreError> {
        let base = Layer::build(BASE_LAYER, base, config)?;
        Ok(LayerSet {
            uri: uri.to_string(),
            layers: vec![base],
        })
    }

    /// Reassemble from prebuilt layers (snapshot load). `layers[0]` is
    /// taken as the base; names must be unique.
    pub fn from_layers(uri: &str, layers: Vec<Layer>) -> Result<LayerSet, StoreError> {
        if layers.is_empty() {
            return Err(StoreError::BadLayerName("<no layers>".to_string()));
        }
        let mut set = LayerSet {
            uri: uri.to_string(),
            layers: Vec::with_capacity(layers.len()),
        };
        for layer in layers {
            set.push_layer(layer)?;
        }
        Ok(set)
    }

    /// Add a layer, building its index.
    pub fn add_layer(
        &mut self,
        name: &str,
        doc: Document,
        config: StandoffConfig,
    ) -> Result<&Layer, StoreError> {
        let layer = Layer::build(name, doc, config)?;
        self.push_layer(layer)?;
        Ok(self.layers.last().expect("just pushed"))
    }

    /// Add a prebuilt layer.
    pub fn push_layer(&mut self, layer: Layer) -> Result<(), StoreError> {
        if self.layers.iter().any(|l| l.name == layer.name) {
            return Err(StoreError::DuplicateLayer(layer.name));
        }
        self.layers.push(layer);
        Ok(())
    }

    /// The store URI this set mounts under.
    pub fn uri(&self) -> &str {
        &self.uri
    }

    /// The base layer.
    pub fn base(&self) -> &Layer {
        &self.layers[0]
    }

    /// All layers, base first.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Layer by name ([`BASE_LAYER`] finds the base).
    pub fn layer(&self, name: &str) -> Option<&Layer> {
        self.layers.iter().find(|l| l.name == name)
    }

    /// Number of layers (including the base).
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    pub fn is_empty(&self) -> bool {
        false // a LayerSet always has its base layer
    }

    /// Decompose into `(uri, layers)`, base first.
    pub fn into_layers(self) -> (String, Vec<Layer>) {
        (self.uri, self.layers)
    }
}

impl std::fmt::Debug for LayerSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LayerSet")
            .field("uri", &self.uri)
            .field("layers", &self.layers)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use standoff_xml::parse_document;

    fn doc(xml: &str) -> Document {
        parse_document(xml).unwrap()
    }

    #[test]
    fn build_and_lookup() {
        let mut set = LayerSet::build(
            "corpus",
            doc(r#"<d><w start="0" end="4"/></d>"#),
            StandoffConfig::default(),
        )
        .unwrap();
        set.add_layer(
            "entities",
            doc(r#"<e><person start="0" end="4"/></e>"#),
            StandoffConfig::default(),
        )
        .unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.base().name(), BASE_LAYER);
        assert_eq!(set.layer("entities").unwrap().annotation_count(), 1);
        assert!(set.layer("missing").is_none());
    }

    #[test]
    fn duplicate_and_reserved_names_rejected() {
        let mut set = LayerSet::build("c", doc("<d/>"), StandoffConfig::default()).unwrap();
        assert!(set
            .add_layer("base", doc("<d/>"), StandoffConfig::default())
            .is_err());
        assert!(set
            .add_layer("a#b", doc("<d/>"), StandoffConfig::default())
            .is_err());
        assert!(set
            .add_layer("", doc("<d/>"), StandoffConfig::default())
            .is_err());
    }

    #[test]
    fn cloned_layers_share_storage() {
        let set = LayerSet::build(
            "c",
            doc(r#"<d><w start="0" end="4"/></d>"#),
            StandoffConfig::default(),
        )
        .unwrap();
        let clone = set.base().clone();
        assert!(std::ptr::eq(clone.doc(), set.base().doc()));
        assert!(std::ptr::eq(clone.index(), set.base().index()));
    }

    #[test]
    fn malformed_layer_annotations_fail_index_build() {
        let r = Layer::build(
            "broken",
            doc(r#"<d><w start="7"/></d>"#),
            StandoffConfig::default(),
        );
        assert!(matches!(r, Err(StoreError::Index(_))));
    }
}
