//! # standoff-store
//!
//! Persistent multi-layer stand-off annotation store.
//!
//! The paper's premise is that stand-off annotations live *apart* from
//! the base data: many independent annotation hierarchies — tokens,
//! entities, syntax, shots, genes — reference regions of one immutable
//! BLOB. This crate makes that durable and cheap to reopen:
//!
//! * [`Layer`] / [`LayerSet`] — named annotation layers over one shared
//!   base, each carrying its own [`standoff_core::RegionIndex`] and
//!   [`standoff_core::StandoffConfig`]. Layers share the BLOB coordinate
//!   space, so the StandOff axes (`select-narrow` & co.) and merge joins
//!   compose *across* layers.
//! * [`snapshot`] / [`mount`] — a versioned binary format (no external
//!   serde) that persists every layer's shredded document, element-name
//!   CSR and prebuilt region index. The current SOSN v3 format is
//!   columnar and offset-indexed: [`Snapshot::open`] *mounts* the file
//!   as one shared buffer, layers materialize lazily on first access as
//!   zero-copy column views, and `inspect` is a pure header walk. No
//!   XML parsing, no `RegionIndex::build`, no per-node allocation — the
//!   cold-start path the ROADMAP asks for. Legacy (version 1) files
//!   keep loading through the same entry points. The current v4 files
//!   add a CRC32 per section, verified lazily at materialization.
//! * [`atomic`] / [`wal`] — the durability layer: every in-place
//!   rewrite goes through write-temp → fsync → rename → fsync(dir), and
//!   delta batches are journaled to an append-only, per-record
//!   checksummed `<sidecar>.wal` *before* they become visible, so a
//!   committed batch survives SIGKILL and recovery replays exactly the
//!   committed prefix (torn tails are truncated; damaged committed
//!   records are categorized [`StoreError::Corrupt`]).
//!
//! `standoff_xquery::Engine::mount_snapshot` / `mount_store` mounts the
//! layers so that `doc("uri")`, `doc("uri#layer")` and
//! `layer("uri", "name")` resolve to the stored layers, with all region
//! indices pre-installed (shared, not copied).

pub mod atomic;
pub mod delta;
pub mod error;
pub mod layer;
pub mod mount;
pub mod snapshot;
pub mod wal;

pub use atomic::{atomic_replace, atomic_write};
pub use delta::{compact, ops_to_text, parse_ops, DeltaAnnotation, DeltaOp, DeltaSet, LayerDelta};
pub use error::StoreError;
pub use layer::{Layer, LayerSet, BASE_LAYER};
pub use mount::{Snapshot, VerifyReport};
pub use snapshot::{
    inspect_snapshot, load_snapshot, load_snapshot_with_info, read_snapshot,
    read_snapshot_with_info, save_snapshot, write_snapshot, write_snapshot_legacy,
    write_snapshot_unchecksummed, LayerInfo, SectionInfo, SnapshotInfo,
};
pub use wal::{checkpoint_marker, checkpointed_seq, wal_path, DeltaWal, WalRecord, WalScan};
