//! # standoff-store
//!
//! Persistent multi-layer stand-off annotation store.
//!
//! The paper's premise is that stand-off annotations live *apart* from
//! the base data: many independent annotation hierarchies — tokens,
//! entities, syntax, shots, genes — reference regions of one immutable
//! BLOB. This crate makes that durable and cheap to reopen:
//!
//! * [`Layer`] / [`LayerSet`] — named annotation layers over one shared
//!   base, each carrying its own [`standoff_core::RegionIndex`] and
//!   [`standoff_core::StandoffConfig`]. Layers share the BLOB coordinate
//!   space, so the StandOff axes (`select-narrow` & co.) and merge joins
//!   compose *across* layers.
//! * [`snapshot`] — a versioned binary format (magic + header +
//!   length-prefixed sections, no external serde) that persists every
//!   layer's shredded document, element-name table and prebuilt region
//!   index. Loading is a validated column read: no XML parsing, no
//!   `RegionIndex::build` — the cold-start path the ROADMAP asks for.
//!
//! `standoff_xquery::Engine::mount_store` mounts a [`LayerSet`] so that
//! `doc("uri")`, `doc("uri#layer")` and `layer("uri", "name")` resolve to
//! the stored layers, with all region indices pre-installed.

pub mod error;
pub mod layer;
pub mod snapshot;

pub use error::StoreError;
pub use layer::{Layer, LayerSet, BASE_LAYER};
pub use snapshot::{
    inspect_snapshot, load_snapshot, load_snapshot_with_info, read_snapshot,
    read_snapshot_with_info, save_snapshot, write_snapshot, LayerInfo, SnapshotInfo,
};
