//! Store-level errors.

use std::fmt;

/// Errors raised while assembling layers or reading/writing snapshots.
#[derive(Debug)]
pub enum StoreError {
    /// A layer name is empty or contains `#` (reserved for the engine's
    /// `uri#layer` addressing).
    BadLayerName(String),
    /// Two layers of one set share a name.
    DuplicateLayer(String),
    /// Index construction over a layer document failed.
    Index(standoff_core::StandoffError),
    /// Snapshot I/O or format error.
    Io(std::io::Error),
    /// An overlay mutation was rejected (unknown layer, region out of
    /// order, retract matching nothing, malformed op line, ...).
    Delta(String),
    /// Stored bytes failed an integrity check: a section payload whose
    /// CRC32 does not match the recorded checksum, a WAL record broken
    /// mid-file, a checksum table that does not cover the section list.
    /// Corruption is always reported through this categorized variant —
    /// never a panic — so callers can distinguish "the file is damaged"
    /// from "the file is from the future" or plain I/O failure.
    Corrupt {
        /// What failed the check, e.g. `"section doc.text (layer tokens)"`
        /// or `"wal record 3"`.
        section: String,
        /// Why, e.g. `"checksum mismatch: stored 0x1234, computed 0x5678"`.
        detail: String,
    },
}

impl StoreError {
    /// Shorthand constructor for [`StoreError::Corrupt`].
    pub fn corrupt(section: impl Into<String>, detail: impl Into<String>) -> StoreError {
        StoreError::Corrupt {
            section: section.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::BadLayerName(name) => write!(f, "bad layer name {name:?}"),
            StoreError::DuplicateLayer(name) => write!(f, "duplicate layer {name:?}"),
            StoreError::Index(e) => write!(f, "layer index: {e}"),
            StoreError::Io(e) => write!(f, "snapshot: {e}"),
            StoreError::Delta(msg) => write!(f, "delta: {msg}"),
            StoreError::Corrupt { section, detail } => {
                write!(f, "corrupt {section}: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<standoff_core::StandoffError> for StoreError {
    fn from(e: standoff_core::StandoffError) -> Self {
        StoreError::Index(e)
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}
