//! The paper's StandOff-ification of XMark (§4.6).
//!
//! "We modified the XMark document to a StandOff document, by putting the
//! textual contents of the auctions document in a separate file (the
//! BLOB), whereas the auctions document contains for each element node
//! instead of the text node a region (in attribute format) that refers to
//! the BLOB. The order in which the element nodes appear has also been
//! permuted on a coarse level, thereby removing some of the original
//! parent-child relationships."
//!
//! Concretely:
//!
//! 1. Character data is concatenated into the BLOB in document order.
//!    Every element additionally contributes one terminator byte at its
//!    close, so even empty elements get a non-empty region and nested
//!    elements get *strictly* nested regions — the original tree is then
//!    exactly recoverable through region containment, which is what lets
//!    `select-narrow` replace `child`/`descendant` in the queries.
//! 2. The element nodes (with their original attributes plus
//!    `start`/`end`) are re-emitted *flat* under the root in seeded-
//!    shuffled order: apart from the root, no original parent-child edge
//!    survives in the tree — only the regions relate annotations.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use standoff_xml::{Document, DocumentBuilder, NodeKind};

/// A StandOff-ified document plus its BLOB.
pub struct StandoffDoc {
    /// The annotation document: flat elements with `start`/`end`
    /// attributes.
    pub doc: Document,
    /// The annotated BLOB (text content + element terminators).
    pub blob: String,
}

impl StandoffDoc {
    /// The BLOB substring covered by an inclusive region, with element
    /// terminator bytes removed — the "content" of an annotation.
    pub fn region_text(&self, start: i64, end: i64) -> String {
        let bytes = &self.blob.as_bytes()[start as usize..=end as usize];
        bytes
            .iter()
            .filter(|&&b| b != b'\n')
            .map(|&b| b as char)
            .collect()
    }
}

/// Transform a document into its StandOff form.
pub fn standoffify(src: &Document, seed: u64) -> StandoffDoc {
    let n = src.node_count();
    // Pass 1: compute the BLOB and each element's [start,end] span.
    let mut spans: Vec<(i64, i64)> = vec![(0, 0); n];
    let mut blob = String::new();
    let mut open: Vec<u32> = Vec::new();
    for pre in 1..n as u32 {
        // Close elements whose subtree ended before `pre`.
        while let Some(&top) = open.last() {
            if pre > top + src.size(top) {
                blob.push('\n');
                spans[top as usize].1 = blob.len() as i64 - 1;
                open.pop();
            } else {
                break;
            }
        }
        match src.kind(pre) {
            NodeKind::Element => {
                spans[pre as usize].0 = blob.len() as i64;
                if src.size(pre) == 0 {
                    blob.push('\n');
                    spans[pre as usize].1 = blob.len() as i64 - 1;
                } else {
                    open.push(pre);
                }
            }
            NodeKind::Text => blob.push_str(src.value(pre)),
            NodeKind::Comment | NodeKind::Pi | NodeKind::Document => {}
        }
    }
    while let Some(top) = open.pop() {
        blob.push('\n');
        spans[top as usize].1 = blob.len() as i64 - 1;
    }

    // Pass 2: emit the flat, coarsely-permuted annotation document.
    let root_elem = 1u32; // the document element
    debug_assert_eq!(src.kind(root_elem), NodeKind::Element);
    let mut elements: Vec<u32> = (2..n as u32)
        .filter(|&p| src.kind(p) == NodeKind::Element)
        .collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    elements.shuffle(&mut rng);

    let mut b = DocumentBuilder::with_capacity(elements.len() + 2);
    emit_element(src, root_elem, &spans, &mut b);
    for &pre in &elements {
        emit_element(src, pre, &spans, &mut b);
        b.end_element();
    }
    b.end_element(); // root
    StandoffDoc {
        doc: b.finish().expect("balanced"),
        blob,
    }
}

/// Open an element in the builder with its original attributes plus the
/// region attributes. The caller closes it.
fn emit_element(src: &Document, pre: u32, spans: &[(i64, i64)], b: &mut DocumentBuilder) {
    let name = src.names().lexical(src.name_id(pre));
    b.start_element(&name);
    for a in src.attr_range(pre) {
        let an = src.names().lexical(src.attr_name_id(a));
        b.attribute(&an, src.attr_value(a));
    }
    let (start, end) = spans[pre as usize];
    b.attribute("start", &start.to_string());
    b.attribute("end", &end.to_string());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, XmarkConfig};
    use standoff_core::{RegionIndex, StandoffConfig};
    use standoff_xml::parse_document;

    fn small() -> (Document, StandoffDoc) {
        let src = generate(&XmarkConfig::with_scale(0.001));
        let so = standoffify(&src, 42);
        (src, so)
    }

    #[test]
    fn element_counts_preserved() {
        let (src, so) = small();
        let src_elems = src.all_elements().len();
        let so_elems = so.doc.all_elements().len();
        assert_eq!(src_elems, so_elems);
        assert_eq!(
            src.elements_named("bidder").len(),
            so.doc.elements_named("bidder").len()
        );
    }

    #[test]
    fn standoff_doc_is_flat() {
        let (_, so) = small();
        // Every element except the root is a child of the root.
        let root = 1u32;
        for pre in 2..so.doc.node_count() as u32 {
            assert_eq!(so.doc.parent(pre), root);
        }
    }

    #[test]
    fn all_elements_annotated_and_index_builds() {
        let (_, so) = small();
        let index = RegionIndex::build(&so.doc, &StandoffConfig::default()).unwrap();
        assert_eq!(index.annotated_nodes().len(), so.doc.all_elements().len());
        assert_eq!(index.max_regions(), 1, "attribute format: single regions");
    }

    #[test]
    fn regions_encode_original_containment() {
        let (src, so) = small();
        // Original: every <increase> is a descendant of a <bidder>. In
        // the StandOff doc that containment must hold between regions.
        let index = RegionIndex::build(&so.doc, &StandoffConfig::default()).unwrap();
        let bidders = so.doc.elements_named("bidder");
        let increases = so.doc.elements_named("increase");
        assert_eq!(increases.len(), src.elements_named("increase").len());
        for &inc in increases {
            let ri = index.regions_of(inc)[0];
            let contained = bidders.iter().any(|&b| {
                let rb = index.regions_of(b)[0];
                rb.start <= ri.start && ri.end <= rb.end
            });
            assert!(contained, "increase region not inside any bidder region");
        }
    }

    #[test]
    fn nested_regions_are_strict() {
        let src = parse_document("<a><b><c/></b><d>text</d></a>").unwrap();
        let so = standoffify(&src, 1);
        let index = RegionIndex::build(&so.doc, &StandoffConfig::default()).unwrap();
        let a = index.regions_of(so.doc.elements_named("a")[0])[0];
        let b = index.regions_of(so.doc.elements_named("b")[0])[0];
        let c = index.regions_of(so.doc.elements_named("c")[0])[0];
        let d = index.regions_of(so.doc.elements_named("d")[0])[0];
        assert!(a.start <= b.start && b.end < a.end, "b strictly in a");
        assert!(b.start <= c.start && c.end < b.end, "c strictly in b");
        assert!(d.start > b.end, "siblings disjoint");
        assert!(d.end < a.end);
    }

    #[test]
    fn blob_preserves_text() {
        let src = parse_document("<a><name>hello world</name><x/></a>").unwrap();
        let so = standoffify(&src, 1);
        let index = RegionIndex::build(&so.doc, &StandoffConfig::default()).unwrap();
        let name = so.doc.elements_named("name")[0];
        let r = index.regions_of(name)[0];
        assert_eq!(so.region_text(r.start, r.end), "hello world");
    }

    #[test]
    fn permutation_is_seeded() {
        let src = generate(&XmarkConfig::with_scale(0.001));
        let a = standoffify(&src, 1);
        let b = standoffify(&src, 1);
        let c = standoffify(&src, 2);
        let ser = |d: &Document| standoff_xml::serialize_document(d, Default::default());
        assert_eq!(ser(&a.doc), ser(&b.doc));
        assert_ne!(ser(&a.doc), ser(&c.doc));
        assert_eq!(
            a.blob, c.blob,
            "the BLOB does not depend on the permutation"
        );
    }

    #[test]
    fn original_attributes_survive() {
        let (src, so) = small();
        let src_p0 = src
            .elements_named("person")
            .iter()
            .find(|&&p| src.attribute(p, "id") == Some("person0"))
            .copied()
            .unwrap();
        let so_p0 = so
            .doc
            .elements_named("person")
            .iter()
            .find(|&&p| so.doc.attribute(p, "id") == Some("person0"))
            .copied();
        assert!(so_p0.is_some());
        let _ = src_p0;
    }
}
