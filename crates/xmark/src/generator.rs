//! XMark auction-site document generator.
//!
//! Reimplements the structure of `xmlgen` (Schmidt et al., "XMark: A
//! Benchmark for XML Data Management", VLDB 2002): an auction site with
//! regions/items, categories, a category graph, people, open auctions
//! (with bidder histories) and closed auctions. Entity counts scale
//! linearly with the scale factor exactly as in `xmlgen` (factor 1.0 ≈
//! 100 MB ≈ 21 750 items, 25 500 people, 12 000 open auctions); text is
//! drawn from a fixed word list with `xmlgen`-like sentence shapes.
//! Generation is fully deterministic given the seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use standoff_xml::{Document, DocumentBuilder, SerializeOptions};

use crate::words::WORDS;

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct XmarkConfig {
    /// XMark scale factor; 1.0 ≈ 100 MB of XML text.
    pub scale: f64,
    /// RNG seed (the default is the generator's canonical seed).
    pub seed: u64,
}

impl Default for XmarkConfig {
    fn default() -> Self {
        XmarkConfig {
            scale: 0.001,
            seed: 20060630, // the workshop date
        }
    }
}

impl XmarkConfig {
    pub fn with_scale(scale: f64) -> Self {
        XmarkConfig {
            scale,
            ..Default::default()
        }
    }

    // Entity counts from xmlgen's tables, linear in the scale factor.
    pub fn n_items(&self) -> usize {
        ((21750.0 * self.scale) as usize).max(6)
    }
    pub fn n_people(&self) -> usize {
        ((25500.0 * self.scale) as usize).max(4)
    }
    pub fn n_open_auctions(&self) -> usize {
        ((12000.0 * self.scale) as usize).max(3)
    }
    pub fn n_closed_auctions(&self) -> usize {
        ((9750.0 * self.scale) as usize).max(2)
    }
    pub fn n_categories(&self) -> usize {
        ((1000.0 * self.scale) as usize).max(2)
    }
}

/// The six continental regions and their item shares (following
/// `xmlgen`'s distribution).
const REGIONS: &[(&str, f64)] = &[
    ("africa", 0.05),
    ("asia", 0.10),
    ("australia", 0.10),
    ("europe", 0.30),
    ("namerica", 0.35),
    ("samerica", 0.10),
];

/// Generate an XMark document.
pub fn generate(config: &XmarkConfig) -> Document {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut g = Gen {
        rng: &mut rng,
        b: DocumentBuilder::with_capacity((config.n_items() + config.n_people()) * 24),
        config: *config,
    };
    g.site();
    g.b.finish().expect("generator produces balanced documents")
}

/// Size of a document's serialized XML text in bytes (the unit of the
/// paper's Figure 6 x-axis).
pub fn serialized_size(doc: &Document) -> usize {
    standoff_xml::serialize_document(doc, SerializeOptions::default()).len()
}

struct Gen<'r> {
    rng: &'r mut SmallRng,
    b: DocumentBuilder,
    config: XmarkConfig,
}

impl Gen<'_> {
    fn site(&mut self) {
        self.b.start_element("site");
        self.regions();
        self.categories();
        self.catgraph();
        self.people();
        self.open_auctions();
        self.closed_auctions();
        self.b.end_element();
    }

    // ----- text helpers -----

    fn word(&mut self) -> &'static str {
        WORDS[self.rng.gen_range(0..WORDS.len())]
    }

    fn sentence(&mut self, min_words: usize, max_words: usize) -> String {
        let n = self.rng.gen_range(min_words..=max_words);
        let mut s = String::with_capacity(n * 8);
        for k in 0..n {
            if k > 0 {
                s.push(' ');
            }
            s.push_str(self.word());
        }
        s
    }

    fn text_elem(&mut self, name: &str, min_words: usize, max_words: usize) {
        self.b.start_element(name);
        let s = self.sentence(min_words, max_words);
        self.b.text(&s);
        self.b.end_element();
    }

    /// `<text>` with occasional inline keyword/bold/emph markup, like
    /// xmlgen's mixed-content paragraphs.
    fn rich_text(&mut self) {
        self.b.start_element("text");
        let chunks = self.rng.gen_range(1..=3);
        for _ in 0..chunks {
            let s = self.sentence(4, 18);
            self.b.text(&s);
            self.b.text(" ");
            if self.rng.gen_bool(0.3) {
                let inline = ["keyword", "bold", "emph"][self.rng.gen_range(0..3)];
                self.b.start_element(inline);
                let s = self.sentence(1, 3);
                self.b.text(&s);
                self.b.end_element();
                self.b.text(" ");
            }
        }
        self.b.end_element();
    }

    /// `<description>`: either a plain `<text>` or a `<parlist>` of
    /// `<listitem>`s.
    fn description(&mut self) {
        self.b.start_element("description");
        if self.rng.gen_bool(0.7) {
            self.rich_text();
        } else {
            self.b.start_element("parlist");
            let n = self.rng.gen_range(2..=4);
            for _ in 0..n {
                self.b.start_element("listitem");
                self.rich_text();
                self.b.end_element();
            }
            self.b.end_element();
        }
        self.b.end_element();
    }

    fn date(&mut self) -> String {
        format!(
            "{:02}/{:02}/{}",
            self.rng.gen_range(1..=12),
            self.rng.gen_range(1..=28),
            self.rng.gen_range(1998..=2001)
        )
    }

    // ----- sections -----

    fn regions(&mut self) {
        let total = self.config.n_items();
        self.b.start_element("regions");
        let mut item_id = 0usize;
        for (k, (region, share)) in REGIONS.iter().enumerate() {
            self.b.start_element(region);
            let count = if k + 1 == REGIONS.len() {
                total - item_id // remainder keeps the exact total
            } else {
                ((total as f64) * share) as usize
            };
            for _ in 0..count {
                self.item(item_id);
                item_id += 1;
            }
            self.b.end_element();
        }
        self.b.end_element();
    }

    fn item(&mut self, id: usize) {
        self.b.start_element("item");
        self.b.attribute("id", &format!("item{id}"));
        self.text_elem("location", 1, 3);
        let q = self.rng.gen_range(1..=10).to_string();
        self.b.start_element("quantity");
        self.b.text(&q);
        self.b.end_element();
        self.text_elem("name", 1, 4);
        self.text_elem("payment", 2, 6);
        self.description();
        self.text_elem("shipping", 2, 6);
        let n_cats = self.rng.gen_range(1..=3);
        for _ in 0..n_cats {
            let cat = self.rng.gen_range(0..self.config.n_categories());
            self.b
                .empty_element("incategory", &[("category", &format!("category{cat}"))]);
        }
        if self.rng.gen_bool(0.8) {
            self.b.start_element("mailbox");
            let n_mails = self.rng.gen_range(0..=3);
            for _ in 0..n_mails {
                self.b.start_element("mail");
                self.text_elem("from", 2, 3);
                self.text_elem("to", 2, 3);
                let d = self.date();
                self.b.start_element("date");
                self.b.text(&d);
                self.b.end_element();
                self.rich_text();
                self.b.end_element();
            }
            self.b.end_element();
        }
        self.b.end_element();
    }

    fn categories(&mut self) {
        self.b.start_element("categories");
        for id in 0..self.config.n_categories() {
            self.b.start_element("category");
            self.b.attribute("id", &format!("category{id}"));
            self.text_elem("name", 1, 3);
            self.description();
            self.b.end_element();
        }
        self.b.end_element();
    }

    fn catgraph(&mut self) {
        let n = self.config.n_categories();
        self.b.start_element("catgraph");
        for _ in 0..n {
            let from = self.rng.gen_range(0..n);
            let to = self.rng.gen_range(0..n);
            self.b.empty_element(
                "edge",
                &[
                    ("from", &format!("category{from}")),
                    ("to", &format!("category{to}")),
                ],
            );
        }
        self.b.end_element();
    }

    fn people(&mut self) {
        self.b.start_element("people");
        for id in 0..self.config.n_people() {
            self.person(id);
        }
        self.b.end_element();
    }

    fn person(&mut self, id: usize) {
        self.b.start_element("person");
        self.b.attribute("id", &format!("person{id}"));
        self.text_elem("name", 2, 2);
        self.b.start_element("emailaddress");
        let addr = format!("mailto:{}@{}.com", self.word(), self.word());
        self.b.text(&addr);
        self.b.end_element();
        if self.rng.gen_bool(0.5) {
            let phone = format!(
                "+{} ({}) {}",
                self.rng.gen_range(1..=99),
                self.rng.gen_range(100..=999),
                self.rng.gen_range(1_000_000..=9_999_999)
            );
            self.b.start_element("phone");
            self.b.text(&phone);
            self.b.end_element();
        }
        if self.rng.gen_bool(0.4) {
            self.b.start_element("address");
            self.text_elem("street", 2, 3);
            self.text_elem("city", 1, 1);
            self.text_elem("country", 1, 1);
            let zip = self.rng.gen_range(10000..99999).to_string();
            self.b.start_element("zipcode");
            self.b.text(&zip);
            self.b.end_element();
            self.b.end_element();
        }
        if self.rng.gen_bool(0.3) {
            let page = format!("http://www.{}.com/~{}", self.word(), self.word());
            self.b.start_element("homepage");
            self.b.text(&page);
            self.b.end_element();
        }
        if self.rng.gen_bool(0.5) {
            let card = format!(
                "{} {} {} {}",
                self.rng.gen_range(1000..9999),
                self.rng.gen_range(1000..9999),
                self.rng.gen_range(1000..9999),
                self.rng.gen_range(1000..9999)
            );
            self.b.start_element("creditcard");
            self.b.text(&card);
            self.b.end_element();
        }
        if self.rng.gen_bool(0.7) {
            self.b.start_element("profile");
            let income = format!("{:.2}", self.rng.gen_range(9876.0..99999.0));
            self.b.attribute("income", &income);
            let n_interests = self.rng.gen_range(0..=4);
            for _ in 0..n_interests {
                let cat = self.rng.gen_range(0..self.config.n_categories());
                self.b
                    .empty_element("interest", &[("category", &format!("category{cat}"))]);
            }
            if self.rng.gen_bool(0.5) {
                self.text_elem("education", 1, 2);
            }
            if self.rng.gen_bool(0.5) {
                let g = if self.rng.gen_bool(0.5) {
                    "male"
                } else {
                    "female"
                };
                self.b.start_element("gender");
                self.b.text(g);
                self.b.end_element();
            }
            self.b.start_element("business");
            self.b
                .text(if self.rng.gen_bool(0.5) { "Yes" } else { "No" });
            self.b.end_element();
            if self.rng.gen_bool(0.6) {
                let age = self.rng.gen_range(18..=80).to_string();
                self.b.start_element("age");
                self.b.text(&age);
                self.b.end_element();
            }
            self.b.end_element();
        }
        if self.rng.gen_bool(0.4) {
            self.b.start_element("watches");
            let n = self.rng.gen_range(1..=4);
            for _ in 0..n {
                let a = self.rng.gen_range(0..self.config.n_open_auctions());
                self.b
                    .empty_element("watch", &[("open_auction", &format!("open_auction{a}"))]);
            }
            self.b.end_element();
        }
        self.b.end_element();
    }

    fn open_auctions(&mut self) {
        self.b.start_element("open_auctions");
        for id in 0..self.config.n_open_auctions() {
            self.open_auction(id);
        }
        self.b.end_element();
    }

    fn open_auction(&mut self, id: usize) {
        self.b.start_element("open_auction");
        self.b.attribute("id", &format!("open_auction{id}"));
        let initial = self.rng.gen_range(1.0..100.0);
        let t = format!("{initial:.2}");
        self.b.start_element("initial");
        self.b.text(&t);
        self.b.end_element();
        if self.rng.gen_bool(0.4) {
            let r = format!("{:.2}", initial * self.rng.gen_range(1.1..3.0));
            self.b.start_element("reserve");
            self.b.text(&r);
            self.b.end_element();
        }
        // Bidder history: xmlgen's skewed distribution — many auctions
        // with few bids, some with many. Q2 selects bidder[1].
        let n_bidders = match self.rng.gen_range(0..10) {
            0..=3 => self.rng.gen_range(0..=1),
            4..=7 => self.rng.gen_range(1..=5),
            _ => self.rng.gen_range(5..=12),
        };
        let mut current = initial;
        for _ in 0..n_bidders {
            self.b.start_element("bidder");
            let d = self.date();
            self.b.start_element("date");
            self.b.text(&d);
            self.b.end_element();
            let time = format!(
                "{:02}:{:02}:{:02}",
                self.rng.gen_range(0..24),
                self.rng.gen_range(0..60),
                self.rng.gen_range(0..60)
            );
            self.b.start_element("time");
            self.b.text(&time);
            self.b.end_element();
            let p = self.rng.gen_range(0..self.config.n_people());
            self.b
                .empty_element("personref", &[("person", &format!("person{p}"))]);
            let inc = self.rng.gen_range(1.5..30.0);
            current += inc;
            let inc_s = format!("{inc:.2}");
            self.b.start_element("increase");
            self.b.text(&inc_s);
            self.b.end_element();
            self.b.end_element();
        }
        let cur = format!("{current:.2}");
        self.b.start_element("current");
        self.b.text(&cur);
        self.b.end_element();
        if self.rng.gen_bool(0.2) {
            self.b.start_element("privacy");
            self.b.text("Yes");
            self.b.end_element();
        }
        let item = self.rng.gen_range(0..self.config.n_items());
        self.b
            .empty_element("itemref", &[("item", &format!("item{item}"))]);
        let seller = self.rng.gen_range(0..self.config.n_people());
        self.b
            .empty_element("seller", &[("person", &format!("person{seller}"))]);
        self.annotation();
        let q = self.rng.gen_range(1..=10).to_string();
        self.b.start_element("quantity");
        self.b.text(&q);
        self.b.end_element();
        self.b.start_element("type");
        self.b.text(if self.rng.gen_bool(0.7) {
            "Regular"
        } else {
            "Featured"
        });
        self.b.end_element();
        self.b.start_element("interval");
        let d1 = self.date();
        self.b.start_element("start");
        self.b.text(&d1);
        self.b.end_element();
        let d2 = self.date();
        self.b.start_element("end");
        self.b.text(&d2);
        self.b.end_element();
        self.b.end_element();
        self.b.end_element();
    }

    fn annotation(&mut self) {
        self.b.start_element("annotation");
        self.text_elem("author", 2, 2);
        self.description();
        self.b.start_element("happiness");
        let h = self.rng.gen_range(1..=10).to_string();
        self.b.text(&h);
        self.b.end_element();
        self.b.end_element();
    }

    fn closed_auctions(&mut self) {
        self.b.start_element("closed_auctions");
        for _ in 0..self.config.n_closed_auctions() {
            self.b.start_element("closed_auction");
            let seller = self.rng.gen_range(0..self.config.n_people());
            self.b
                .empty_element("seller", &[("person", &format!("person{seller}"))]);
            let buyer = self.rng.gen_range(0..self.config.n_people());
            self.b
                .empty_element("buyer", &[("person", &format!("person{buyer}"))]);
            let item = self.rng.gen_range(0..self.config.n_items());
            self.b
                .empty_element("itemref", &[("item", &format!("item{item}"))]);
            let price = format!("{:.2}", self.rng.gen_range(5.0..500.0));
            self.b.start_element("price");
            self.b.text(&price);
            self.b.end_element();
            let d = self.date();
            self.b.start_element("date");
            self.b.text(&d);
            self.b.end_element();
            let q = self.rng.gen_range(1..=10).to_string();
            self.b.start_element("quantity");
            self.b.text(&q);
            self.b.end_element();
            self.b.start_element("type");
            self.b.text("Regular");
            self.b.end_element();
            self.annotation();
            self.b.end_element();
        }
        self.b.end_element();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use standoff_xml::NodeId;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&XmarkConfig::with_scale(0.001));
        let b = generate(&XmarkConfig::with_scale(0.001));
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(
            standoff_xml::serialize_document(&a, Default::default()),
            standoff_xml::serialize_document(&b, Default::default())
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&XmarkConfig {
            scale: 0.001,
            seed: 1,
        });
        let b = generate(&XmarkConfig {
            scale: 0.001,
            seed: 2,
        });
        assert_ne!(
            standoff_xml::serialize_document(&a, Default::default()),
            standoff_xml::serialize_document(&b, Default::default())
        );
    }

    #[test]
    fn entity_counts_match_config() {
        let config = XmarkConfig::with_scale(0.002);
        let doc = generate(&config);
        doc.check_invariants().unwrap();
        assert_eq!(doc.elements_named("item").len(), config.n_items());
        assert_eq!(doc.elements_named("person").len(), config.n_people());
        assert_eq!(
            doc.elements_named("open_auction").len(),
            config.n_open_auctions()
        );
        assert_eq!(
            doc.elements_named("closed_auction").len(),
            config.n_closed_auctions()
        );
        assert_eq!(doc.elements_named("category").len(), config.n_categories());
        assert_eq!(doc.elements_named("site").len(), 1);
        // All six continents present.
        for (region, _) in REGIONS {
            assert_eq!(doc.elements_named(region).len(), 1, "{region}");
        }
    }

    #[test]
    fn ids_are_sequential_and_referenced() {
        let config = XmarkConfig::with_scale(0.001);
        let doc = generate(&config);
        let people = doc.elements_named("person");
        assert_eq!(doc.attribute(people[0], "id"), Some("person0"));
        let last = people[people.len() - 1];
        assert_eq!(
            doc.attribute(last, "id"),
            Some(format!("person{}", config.n_people() - 1).as_str())
        );
        // References point inside the id spaces.
        for &r in doc.elements_named("itemref") {
            let target = doc.attribute(r, "item").unwrap();
            let n: usize = target["item".len()..].parse().unwrap();
            assert!(n < config.n_items());
        }
    }

    #[test]
    fn size_scales_roughly_linearly() {
        let small = serialized_size(&generate(&XmarkConfig::with_scale(0.001)));
        let large = serialized_size(&generate(&XmarkConfig::with_scale(0.004)));
        let ratio = large as f64 / small as f64;
        assert!(
            (2.5..6.0).contains(&ratio),
            "expected ~4x growth, got {ratio:.2} ({small} -> {large})"
        );
    }

    #[test]
    fn scale_calibration_near_xmark() {
        // xmlgen: factor 1.0 ≈ 100 MB. Check our 0.002 is within a loose
        // band of 200 KB (document structure differs slightly in prose
        // length, not in element counts).
        let size = serialized_size(&generate(&XmarkConfig::with_scale(0.002)));
        assert!(
            (80_000..500_000).contains(&size),
            "scale 0.002 gave {size} bytes"
        );
    }

    #[test]
    fn auctions_have_bidders_with_increases() {
        let doc = generate(&XmarkConfig::with_scale(0.002));
        let bidders = doc.elements_named("bidder");
        assert!(!bidders.is_empty());
        let with_increase = bidders
            .iter()
            .filter(|&&b| {
                doc.children(b)
                    .any(|c| doc.node_name(NodeId::tree(c)) == "increase")
            })
            .count();
        assert_eq!(with_increase, bidders.len(), "every bidder has an increase");
    }
}
