//! XMark queries Q1, Q2, Q6, Q7 — standard and StandOff form (§4.6).
//!
//! "Queries 1, 2, 6, and 7 of the XMark benchmark were rewritten to use
//! StandOff annotation. This means that descendant and child steps were
//! replaced by select-narrow." Figure 5 of the paper shows the rewritten
//! Q2; the other rewrites follow the same rule.

/// The four benchmark queries of the paper's evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum XmarkQuery {
    /// Name of the person with id `person0`.
    Q1,
    /// Initial increases of all open auctions (Figure 5).
    Q2,
    /// Number of items per region set.
    Q6,
    /// Amount of "prose" (descriptions, annotations, email addresses).
    Q7,
}

impl XmarkQuery {
    pub const ALL: [XmarkQuery; 4] = [
        XmarkQuery::Q1,
        XmarkQuery::Q2,
        XmarkQuery::Q6,
        XmarkQuery::Q7,
    ];

    pub fn id(self) -> &'static str {
        match self {
            XmarkQuery::Q1 => "Q1",
            XmarkQuery::Q2 => "Q2",
            XmarkQuery::Q6 => "Q6",
            XmarkQuery::Q7 => "Q7",
        }
    }

    /// The original XMark query against the standard (nested) document.
    pub fn standard(self, uri: &str) -> String {
        match self {
            XmarkQuery::Q1 => format!(
                r#"for $b in doc("{uri}")/site/people/person[@id = "person0"]
                   return $b/name/text()"#
            ),
            XmarkQuery::Q2 => format!(
                r#"for $b in doc("{uri}")/site/open_auctions/open_auction
                   return <increase> {{ $b/bidder[1]/increase/text() }} </increase>"#
            ),
            XmarkQuery::Q6 => {
                format!(r#"for $b in doc("{uri}")//site/regions return count($b//item)"#)
            }
            XmarkQuery::Q7 => format!(
                r#"for $p in doc("{uri}")/site
                   return count($p//description) + count($p//annotation) + count($p//emailaddress)"#
            ),
        }
    }

    /// The StandOff rewrite against the StandOff-ified document:
    /// `child`/`descendant` steps become `select-narrow` (Q2 is verbatim
    /// Figure 5).
    pub fn standoff(self, uri: &str) -> String {
        match self {
            XmarkQuery::Q1 => format!(
                r#"for $b in doc("{uri}")/site/select-narrow::people
                              /select-narrow::person[@id = "person0"]
                   return $b/select-narrow::name"#
            ),
            XmarkQuery::Q2 => format!(
                r#"for $b in doc("{uri}")
                     //site/select-narrow::open_auctions
                     /select-narrow::open_auction
                   return <increase> {{
                     $b/select-narrow::bidder[1]/select-narrow::increase
                   }} </increase>"#
            ),
            XmarkQuery::Q6 => format!(
                r#"for $b in doc("{uri}")//site/select-narrow::regions
                   return count($b/select-narrow::item)"#
            ),
            XmarkQuery::Q7 => format!(
                r#"for $p in doc("{uri}")/site
                   return count($p/select-narrow::description)
                        + count($p/select-narrow::annotation)
                        + count($p/select-narrow::emailaddress)"#
            ),
        }
    }
}

impl XmarkQuery {
    /// The StandOff rewrite evaluated through the paper's **Figure 3
    /// user-defined function** (Alternative 2: XQuery Function *with*
    /// Candidate Sequence). This is the query text the paper's
    /// corresponding Figure 6 column measures: the join runs as a real
    /// nested FLWOR through the engine, quadratic in |context| ×
    /// |candidates| per iteration.
    pub fn standoff_udf_candidates(self, uri: &str) -> String {
        let prolog = r#"declare function sn($input, $candidates) {
  (for $q in $input
   for $p in $candidates
   where $p/@start >= $q/@start
     and $p/@end <= $q/@end
     and root($p) is root($q)
   return $p)/.
};
"#;
        let body = match self {
            XmarkQuery::Q1 => format!(
                r#"for $b in sn(sn(doc("{uri}")/site, doc("{uri}")//people),
                              doc("{uri}")//person)[@id = "person0"]
                   return sn($b, doc("{uri}")//name)"#
            ),
            XmarkQuery::Q2 => format!(
                r#"for $b in sn(sn(doc("{uri}")//site, doc("{uri}")//open_auctions),
                              doc("{uri}")//open_auction)
                   return <increase> {{
                     sn(sn($b, doc("{uri}")//bidder)[1], doc("{uri}")//increase)
                   }} </increase>"#
            ),
            XmarkQuery::Q6 => format!(
                r#"for $b in sn(doc("{uri}")//site, doc("{uri}")//regions)
                   return count(sn($b, doc("{uri}")//item))"#
            ),
            XmarkQuery::Q7 => format!(
                r#"for $p in doc("{uri}")/site
                   return count(sn($p, doc("{uri}")//description))
                        + count(sn($p, doc("{uri}")//annotation))
                        + count(sn($p, doc("{uri}")//emailaddress))"#
            ),
        };
        format!("{prolog}{body}")
    }

    /// The StandOff rewrite through the paper's **Figure 2 user-defined
    /// function** (Alternative 1: no candidate sequence — the inner loop
    /// visits `root($q)//*`). The paper reports DNF for this variant on
    /// every query at every tested size.
    pub fn standoff_udf_no_candidates(self, uri: &str) -> String {
        let prolog = r#"declare function sn1($input) {
  (for $q in $input
   for $p in root($q)//*
   where $p/@start >= $q/@start
     and $p/@end <= $q/@end
   return $p)/.
};
"#;
        let body = match self {
            XmarkQuery::Q1 => format!(
                r#"for $b in (sn1(sn1(doc("{uri}")/site)/self::people)
                             /self::person)[@id = "person0"]
                   return sn1($b)/self::name"#
            ),
            XmarkQuery::Q2 => format!(
                r#"for $b in sn1(sn1(doc("{uri}")//site)/self::open_auctions)
                             /self::open_auction
                   return <increase> {{
                     sn1((sn1($b)/self::bidder)[1])/self::increase
                   }} </increase>"#
            ),
            XmarkQuery::Q6 => format!(
                r#"for $b in sn1(doc("{uri}")//site)/self::regions
                   return count(sn1($b)/self::item)"#
            ),
            XmarkQuery::Q7 => format!(
                r#"for $p in doc("{uri}")/site
                   return count(sn1($p)/self::description)
                        + count(sn1($p)/self::annotation)
                        + count(sn1($p)/self::emailaddress)"#
            ),
        };
        format!("{prolog}{body}")
    }
}

impl std::fmt::Display for XmarkQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_texts_mention_their_mechanism() {
        for q in XmarkQuery::ALL {
            assert!(!q.standard("u").contains("select-narrow"), "{q}");
            assert!(q.standoff("u").contains("select-narrow"), "{q}");
            assert!(q.standard("u").contains("doc(\"u\")"), "{q}");
        }
    }

    #[test]
    fn figure5_shape() {
        let q2 = XmarkQuery::Q2.standoff("xmark110MB.xml");
        assert!(q2.contains("select-narrow::open_auctions"));
        assert!(q2.contains("select-narrow::open_auction"));
        assert!(q2.contains("select-narrow::bidder[1]"));
        assert!(q2.contains("select-narrow::increase"));
        assert!(q2.contains("<increase>"));
    }
}
