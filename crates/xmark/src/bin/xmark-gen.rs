//! `xmark-gen` — generate XMark / StandOff-XMark files on disk.
//!
//! ```text
//! xmark-gen --scale 0.01 [--seed 42] [--out DIR] [--standard] [--standoff]
//! ```
//!
//! Writes `xmark-<scale>.xml` (the standard nested document),
//! `xmark-<scale>-standoff.xml` (the StandOff twin) and
//! `xmark-<scale>.blob` (the extracted BLOB) into the output directory.
//! The files can be loaded with `standoff-xq --load`.

use std::path::PathBuf;
use std::process::ExitCode;

use standoff_xmark::{generate, standoffify, XmarkConfig};

fn main() -> ExitCode {
    let mut scale = 0.01f64;
    let mut seed = XmarkConfig::default().seed;
    let mut out = PathBuf::from(".");
    let mut standard = false;
    let mut standoff = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut k = 0;
    while k < args.len() {
        match args[k].as_str() {
            "--scale" => {
                k += 1;
                scale = match args.get(k).and_then(|s| s.parse().ok()) {
                    Some(v) => v,
                    None => return usage("--scale needs a number"),
                };
            }
            "--seed" => {
                k += 1;
                seed = match args.get(k).and_then(|s| s.parse().ok()) {
                    Some(v) => v,
                    None => return usage("--seed needs an integer"),
                };
            }
            "--out" => {
                k += 1;
                out = match args.get(k) {
                    Some(p) => PathBuf::from(p),
                    None => return usage("--out needs a directory"),
                };
            }
            "--standard" => standard = true,
            "--standoff" => standoff = true,
            "--help" | "-h" => {
                return usage("");
            }
            other => return usage(&format!("unknown argument '{other}'")),
        }
        k += 1;
    }
    if !standard && !standoff {
        standard = true;
        standoff = true;
    }

    eprintln!("generating XMark at scale {scale} (seed {seed})...");
    let config = XmarkConfig { scale, seed };
    let doc = generate(&config);
    eprintln!("  {} nodes", doc.node_count());

    let stem = format!("xmark-{scale}");
    if standard {
        let path = out.join(format!("{stem}.xml"));
        let xml = standoff_xml::serialize_document(&doc, Default::default());
        if let Err(e) = std::fs::write(&path, &xml) {
            eprintln!("xmark-gen: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "  wrote {} ({:.2} MB)",
            path.display(),
            xml.len() as f64 / 1e6
        );
    }
    if standoff {
        let so = standoffify(&doc, seed);
        let path = out.join(format!("{stem}-standoff.xml"));
        let xml = standoff_xml::serialize_document(&so.doc, Default::default());
        if let Err(e) = std::fs::write(&path, &xml) {
            eprintln!("xmark-gen: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "  wrote {} ({:.2} MB)",
            path.display(),
            xml.len() as f64 / 1e6
        );
        let blob_path = out.join(format!("{stem}.blob"));
        if let Err(e) = std::fs::write(&blob_path, so.blob.as_bytes()) {
            eprintln!("xmark-gen: cannot write {}: {e}", blob_path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "  wrote {} ({:.2} MB BLOB)",
            blob_path.display(),
            so.blob.len() as f64 / 1e6
        );
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("xmark-gen: {err}");
    }
    eprintln!("usage: xmark-gen [--scale F] [--seed N] [--out DIR] [--standard] [--standoff]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
