//! # standoff-xmark
//!
//! The evaluation workload of the paper (§4.6): the XMark auction
//! benchmark (Schmidt et al., VLDB 2002), generated from scratch, plus
//! the paper's *StandOff-ification*:
//!
//! * [`generate`] — a deterministic XMark document generator with the
//!   original element hierarchy (site / regions / categories / catgraph /
//!   people / open_auctions / closed_auctions) and skewed text, scaled by
//!   a factor like the original `xmlgen`;
//! * [`standoffify()`](standoffify::standoffify) — the §4.6 transform: move all character data into a
//!   separate BLOB, attach `start`/`end` region attributes to every
//!   element, and permute the element order at a coarse level so that the
//!   original parent-child relationships are no longer represented by the
//!   tree (only by the regions);
//! * [`queries`] — XMark queries Q1, Q2, Q6 and Q7 in their standard and
//!   StandOff forms (Figure 5 shows the StandOff Q2).

pub mod generator;
pub mod queries;
pub mod standoffify;
mod words;

pub use generator::{generate, serialized_size, XmarkConfig};
pub use standoffify::{standoffify, StandoffDoc};
