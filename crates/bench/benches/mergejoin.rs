//! StandOff MergeJoin microbenchmarks and ablations:
//!
//! * loop-lifted vs basic (per-iteration) invocation as the iteration
//!   count grows — the mechanism behind the paper's Q2 blow-up;
//! * the active-list context-skip optimization (Listing 1 lines 11–18)
//!   on nested context workloads (`per_annotation = true` disables
//!   cross-annotation skipping, isolating the optimization's value);
//! * select-narrow vs select-wide merge cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use standoff_core::join::merge::{
    basic_select_narrow, ll_select_narrow, ll_select_narrow_heap, ll_select_wide,
};
use standoff_core::join::CtxEntry;
use standoff_core::RegionEntry;

/// Deterministic synthetic workload: `n_ctx` context regions spread over
/// `iters` iterations, nested in chains of depth ~4, over `n_cand`
/// candidates.
fn workload(n_ctx: usize, iters: u32, n_cand: usize) -> (Vec<CtxEntry>, Vec<RegionEntry>) {
    let mut context = Vec::with_capacity(n_ctx);
    let mut x = 0i64;
    for k in 0..n_ctx {
        // Chains of nested regions: every 4th starts a new chain.
        let depth = (k % 4) as i64;
        let base = x - depth * 10;
        let len = 100 - depth * 20;
        context.push(CtxEntry {
            iter: (k as u32) % iters,
            node: k as u32,
            start: base.max(0),
            end: base.max(0) + len,
        });
        if k % 4 == 3 {
            x += 37;
        }
    }
    context.sort_by_key(|c| (c.start, c.end, c.iter));
    let mut candidates = Vec::with_capacity(n_cand);
    for k in 0..n_cand {
        let start = (k as i64 * 13) % (x + 200);
        candidates.push(RegionEntry {
            start,
            end: start + (k as i64 % 40),
            id: k as u32,
        });
    }
    candidates.sort_by_key(|e| (e.start, e.end));
    (context, candidates)
}

fn mergejoin(c: &mut Criterion) {
    // Loop-lifted vs basic as iteration count grows (context and
    // candidate sizes fixed): basic re-scans candidates per iteration.
    let mut group = c.benchmark_group("ll_vs_basic");
    for iters in [1u32, 16, 256, 1024] {
        let (context, candidates) = workload(2048, iters, 8192);
        group.bench_with_input(BenchmarkId::new("loop-lifted", iters), &iters, |b, _| {
            b.iter(|| ll_select_narrow(&context, &candidates, false, None));
        });
        group.bench_with_input(BenchmarkId::new("basic", iters), &iters, |b, _| {
            b.iter(|| basic_select_narrow(&context, &candidates, false, None));
        });
    }
    group.finish();

    // Context-skip ablation: heavily nested contexts in one iteration.
    let mut group = c.benchmark_group("context_skip_ablation");
    let (context, candidates) = workload(4096, 1, 8192);
    group.bench_function("skip_enabled", |b| {
        b.iter(|| ll_select_narrow(&context, &candidates, false, None));
    });
    group.bench_function("skip_disabled(per_annotation)", |b| {
        b.iter(|| ll_select_narrow(&context, &candidates, true, None));
    });
    group.finish();

    // §5 future work: heap-based vs sorted-list active items. The heap
    // wins when the active list grows long (many simultaneously-open
    // long regions); the list wins on shallow workloads.
    let mut group = c.benchmark_group("active_list_heap_vs_list");
    for (label, n_ctx) in [("shallow", 512usize), ("deep", 8192usize)] {
        let (context, candidates) = workload(n_ctx, 4, 8192);
        group.bench_function(BenchmarkId::new("sorted-list", label), |b| {
            b.iter(|| ll_select_narrow(&context, &candidates, false, None));
        });
        group.bench_function(BenchmarkId::new("heap", label), |b| {
            b.iter(|| ll_select_narrow_heap(&context, &candidates));
        });
    }
    group.finish();

    // Allocation discipline: many small joins back to back, fresh
    // buffers per join vs one reused JoinScratch (the executor's shape).
    let mut group = c.benchmark_group("scratch_reuse");
    {
        let pairs: Vec<(u32, standoff_core::Area)> = (0..256)
            .map(|k| {
                let s = k as i64 * 10;
                (k, standoff_core::Area::single(s, s + 8).unwrap())
            })
            .collect();
        let index = standoff_core::RegionIndex::from_areas(&pairs);
        let doc = standoff_xml::parse_document("<d/>").unwrap();
        let context: Vec<standoff_core::IterNode> = (0..32)
            .map(|k| standoff_core::IterNode {
                iter: k,
                node: k * 7,
            })
            .collect();
        let cands: Vec<u32> = (0..64u32).map(|k| k * 4).collect();
        let iter_domain: Vec<u32> = (0..32).collect();
        let input = standoff_core::JoinInput {
            doc: &doc,
            index: (&index).into(),
            ctx_index: None,
            context: &context,
            candidates: Some(&cands),
            iter_domain: &iter_domain,
        };
        group.bench_function("fresh_buffers_x64", |b| {
            b.iter(|| {
                for _ in 0..64 {
                    standoff_core::evaluate_standoff_join(
                        standoff_core::StandoffAxis::SelectNarrow,
                        standoff_core::StandoffStrategy::LoopLiftedMergeJoin,
                        &input,
                        None,
                    );
                }
            });
        });
        group.bench_function("shared_scratch_x64", |b| {
            let mut scratch = standoff_core::JoinScratch::default();
            b.iter(|| {
                for _ in 0..64 {
                    standoff_core::evaluate_standoff_join_with(
                        standoff_core::StandoffAxis::SelectNarrow,
                        standoff_core::StandoffStrategy::LoopLiftedMergeJoin,
                        &input,
                        None,
                        &mut scratch,
                    );
                }
            });
        });
    }
    group.finish();

    // Narrow vs wide merge cores on the same input.
    let mut group = c.benchmark_group("narrow_vs_wide");
    let (context, candidates) = workload(2048, 64, 8192);
    group.bench_function("select-narrow", |b| {
        b.iter(|| ll_select_narrow(&context, &candidates, false, None));
    });
    group.bench_function("select-wide", |b| {
        b.iter(|| ll_select_wide(&context, &candidates));
    });
    group.finish();
}

criterion_group!(benches, mergejoin);
criterion_main!(benches);
