//! Batch executor throughput: one shared XMark StandOff corpus, a
//! ≥100-query batch, swept over worker-thread counts and AST-cache
//! temperature.
//!
//! What the sweep shows:
//!
//! * `threads/N` — fan-out over N sessions of one `SharedEngine`. On
//!   multi-core hardware throughput should exceed 1.5× single-thread
//!   well before N = 4 (the per-query work dominates; session setup is
//!   a pointer-copy clone). On a single hardware thread the numbers
//!   degenerate to ~1× — check `nproc` before reading too much into
//!   them.
//! * `cache/cold-vs-warm` — identical batch with a fresh parsed-query
//!   cache per run vs a pre-warmed one; the difference is pure parser
//!   time, the saving a repeated-query service keeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use standoff_bench::{prepare_workload, SO_URI};
use standoff_xmark::queries::XmarkQuery;
use standoff_xquery::{Executor, SharedEngine};

/// A 120-query batch over the StandOff XMark document: the paper's
/// axis-step queries plus aggregate and FLWOR shapes, 24 distinct
/// texts, each repeated 5× (a service workload is repeat-heavy).
fn build_batch() -> Vec<String> {
    let mut distinct = Vec::new();
    for k in 0..24 {
        distinct.push(match k % 4 {
            0 => XmarkQuery::Q1.standoff(SO_URI),
            1 => XmarkQuery::Q2.standoff(SO_URI),
            2 => format!(
                r#"count(doc("{SO_URI}")//person[position() <= {}]/select-wide::emailaddress)"#,
                k + 1
            ),
            _ => format!(
                r#"for $a in doc("{SO_URI}")//open_auction[position() <= {}]
                   order by $a/@id return $a/select-narrow::increase"#,
                k + 1
            ),
        });
    }
    let mut batch = Vec::new();
    for _ in 0..5 {
        batch.extend(distinct.iter().cloned());
    }
    batch
}

fn shared_corpus() -> SharedEngine {
    let workload = prepare_workload(0.002);
    workload.engine.into_shared()
}

fn batch_exec(c: &mut Criterion) {
    let shared = shared_corpus();
    let batch = build_batch();

    let mut group = c.benchmark_group("batch_exec");
    group.sample_size(5);

    // Thread sweep, warm cache (the Bencher's warm-up run primes it).
    for threads in [1usize, 2, 4, 8] {
        let exec = Executor::new(shared.clone(), threads);
        group.bench_with_input(BenchmarkId::new("threads", threads), &batch, |b, batch| {
            b.iter(|| {
                let results = exec.run_batch(batch);
                assert!(results.iter().all(|r| r.is_ok()));
                results.len()
            });
        });
    }

    // Cache temperature at one thread: parser cost on every query vs
    // only on first sight of each distinct text.
    group.bench_with_input(BenchmarkId::new("cache", "cold"), &batch, |b, batch| {
        b.iter(|| {
            // Fresh executor per run: empty AST cache, every query
            // parses.
            let exec = Executor::new(shared.clone(), 1);
            exec.run_batch(batch).len()
        });
    });
    let warm = Executor::new(shared.clone(), 1);
    warm.run_batch(&batch); // prime
    group.bench_with_input(BenchmarkId::new("cache", "warm"), &batch, |b, batch| {
        b.iter(|| warm.run_batch(batch).len());
    });

    group.finish();
}

criterion_group!(benches, batch_exec);
criterion_main!(benches);
