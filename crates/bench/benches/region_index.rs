//! Region-index microbenchmarks (paper §4.3) and the candidate-pushdown
//! ablation (§3.3(iii)): index construction, candidate-sequence
//! intersection at varying selectivity, and the effect of pushdown on a
//! full join.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use standoff_core::{
    evaluate_standoff_join, IterNode, JoinInput, RegionIndex, StandoffAxis, StandoffConfig,
    StandoffStrategy,
};
use standoff_xmark::{generate, standoffify, XmarkConfig};

fn region_index(c: &mut Criterion) {
    let src = generate(&XmarkConfig::with_scale(0.005));
    let so = standoffify(&src, 7);
    let config = StandoffConfig::default();

    c.bench_function("region_index/build", |b| {
        b.iter(|| RegionIndex::build(&so.doc, &config).unwrap());
    });

    let index = RegionIndex::build(&so.doc, &config).unwrap();

    // Candidate intersection at different selectivities: a rare element
    // (person: ~9% of nodes) vs a common wildcard-ish one.
    let mut group = c.benchmark_group("region_index/candidates_for");
    for name in ["person", "bidder", "incategory"] {
        let nodes = so.doc.elements_named(name).to_vec();
        group.bench_with_input(BenchmarkId::from_parameter(name), &nodes, |b, nodes| {
            b.iter(|| index.candidates_for(nodes));
        });
    }
    group.finish();

    // Sparse-pushdown scaling: a fixed 64-candidate set against indexes
    // an order of magnitude apart in size. The node-view path must cost
    // (roughly) the same on both — candidate-count scaling — while the
    // forced scan baseline grows with the index. This is the
    // "no longer Θ(|index|)" acceptance measurement.
    let mut group = c.benchmark_group("region_index/sparse_scaling");
    for n in [10_000usize, 100_000] {
        let pairs: Vec<(u32, standoff_core::Area)> = (0..n)
            .map(|k| {
                let s = k as i64 * 10;
                (k as u32, standoff_core::Area::single(s, s + 8).unwrap())
            })
            .collect();
        let synthetic = standoff_core::RegionIndex::from_areas(&pairs);
        let sparse: Vec<u32> = (0..64u32).map(|k| k * (n as u32 / 64)).collect();
        group.bench_with_input(
            BenchmarkId::new("adaptive_64_cands", n),
            &sparse,
            |b, cands| {
                b.iter(|| synthetic.candidates_for(cands));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("forced_scan_64_cands", n),
            &sparse,
            |b, cands| {
                b.iter(|| synthetic.candidates_for_scan(cands));
            },
        );
    }
    group.finish();

    // Regression guard for the overlay seam: a dense candidate set
    // pulled through a *pure* RegionSource must cost the same as the
    // raw-index scan — no per-entry retraction check may leak into the
    // snapshot-only path (the PR-7 regression). A source with
    // retractions is benched alongside so the post-pass cost stays an
    // explicit, separate number.
    let mut group = c.benchmark_group("region_index/dense_pure_source");
    {
        let pairs: Vec<(u32, standoff_core::Area)> = (0..50_000)
            .map(|k| {
                let s = k as i64 * 10;
                (k as u32, standoff_core::Area::single(s, s + 8).unwrap())
            })
            .collect();
        let synthetic = standoff_core::RegionIndex::from_areas(&pairs);
        let dense: Vec<u32> = (0..25_000u32).map(|k| k * 2).collect();
        let retracted: Vec<u32> = (0..250u32).map(|k| k * 200).collect();
        group.bench_function("candidates_dense_raw_index", |b| {
            let mut out = Vec::new();
            b.iter(|| {
                synthetic.candidates_into(&dense, &mut out);
                out.len()
            });
        });
        group.bench_function("candidates_dense_pure_source", |b| {
            let source = standoff_core::RegionSource::from_index(&synthetic);
            let mut out = Vec::new();
            b.iter(|| {
                source.candidates_into(&dense, &mut out);
                out.len()
            });
        });
        group.bench_function("candidates_dense_retracting_source", |b| {
            let source = standoff_core::RegionSource::with_retractions(&synthetic, &retracted);
            let mut out = Vec::new();
            b.iter(|| {
                source.candidates_into(&dense, &mut out);
                out.len()
            });
        });
    }
    group.finish();

    // Pushdown ablation: select-narrow from <open_auction> contexts to
    // <increase> candidates, with and without the candidate restriction.
    let auctions = so.doc.elements_named("open_auction").to_vec();
    let context: Vec<IterNode> = auctions
        .iter()
        .map(|&node| IterNode { iter: 0, node })
        .collect();
    let increases = so.doc.elements_named("increase").to_vec();
    let mut group = c.benchmark_group("pushdown_ablation");
    group.bench_function("with_candidates", |b| {
        b.iter(|| {
            let input = JoinInput {
                doc: &so.doc,
                index: (&index).into(),
                ctx_index: None,
                context: &context,
                candidates: Some(&increases),
                iter_domain: &[0],
            };
            evaluate_standoff_join(
                StandoffAxis::SelectNarrow,
                StandoffStrategy::LoopLiftedMergeJoin,
                &input,
                None,
            )
        });
    });
    group.bench_function("without_candidates", |b| {
        b.iter(|| {
            let input = JoinInput {
                doc: &so.doc,
                index: (&index).into(),
                ctx_index: None,
                context: &context,
                candidates: None,
                iter_domain: &[0],
            };
            evaluate_standoff_join(
                StandoffAxis::SelectNarrow,
                StandoffStrategy::LoopLiftedMergeJoin,
                &input,
                None,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, region_index);
criterion_main!(benches);
