//! Query compilation cost: parse → lower → optimize, and the
//! plan-cache temperatures that amortize it.
//!
//! What the sweep shows:
//!
//! * `compile/<query>` — full execution-path pipeline cost per query
//!   shape (parse + 1:1 lowering + the optimizer passes; explain-only
//!   estimates are skipped on this path). This is the latency a cache
//!   miss adds to a query.
//! * `cache/cold-vs-warm` — a repeat-heavy batch through a fresh
//!   [`QueryCache`] (every distinct text compiles once) vs a pre-warmed
//!   one (every lookup hits); the difference is what the compiled-plan
//!   cache saves an annotation service.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use standoff_bench::{prepare_workload, SO_URI};
use standoff_xmark::queries::XmarkQuery;
use standoff_xquery::{Executor, QueryCache, SharedEngine};

fn query_set() -> Vec<(&'static str, String)> {
    vec![
        ("q1", XmarkQuery::Q1.standoff(SO_URI)),
        ("q2", XmarkQuery::Q2.standoff(SO_URI)),
        ("q7", XmarkQuery::Q7.standoff(SO_URI)),
        (
            "flwor-hoist",
            format!(
                r#"for $a in doc("{SO_URI}")//open_auction
                   order by $a/@id
                   return ($a/select-narrow::increase, count(doc("{SO_URI}")//person))"#
            ),
        ),
    ]
}

fn shared_corpus() -> SharedEngine {
    prepare_workload(0.002).engine.into_shared()
}

fn plan_compile(c: &mut Criterion) {
    let shared = shared_corpus();
    let queries = query_set();

    let mut group = c.benchmark_group("plan_compile");

    for (label, text) in &queries {
        group.bench_with_input(BenchmarkId::new("compile", label), text, |b, text| {
            b.iter(|| shared.compile(text).expect("compiles").passes.len());
        });
    }

    // Cache temperature over a repeat-heavy batch (24 distinct texts ×
    // 5 repeats — the shape of a service workload).
    let batch: Vec<String> = {
        let distinct: Vec<String> = (0..24)
            .map(|k| {
                let (_, base) = &queries[k % queries.len()];
                format!("({base}, {k})")
            })
            .collect();
        (0..5).flat_map(|_| distinct.iter().cloned()).collect()
    };
    group.bench_with_input(BenchmarkId::new("cache", "cold"), &batch, |b, batch| {
        b.iter(|| {
            let cache = QueryCache::new(256);
            for q in batch {
                cache.get_or_compile(q, &shared).expect("compiles");
            }
            cache.misses()
        });
    });
    let warm = QueryCache::new(256);
    for q in &batch {
        warm.get_or_compile(q, &shared).expect("compiles");
    }
    group.bench_with_input(BenchmarkId::new("cache", "warm"), &batch, |b, batch| {
        b.iter(|| {
            for q in batch {
                warm.get_or_compile(q, &shared).expect("compiles");
            }
            warm.hits()
        });
    });

    // End-to-end sanity: one executor run over the batch so the bench
    // binary exercises the full plan-cached execution path too.
    let exec = Executor::new(shared, 1);
    group.sample_size(10);
    group.bench_function("batch-roundtrip", |b| {
        b.iter(|| {
            let results = exec.run_batch(&batch);
            assert!(results.iter().all(|r| r.is_ok()));
            results.len()
        });
    });

    group.finish();
}

criterion_group!(benches, plan_compile);
criterion_main!(benches);
