//! Criterion form of the §4.6 claim: loop-lifted `select-narrow` vs the
//! loop-lifted `descendant` Staircase Join on the same logical queries
//! (paper: select-narrow ≤ ~20% slower).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use standoff_bench::{prepare_workload, SO_URI, STD_URI};
use standoff_core::StandoffStrategy;
use standoff_xmark::queries::XmarkQuery;

fn staircase_vs_standoff(c: &mut Criterion) {
    let mut w = prepare_workload(0.005);
    w.engine.set_strategy(StandoffStrategy::LoopLiftedMergeJoin);
    let mut group = c.benchmark_group("staircase_vs_standoff");
    group.sample_size(10);
    for query in XmarkQuery::ALL {
        let std_q = query.standard(STD_URI);
        group.bench_function(BenchmarkId::new(query.id(), "descendant-staircase"), |b| {
            b.iter(|| w.engine.run_and_discard(&std_q).unwrap());
        });
        let so_q = query.standoff(SO_URI);
        group.bench_function(BenchmarkId::new(query.id(), "select-narrow"), |b| {
            b.iter(|| w.engine.run_and_discard(&so_q).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, staircase_vs_standoff);
criterion_main!(benches);
