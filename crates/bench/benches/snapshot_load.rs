//! Cold-start comparison: opening an XMark StandOff corpus from a binary
//! snapshot vs re-parsing the XML and rebuilding the region index —
//! and, since SOSN v3, *mounting* the snapshot (zero-copy column views,
//! lazy layers) vs eagerly decoding it.
//!
//! The snapshot path is the `standoff-store` claim to fame — reopening a
//! bulk-loaded annotation database should cost I/O plus validation, not
//! a parse, an allocation per node value, or a `RegionIndex::build`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use standoff_core::{RegionIndex, StandoffConfig};
use standoff_store::{write_snapshot, write_snapshot_legacy, LayerSet, Snapshot};
use standoff_xmark::{generate, standoffify, XmarkConfig};
use standoff_xml::parse_document;

fn snapshot_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_load");
    group.sample_size(10);

    for scale in [0.002, 0.01] {
        let so = standoffify(&generate(&XmarkConfig::with_scale(scale)), 7);
        let xml = standoff_xml::serialize_document(&so.doc, Default::default());
        let config = StandoffConfig::default();

        // Base layer plus a shadow sibling, so multi-layer costs show.
        let shadow = parse_document(&xml).unwrap();
        let mut set = LayerSet::build("xmark-standoff.xml", so.doc, config.clone()).unwrap();
        set.add_layer("shadow", shadow, config.clone()).unwrap();

        let mut legacy = Vec::new();
        write_snapshot_legacy(&set, &mut legacy).unwrap();
        let mut v3 = Vec::new();
        write_snapshot(&set, &mut v3).unwrap();

        let label = format!("{:.1}KB", xml.len() as f64 / 1024.0);

        // Cold start the old way: parse the XML, rebuild the index.
        group.bench_with_input(BenchmarkId::new("parse+build", &label), &xml, |b, xml| {
            b.iter(|| {
                let doc = parse_document(xml).unwrap();
                RegionIndex::build(&doc, &config).unwrap()
            });
        });

        // Cold start from the legacy snapshot: eager streamed decode.
        group.bench_with_input(
            BenchmarkId::new("decode-v1", &label),
            &legacy,
            |b, bytes| {
                b.iter(|| {
                    Snapshot::from_bytes(bytes.clone())
                        .unwrap()
                        .to_layer_set()
                        .unwrap()
                });
            },
        );

        // Cold mount of the v3 snapshot, all layers materialized.
        group.bench_with_input(BenchmarkId::new("mount-v3", &label), &v3, |b, bytes| {
            b.iter(|| {
                Snapshot::from_bytes(bytes.clone())
                    .unwrap()
                    .to_layer_set()
                    .unwrap()
            });
        });

        // Lazy open: header + section-table walk only.
        group.bench_with_input(BenchmarkId::new("open-lazy-v3", &label), &v3, |b, bytes| {
            b.iter(|| Snapshot::from_bytes(bytes.clone()).unwrap());
        });

        // First query latency including engine mount, from the v3 snapshot.
        group.bench_with_input(
            BenchmarkId::new("snapshot+first-query", &label),
            &v3,
            |b, bytes| {
                b.iter(|| {
                    let snapshot = Snapshot::from_bytes(bytes.clone()).unwrap();
                    let mut engine = standoff_xquery::Engine::new();
                    engine.mount_snapshot(&snapshot).unwrap();
                    engine
                        .run(r#"count(doc("xmark-standoff.xml")//item)"#)
                        .unwrap()
                        .len()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, snapshot_load);
criterion_main!(benches);
