//! Cold-start comparison: opening an XMark StandOff corpus from a binary
//! snapshot vs re-parsing the XML and rebuilding the region index.
//!
//! The snapshot path is the `standoff-store` claim to fame — reopening a
//! bulk-loaded annotation database should cost a validated column read,
//! not a parse + `RegionIndex::build`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use standoff_core::{RegionIndex, StandoffConfig};
use standoff_store::{read_snapshot, write_snapshot, LayerSet};
use standoff_xmark::{generate, standoffify, XmarkConfig};
use standoff_xml::parse_document;

fn snapshot_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_load");
    group.sample_size(10);

    for scale in [0.002, 0.01] {
        let so = standoffify(&generate(&XmarkConfig::with_scale(scale)), 7);
        let xml = standoff_xml::serialize_document(&so.doc, Default::default());
        let config = StandoffConfig::default();

        let set = LayerSet::build("xmark-standoff.xml", so.doc, config.clone()).unwrap();
        let mut snapshot = Vec::new();
        write_snapshot(&set, &mut snapshot).unwrap();

        let label = format!("{:.1}KB", xml.len() as f64 / 1024.0);

        // Cold start the old way: parse the XML, rebuild the index.
        group.bench_with_input(BenchmarkId::new("parse+build", &label), &xml, |b, xml| {
            b.iter(|| {
                let doc = parse_document(xml).unwrap();
                RegionIndex::build(&doc, &config).unwrap()
            });
        });

        // Cold start from the snapshot: validated column reads only.
        group.bench_with_input(
            BenchmarkId::new("snapshot", &label),
            &snapshot,
            |b, snapshot| {
                b.iter(|| read_snapshot(&mut snapshot.as_slice()).unwrap());
            },
        );

        // First query latency including engine mount, from snapshot.
        group.bench_with_input(
            BenchmarkId::new("snapshot+first-query", &label),
            &snapshot,
            |b, snapshot| {
                b.iter(|| {
                    let set = read_snapshot(&mut snapshot.as_slice()).unwrap();
                    let mut engine = standoff_xquery::Engine::new();
                    engine.mount_store(set).unwrap();
                    engine
                        .run(r#"count(doc("xmark-standoff.xml")//item)"#)
                        .unwrap()
                        .len()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, snapshot_load);
criterion_main!(benches);
