//! Criterion form of the Figure 6 sweep: XMark Q1/Q2/Q6/Q7 under the
//! paper's variant columns at two document sizes. The `figure6` binary
//! prints the full paper-style table with DNF handling over the whole
//! size ladder; this bench gives statistically robust per-cell numbers
//! for regression tracking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use standoff_bench::{prepare_workload, Figure6Variant, SO_URI};
use standoff_xmark::queries::XmarkQuery;

fn figure6(c: &mut Criterion) {
    // Two sizes keep `cargo bench` under a few minutes; the binary
    // harness covers the full ladder and the DNF columns.
    for scale in [0.001, 0.005] {
        let mut w = prepare_workload(scale);
        let mb = w.standard_bytes as f64 / 1e6;
        let mut group = c.benchmark_group(format!("figure6/{mb:.2}MB"));
        group.sample_size(10);
        for query in XmarkQuery::ALL {
            for variant in [
                Figure6Variant::UdfWithCandidates,
                Figure6Variant::BasicMergeJoin,
                Figure6Variant::LoopLifted,
            ] {
                // The quadratic UDF at the larger size on the loop-heavy
                // queries costs minutes per criterion cell; the binary
                // harness (with its DNF cutoff) covers those.
                if variant == Figure6Variant::UdfWithCandidates
                    && scale > 0.002
                    && matches!(query, XmarkQuery::Q2 | XmarkQuery::Q7)
                {
                    continue;
                }
                w.engine.set_strategy(variant.strategy());
                let q = variant.query_text(query, SO_URI);
                let label = match variant {
                    Figure6Variant::UdfNoCandidates => "udf-no-candidates",
                    Figure6Variant::UdfWithCandidates => "udf-candidates",
                    Figure6Variant::BasicMergeJoin => "basic-mergejoin",
                    Figure6Variant::LoopLifted => "loop-lifted",
                };
                group.bench_function(BenchmarkId::new(query.id(), label), |b| {
                    b.iter(|| w.engine.run_and_discard(&q).unwrap());
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, figure6);
criterion_main!(benches);
