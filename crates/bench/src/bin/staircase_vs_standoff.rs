//! Regenerates the **§4.6 claim**: "the overall performance of
//! select-narrow is less than 20% slower than the loop-lifted descendant
//! Staircase Join".
//!
//! For each query we time the *standard* form (descendant/child steps via
//! Staircase Join on the nested document) against the *StandOff* form
//! (select-narrow via the loop-lifted StandOff MergeJoin on the
//! StandOff-ified twin) and report the slowdown ratio.
//!
//! Usage: `staircase_vs_standoff [--scale 0.01] [--repeats 3]`

use std::time::Instant;

use standoff_algebra::{staircase, NodeTable, NodeTest, TreeAxis};
use standoff_bench::{prepare_workload, time_query, SO_URI, STD_URI};
use standoff_core::{
    evaluate_standoff_join, IterNode, JoinInput, RegionIndex, StandoffAxis, StandoffConfig,
    StandoffStrategy,
};
use standoff_xmark::queries::XmarkQuery;
use standoff_xml::NodeRef;

fn main() {
    let mut scale = 0.01f64;
    let mut repeats = 3usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut k = 0;
    while k < args.len() {
        match args[k].as_str() {
            "--scale" => {
                k += 1;
                scale = args[k].parse().expect("bad scale");
            }
            "--repeats" => {
                k += 1;
                repeats = args[k].parse().expect("bad repeats");
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        k += 1;
    }

    eprintln!("# preparing workload at scale {scale}...");
    let mut w = prepare_workload(scale);
    w.engine.set_strategy(StandoffStrategy::LoopLiftedMergeJoin);
    println!("Staircase Join (descendant) vs loop-lifted StandOff MergeJoin (select-narrow)");
    println!(
        "standard doc {:.2} MB, standoff doc {:.2} MB, {} regions\n",
        w.standard_bytes as f64 / 1e6,
        w.standoff_bytes as f64 / 1e6,
        w.regions
    );
    println!(
        "{:<6} {:>16} {:>16} {:>10}",
        "query", "staircase (s)", "standoff (s)", "ratio"
    );

    let mut ratios = Vec::new();
    for query in XmarkQuery::ALL {
        let std_q = query.standard(STD_URI);
        let so_q = query.standoff(SO_URI);
        let mut best_std = f64::INFINITY;
        let mut best_so = f64::INFINITY;
        for _ in 0..repeats {
            best_std = best_std.min(time_query(&mut w.engine, &std_q).as_secs_f64());
            best_so = best_so.min(time_query(&mut w.engine, &so_q).as_secs_f64());
        }
        let ratio = best_so / best_std;
        ratios.push(ratio);
        println!(
            "{:<6} {:>16.4} {:>16.4} {:>9.2}x",
            query.id(),
            best_std,
            best_so,
            ratio
        );
    }
    let geo: f64 = ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64;
    println!(
        "\ngeometric-mean end-to-end slowdown of select-narrow vs descendant: {:.2}x",
        geo.exp()
    );

    // ---- operator-level comparison (what the paper's ≤20% refers to) ----
    //
    // Same logical step for both operators: from every <open_auction>
    // (one per iteration, the Q2 loop shape), find the `increase`
    // descendants — via loop-lifted Staircase Join on the nested
    // document, and via loop-lifted StandOff MergeJoin on the StandOff
    // twin. Candidate intersection and the index are prepared outside
    // the timed region on both sides, isolating the join operators.
    let store = w.engine.store();
    let std_doc_id = store.by_uri(STD_URI).unwrap();
    let so_doc_id = store.by_uri(SO_URI).unwrap();
    let std_doc = store.doc(std_doc_id);
    let so_doc = store.doc(so_doc_id);

    let std_ctx: Vec<NodeRef> = std_doc
        .elements_named("open_auction")
        .iter()
        .map(|&p| NodeRef::tree(std_doc_id, p))
        .collect();
    let std_table = NodeTable::from_columns((0..std_ctx.len() as u32).collect(), std_ctx);
    let test = NodeTest::named("increase");

    let so_ctx: Vec<IterNode> = so_doc
        .elements_named("open_auction")
        .iter()
        .enumerate()
        .map(|(k, &p)| IterNode {
            iter: k as u32,
            node: p,
        })
        .collect();
    let mut so_ctx = so_ctx;
    so_ctx.sort_unstable();
    let index = RegionIndex::build(so_doc, &StandoffConfig::default()).unwrap();
    let candidates = so_doc.elements_named("increase").to_vec();
    let iter_domain: Vec<u32> = (0..so_ctx.len() as u32).collect();

    let mut best_stair = f64::INFINITY;
    let mut best_so = f64::INFINITY;
    let mut n_stair = 0;
    let mut n_so = 0;
    for _ in 0..repeats.max(3) {
        let t = Instant::now();
        let out = staircase::ll_step(store, &std_table, TreeAxis::Descendant, &test);
        best_stair = best_stair.min(t.elapsed().as_secs_f64());
        n_stair = out.len();

        let input = JoinInput {
            doc: so_doc,
            index: (&index).into(),
            ctx_index: None,
            context: &so_ctx,
            candidates: Some(&candidates),
            iter_domain: &iter_domain,
        };
        let t = Instant::now();
        let out = evaluate_standoff_join(
            StandoffAxis::SelectNarrow,
            StandoffStrategy::LoopLiftedMergeJoin,
            &input,
            None,
        );
        best_so = best_so.min(t.elapsed().as_secs_f64());
        n_so = out.len();
    }
    assert_eq!(n_stair, n_so, "operators must agree on the result");
    println!(
        "\noperator level — loop-lifted step over {} iterations, {} results:",
        so_ctx.len(),
        n_so
    );
    println!("  descendant Staircase Join:      {best_stair:>10.6} s");
    println!("  select-narrow StandOff MergeJoin: {best_so:>8.6} s");
    println!(
        "  slowdown: {:.2}x   (paper: \"less than 20% slower\", i.e. ≤ 1.20x)",
        best_so / best_stair
    );
}
