//! Regenerates the **§3.1 example table** ("StandOff Joins between U2 and
//! Shots") from the Figure 1 multimedia document, by actually running the
//! four axis steps through the engine.

use standoff_core::StandoffAxis;
use standoff_xquery::Engine;

const FIGURE1: &str = r#"<sample>
  <video>
    <shot id="Intro" start="0" end="8"/>
    <shot id="Interview" start="8" end="64"/>
    <shot id="Outro" start="64" end="94"/>
  </video>
  <audio>
    <music artist="U2" start="0" end="31"/>
    <music artist="Bach" start="52" end="94"/>
  </audio>
</sample>"#;

fn main() {
    let mut engine = Engine::new();
    engine.load_document("sample.xml", FIGURE1).unwrap();

    println!("StandOff Joins between U2 and Shots                     Matches");
    for axis in StandoffAxis::ALL {
        let expr = format!("{}(//music[artist=\"U2\"],//shot)", axis.as_str());
        let query = format!(
            r#"doc("sample.xml")//music[@artist = "U2"]/{}::shot/@id"#,
            axis.as_str()
        );
        let result = engine.run(&query).unwrap();
        println!("{:<55} {}", expr, result.as_strings().join(" "));
    }
}
