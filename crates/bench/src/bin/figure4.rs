//! Regenerates **Figure 4**: the execution trace of the loop-lifted
//! StandOff MergeJoin (Listing 1) on the paper's walk-through input.

use standoff_core::join::merge::ll_select_narrow;
use standoff_core::join::CtxEntry;
use standoff_core::{RegionEntry, TraceEvent, VecTrace};

fn main() {
    // Input tables (paper Figure 4; c3 carried in iteration 2 so the
    // printed trace is semantics-preserving — see the merge-join docs).
    let context_spec = [(1u32, 0i64, 15i64), (2, 12, 35), (2, 20, 30), (1, 55, 80)];
    let candidate_spec = [(5i64, 10i64), (22, 45), (40, 60), (65, 70)];

    let mut context: Vec<CtxEntry> = context_spec
        .iter()
        .enumerate()
        .map(|(k, &(iter, start, end))| CtxEntry {
            iter,
            node: k as u32,
            start,
            end,
        })
        .collect();
    context.sort_by_key(|c| (c.start, c.end));
    let candidates: Vec<RegionEntry> = candidate_spec
        .iter()
        .enumerate()
        .map(|(k, &(start, end))| RegionEntry {
            start,
            end,
            id: k as u32,
        })
        .collect();

    println!("context (iter|id|start|end)        candidates (id|start|end)");
    for k in 0..4 {
        let c = &context[k];
        let r = &candidates[k];
        println!(
            "  {}  c{}  {:>3} {:>3}                     r{}  {:>3} {:>3}",
            c.iter,
            c.node + 1,
            c.start,
            c.end,
            r.id + 1,
            r.start,
            r.end
        );
    }
    println!();

    let mut trace = VecTrace::default();
    let result = ll_select_narrow(&context, &candidates, false, Some(&mut trace));

    println!("Execution trace of loop-lifted StandOff MergeJoin:");
    let mut step = 0;
    for event in &trace.events {
        let line = match event {
            TraceEvent::AddActive { ctx, line } => {
                step += 1;
                format!(
                    "{step:>2}  add c{} to active list (line {})",
                    context[*ctx as usize].node + 1,
                    line
                )
            }
            TraceEvent::Emit { iter, cand } => {
                step += 1;
                format!(
                    "{step:>2}  add (iter{iter}, r{}) to result (lines 32-34)",
                    cand + 1
                )
            }
            TraceEvent::SkipContext { ctx } => {
                step += 1;
                format!(
                    "{step:>2}  skip c{} (lines 11-18)",
                    context[*ctx as usize].node + 1
                )
            }
            TraceEvent::RemoveActive { ctx } => {
                step += 1;
                format!(
                    "{step:>2}  remove c{} from list (line 31)",
                    context[*ctx as usize].node + 1
                )
            }
            TraceEvent::SkipCandidateNoMatch { cand } => {
                step += 1;
                format!("{step:>2}  skip r{} (lines 32-35)", cand + 1)
            }
            TraceEvent::SkipCandidateBefore { cand } => {
                step += 1;
                format!("{step:>2}  skip r{} (lines 21-24)", cand + 1)
            }
            TraceEvent::Exit => {
                step += 1;
                format!("{step:>2}  exit (line 38)")
            }
        };
        println!("{line}");
    }

    println!();
    println!("result (iter, region):");
    for e in &result {
        println!("  (iter{}, r{})", e.iter, e.cand_idx + 1);
    }
}
