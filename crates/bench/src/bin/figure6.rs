//! Regenerates **Figure 6**: performance of StandOff XMark Q1, Q2, Q6 and
//! Q7 (seconds, log scale in the paper) across document sizes for the
//! implementation variants:
//!
//! * XQuery Function with Candidate Sequence (§3.2 Alternative 2),
//! * Basic StandOff MergeJoin (§4.4),
//! * Loop-Lifted StandOff MergeJoin (§4.5),
//! * optionally the no-candidate XQuery Function (Alternative 1), which
//!   the paper reports as DNF on every size (`--include-naive`).
//!
//! Usage:
//! ```text
//! figure6 [--scales 0.001,0.005,0.01] [--cutoff-secs 60] [--repeats 2]
//!         [--include-naive] [--markdown]
//! ```
//!
//! The default scale ladder mirrors the paper's ×5/×2 size ratios
//! (11/55/110/550/1100 MB) at laptop-friendly sizes.

use std::time::Duration;

use standoff_bench::{figure6_variants, prepare_workload, run_panel, DEFAULT_SCALES};
use standoff_xmark::queries::XmarkQuery;

fn main() {
    let mut scales: Vec<f64> = DEFAULT_SCALES.to_vec();
    let mut cutoff = Duration::from_secs(60);
    let mut repeats = 2usize;
    let mut include_naive = false;
    let mut markdown = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut k = 0;
    while k < args.len() {
        match args[k].as_str() {
            "--scales" => {
                k += 1;
                scales = args[k]
                    .split(',')
                    .map(|s| s.parse().expect("bad scale"))
                    .collect();
            }
            "--cutoff-secs" => {
                k += 1;
                cutoff = Duration::from_secs_f64(args[k].parse().expect("bad cutoff"));
            }
            "--repeats" => {
                k += 1;
                repeats = args[k].parse().expect("bad repeats");
            }
            "--include-naive" => include_naive = true,
            "--markdown" => markdown = true,
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        k += 1;
    }

    eprintln!("# Figure 6 harness");
    eprintln!("# scales: {scales:?}, cutoff: {cutoff:?}, repeats: {repeats}");
    eprintln!("# generating workloads...");
    let mut workloads: Vec<_> = scales
        .iter()
        .map(|&s| {
            let w = prepare_workload(s);
            eprintln!(
                "#   scale {s}: standard {:.2} MB, standoff {:.2} MB, {} regions",
                w.standard_bytes as f64 / 1e6,
                w.standoff_bytes as f64 / 1e6,
                w.regions
            );
            w
        })
        .collect();

    let variants = figure6_variants(include_naive);
    for query in XmarkQuery::ALL {
        eprintln!("# running {query}...");
        let panel = run_panel(&mut workloads, query, &variants, cutoff, repeats);
        if markdown {
            println!("{}", panel.to_markdown());
        } else {
            println!("== XMark {} (seconds; paper Figure 6 panel) ==", query);
            print!("{:<44}", "strategy \\ document size");
            for mb in &panel.sizes_mb {
                print!("{:>12}", format!("{mb:.2}MB"));
            }
            println!();
            for (variant, cells) in &panel.rows {
                print!("{:<44}", variant.label());
                for c in cells {
                    print!("{:>12}", c.render());
                }
                println!();
            }
            println!();
        }
    }
}
