//! `bench-report` — the perf-trajectory harness.
//!
//! Runs a fixed set of representative measurements (merge-join kernel,
//! candidate intersection at sparse/dense selectivity, end-to-end
//! pushdown joins, batch execution, durability costs — WAL appends and
//! the v4 checksum tax) with quick criterion-style settings
//! and writes a `group → median ns` JSON report, so successive PRs leave
//! a comparable perf trail at the repo root (`BENCH_pr4.json`, …).
//!
//! ```text
//! bench-report [--out FILE] [--samples N] [--scale F]
//!              [--baseline FILE] [--tiny]
//! ```
//!
//! * `--out` (default `BENCH_report.json`): where the report is written.
//! * `--samples` (default 7): timed runs per group; the median is kept.
//! * `--scale` (default 0.005): XMark scale of the end-to-end corpus.
//! * `--baseline FILE`: embed a previous report's groups under
//!   `"baseline"`, making the file a self-contained before/after record.
//! * `--tiny`: CI smoke mode — minimal corpus, 3 samples, same groups.
//!
//! NB: the container this project is usually benched in has a single
//! CPU; thread-scaling groups report throughput, not speedup.

use std::fmt::Write as _;
use std::time::Instant;

use standoff_core::join::merge::ll_select_narrow;
use standoff_core::join::CtxEntry;
use standoff_core::obs::{MetricsRegistry, MetricsSnapshot};
use standoff_core::{
    evaluate_standoff_join, CandidateScratch, IterNode, JoinInput, MorselPolicy, RegionEntry,
    RegionIndex, StandoffAxis, StandoffStrategy,
};
use standoff_xmark::queries::XmarkQuery;
use standoff_xquery::{Executor, Governance, QueryError};

struct Config {
    out: String,
    samples: usize,
    scale: f64,
    baseline: Option<String>,
}

fn parse_args() -> Config {
    let mut config = Config {
        out: "BENCH_report.json".to_string(),
        samples: 7,
        scale: 0.005,
        baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--out" => config.out = value("--out"),
            "--samples" => config.samples = value("--samples").parse().expect("--samples: integer"),
            "--scale" => config.scale = value("--scale").parse().expect("--scale: number"),
            "--baseline" => config.baseline = Some(value("--baseline")),
            "--tiny" => {
                config.samples = 3;
                config.scale = 0.001;
            }
            other => panic!("unknown argument: {other} (see bench_report.rs)"),
        }
    }
    config
}

/// Median wall-clock nanoseconds of `samples` runs (one warm-up first).
fn median_ns<O>(samples: usize, mut f: impl FnMut() -> O) -> u64 {
    std::hint::black_box(f());
    let mut times: Vec<u64> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// The synthetic merge-join workload of `benches/mergejoin.rs`.
fn kernel_workload(n_ctx: usize, iters: u32, n_cand: usize) -> (Vec<CtxEntry>, Vec<RegionEntry>) {
    let mut context = Vec::with_capacity(n_ctx);
    let mut x = 0i64;
    for k in 0..n_ctx {
        let depth = (k % 4) as i64;
        let base = (x - depth * 10).max(0);
        context.push(CtxEntry {
            iter: (k as u32) % iters,
            node: k as u32,
            start: base,
            end: base + 100 - depth * 20,
        });
        if k % 4 == 3 {
            x += 37;
        }
    }
    context.sort_by_key(|c| (c.start, c.end, c.iter));
    let mut candidates = Vec::with_capacity(n_cand);
    for k in 0..n_cand {
        let start = (k as i64 * 13) % (x + 200);
        candidates.push(RegionEntry {
            start,
            end: start + (k as i64 % 40),
            id: k as u32,
        });
    }
    candidates.sort_by_key(|e| (e.start, e.end));
    (context, candidates)
}

/// A synthetic region index of `n` single-region annotations.
fn synthetic_index(n: usize) -> RegionIndex {
    let pairs: Vec<(u32, standoff_core::Area)> = (0..n)
        .map(|k| {
            let start = (k as i64) * 10;
            (
                k as u32,
                standoff_core::Area::single(start, start + 8).unwrap(),
            )
        })
        .collect();
    RegionIndex::from_areas(&pairs)
}

fn main() {
    let config = parse_args();
    let mut groups: Vec<(String, u64)> = Vec::new();
    let metrics: MetricsSnapshot;
    let mut record = |name: &str, ns: u64| {
        println!("bench-report: {name:<44} {ns:>12} ns (median)");
        groups.push((name.to_string(), ns));
    };

    // ---- merge-join kernel (benches/mergejoin.rs territory) ----
    {
        let (context, candidates) = kernel_workload(2048, 64, 8192);
        let ns = median_ns(config.samples, || {
            ll_select_narrow(&context, &candidates, false, None)
        });
        record("mergejoin/ll_select_narrow", ns);
    }

    // ---- candidate intersection (benches/region_index.rs territory) ----
    {
        let index = synthetic_index(50_000);
        // Sparse: 64 candidates out of 50k entries — must scale with the
        // candidate count, not the index size.
        let sparse: Vec<u32> = (0..64u32).map(|k| k * 700).collect();
        let ns = median_ns(config.samples, || index.candidates_for(&sparse));
        record("region_index/candidates_sparse_64_of_50k", ns);
        // Dense: every other annotation — the scan path's home turf.
        let dense: Vec<u32> = (0..25_000u32).map(|k| k * 2).collect();
        let ns = median_ns(config.samples, || index.candidates_for(&dense));
        record("region_index/candidates_dense_25k_of_50k", ns);
    }

    // ---- representation crossover (dense_scaling) ----
    // Forced-path ablation over the same 50k-entry index at several
    // candidate densities: the adaptive entry point against the forced
    // sparse scan, the forced dense-bitset scan, and the forced
    // node-view gather. The crossovers visible here are what calibrate
    // `node_view_preferred` and `dense_repr_preferred` — the adaptive
    // row should track the cheapest forced row at every density.
    {
        let index = synthetic_index(50_000);
        for count in [64usize, 1_000, 5_000, 25_000] {
            let stride = (50_000 / count) as u32;
            let cands: Vec<u32> = (0..count as u32).map(|k| k * stride).collect();
            let ns = median_ns(config.samples, || index.candidates_for(&cands));
            record(&format!("dense_scaling/adaptive_{count}"), ns);
            let ns = median_ns(config.samples, || index.candidates_for_scan(&cands));
            record(&format!("dense_scaling/sparse_{count}"), ns);
            let ns = median_ns(config.samples, || index.candidates_for_dense_scan(&cands));
            record(&format!("dense_scaling/dense_{count}"), ns);
            let ns = median_ns(config.samples, || index.candidates_for_gather(&cands));
            record(&format!("dense_scaling/gather_{count}"), ns);
        }
    }

    // ---- morsel-parallel candidate scan ----
    // The 25k-of-50k dense workload split into pre-range morsels over a
    // worker pool. Single-CPU containers show overhead, not speedup;
    // the group exists to keep the dispatch cost visible either way.
    {
        let index = synthetic_index(50_000);
        let dense: Vec<u32> = (0..25_000u32).map(|k| k * 2).collect();
        for threads in [1usize, 2, 4] {
            let mut scratch = CandidateScratch::default();
            scratch.policy = MorselPolicy { threads };
            let mut out = Vec::new();
            let ns = median_ns(config.samples, || {
                index.candidates_into_with(&dense, &mut scratch, &mut out);
                out.len()
            });
            record(
                &format!("morsel/candidates_dense_25k_threads_{threads}"),
                ns,
            );
        }
    }

    // ---- raw join with sparse pushdown (core, no query layers) ----
    {
        let doc = standoff_xml::parse_document("<d/>").unwrap();
        let index = synthetic_index(50_000);
        let sparse: Vec<u32> = (0..64u32).map(|k| k * 700).collect();
        let context: Vec<IterNode> = (0..64u32)
            .map(|k| IterNode {
                iter: k,
                node: k * 650,
            })
            .collect();
        let iter_domain: Vec<u32> = (0..64).collect();
        let ns = median_ns(config.samples, || {
            let input = JoinInput {
                doc: &doc,
                index: (&index).into(),
                ctx_index: None,
                context: &context,
                candidates: Some(&sparse),
                iter_domain: &iter_domain,
            };
            evaluate_standoff_join(
                StandoffAxis::SelectNarrow,
                StandoffStrategy::LoopLiftedMergeJoin,
                &input,
                None,
            )
        });
        record("join/select_narrow_sparse_pushdown", ns);
    }

    // ---- snapshot mount (the SOSN v3 zero-copy story) ----
    {
        use standoff_store::{write_snapshot, write_snapshot_legacy, LayerSet, Snapshot};
        let so = standoff_xmark::standoffify(
            &standoff_xmark::generate(&standoff_xmark::XmarkConfig::with_scale(config.scale)),
            7,
        );
        let xml = standoff_xml::serialize_document(&so.doc, Default::default());
        // Base plus two shadow sibling layers: multi-layer mount costs
        // (and the lazy win of not touching siblings) are visible.
        let cfg = standoff_core::StandoffConfig::default();
        let mut set = LayerSet::build("xmark-standoff.xml", so.doc, cfg.clone()).unwrap();
        for name in ["shadow1", "shadow2"] {
            let doc = standoff_xml::parse_document(&xml).unwrap();
            set.add_layer(name, doc, cfg.clone()).unwrap();
        }
        let dir = std::env::temp_dir().join(format!("bench-report-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let v3_path = dir.join("corpus_v3.snap");
        let v1_path = dir.join("corpus_v1.snap");
        let mut buf = Vec::new();
        write_snapshot(&set, &mut buf).unwrap();
        std::fs::write(&v3_path, &buf).unwrap();
        buf.clear();
        write_snapshot_legacy(&set, &mut buf).unwrap();
        std::fs::write(&v1_path, &buf).unwrap();

        // Legacy eager decode — the pre-v3 cold-start baseline.
        let ns = median_ns(config.samples, || {
            Snapshot::open(&v1_path).unwrap().to_layer_set().unwrap()
        });
        record("snapshot/mount_cold_v2", ns);
        // v3 cold mount: I/O + section walk + zero-copy views +
        // validation, all layers materialized.
        let ns = median_ns(config.samples, || {
            Snapshot::open(&v3_path).unwrap().to_layer_set().unwrap()
        });
        record("snapshot/mount_cold", ns);
        // Lazy mount + first query: only the base layer is realized —
        // the shadow siblings are never touched.
        let ns = median_ns(config.samples, || {
            let snapshot = Snapshot::open(&v3_path).unwrap();
            let base = snapshot.layer("base").unwrap();
            let set = LayerSet::from_layers(snapshot.uri(), vec![(*base).clone()]).unwrap();
            let mut engine = standoff_xquery::Engine::new();
            engine.mount_store(set).unwrap();
            engine
                .run(r#"count(doc("xmark-standoff.xml")//item)"#)
                .unwrap()
                .len()
        });
        record("snapshot/mount_lazy_first_query", ns);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // ---- writable overlay: merge-on-read overhead and compaction ----
    {
        use standoff_store::{DeltaOp, DeltaSet, LayerSet};
        // A base text plus one annotation layer, sized with the corpus
        // scale; the delta mutates 1/16 of it (inserts + retracts).
        let n = ((400_000.0 * config.scale) as usize).max(500);
        let cfg = standoff_core::StandoffConfig::default();
        let mut xml = String::from("<tokens>");
        for k in 0..n {
            let s = k as i64 * 10;
            let _ = write!(xml, r#"<w n="{k}" start="{s}" end="{}"/>"#, s + 8);
        }
        xml.push_str("</tokens>");
        let mut set = LayerSet::build(
            "bench://overlay",
            standoff_xml::parse_document("<text>overlay bench corpus</text>").unwrap(),
            cfg.clone(),
        )
        .unwrap();
        set.add_layer("tokens", standoff_xml::parse_document(&xml).unwrap(), cfg)
            .unwrap();
        let ops: Vec<DeltaOp> = (0..n / 16)
            .flat_map(|k| {
                let s = (k as i64 * 160) + 3;
                [
                    DeltaOp::Insert {
                        layer: "tokens".into(),
                        name: "w".into(),
                        start: s,
                        end: s + 4,
                        attrs: vec![("d".into(), k.to_string())],
                    },
                    DeltaOp::Retract {
                        layer: "tokens".into(),
                        name: "w".into(),
                        start: k as i64 * 160,
                        end: k as i64 * 160 + 8,
                    },
                ]
            })
            .collect();
        let mut delta = DeltaSet::new();
        delta.apply_all(ops.clone(), &set).unwrap();

        let probe = r#"count(doc("bench://overlay#tokens")//w/select-wide::w)"#;
        // Pure snapshot: the no-delta regression guard — this path must
        // not pay for the overlay machinery it isn't using.
        let mut pure = standoff_xquery::Engine::new();
        pure.mount_store(set.clone()).unwrap();
        let ns = median_ns(config.samples, || pure.run_and_discard(probe).unwrap());
        record("delta_overlay/join_pure_snapshot", ns);
        // Merge-on-read: same query through base + delta.
        let mut overlay = standoff_xquery::Engine::new();
        overlay.mount_overlay(set.clone(), &delta).unwrap();
        let ns = median_ns(config.samples, || overlay.run_and_discard(probe).unwrap());
        record("delta_overlay/join_merge_on_read", ns);
        // Writer-side costs: one apply batch (validate + remount +
        // generation swap) and one compaction fold.
        let ns = median_ns(config.samples, || {
            let mut w = standoff_xquery::WritableEngine::mount(
                set.clone(),
                standoff_xquery::EngineOptions::default(),
            )
            .unwrap();
            w.apply(ops.clone()).unwrap()
        });
        record("delta_overlay/apply_batch", ns);
        let ns = median_ns(config.samples, || {
            standoff_store::compact(&set, &delta).unwrap()
        });
        record("delta_overlay/compact", ns);
    }

    // ---- durability: WAL appends and the v4 checksum tax ----
    // The fsync per committed batch is the price of SIGKILL-safe deltas;
    // the nosync row isolates it from the encode-and-write cost. The
    // mount rows bound the checksum tax: a lazy open only CRCs the small
    // header sections, full materialization pays per column, and
    // `verify` is the eager fsck sweep over every section.
    {
        use standoff_store::{
            ops_to_text, write_snapshot, write_snapshot_unchecksummed, DeltaOp, DeltaWal, LayerSet,
            Snapshot,
        };
        let dir = std::env::temp_dir().join(format!("bench-durability-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // A representative 32-op batch, journaled whole per append.
        let ops: Vec<DeltaOp> = (0..16)
            .flat_map(|k| {
                let s = k as i64 * 40;
                [
                    DeltaOp::Insert {
                        layer: "tokens".into(),
                        name: "w".into(),
                        start: s,
                        end: s + 8,
                        attrs: vec![("d".into(), k.to_string())],
                    },
                    DeltaOp::Retract {
                        layer: "tokens".into(),
                        name: "w".into(),
                        start: s + 10,
                        end: s + 18,
                    },
                ]
            })
            .collect();
        let batch = ops_to_text(&ops);
        for (sync, name) in [
            (true, "durability/wal_append_fsync"),
            (false, "durability/wal_append_nosync"),
        ] {
            let path = dir.join(if sync { "sync.wal" } else { "nosync.wal" });
            let (mut wal, _) = DeltaWal::open(&path).unwrap();
            wal.set_sync(sync);
            let ns = median_ns(config.samples, || wal.append(&batch).unwrap());
            record(name, ns);
        }

        let so = standoff_xmark::standoffify(
            &standoff_xmark::generate(&standoff_xmark::XmarkConfig::with_scale(config.scale)),
            7,
        );
        let cfg = standoff_core::StandoffConfig::default();
        let set = LayerSet::build("xmark-standoff.xml", so.doc, cfg).unwrap();
        let checked = dir.join("checked.snap");
        let unchecked = dir.join("unchecked.snap");
        let mut buf = Vec::new();
        write_snapshot(&set, &mut buf).unwrap();
        std::fs::write(&checked, &buf).unwrap();
        buf.clear();
        write_snapshot_unchecksummed(&set, &mut buf).unwrap();
        std::fs::write(&unchecked, &buf).unwrap();

        let ns = median_ns(config.samples, || {
            Snapshot::open(&checked).unwrap().to_layer_set().unwrap()
        });
        record("durability/mount_checksummed", ns);
        let ns = median_ns(config.samples, || {
            Snapshot::open(&unchecked).unwrap().to_layer_set().unwrap()
        });
        record("durability/mount_unchecksummed", ns);
        let ns = median_ns(config.samples, || Snapshot::open(&checked).unwrap());
        record("durability/open_lazy_checksummed", ns);
        let ns = median_ns(config.samples, || {
            Snapshot::open_verified(&checked)
                .unwrap()
                .1
                .sections_checked
        });
        record("durability/verify", ns);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // ---- end-to-end engine measurements over an XMark corpus ----
    {
        let mut w = standoff_bench::prepare_workload(config.scale);
        let q2 = XmarkQuery::Q2.standoff(standoff_bench::SO_URI);
        let ns = median_ns(config.samples, || w.engine.run_and_discard(&q2).unwrap());
        record("eval/xmark_q2_standoff_ll", ns);

        // A sparse-pushdown step: few contexts, rare candidate name.
        let sparse = format!(
            r#"count(doc("{}")//open_auction/select-narrow::reserve)"#,
            standoff_bench::SO_URI
        );
        let ns = median_ns(config.samples, || {
            w.engine.run_and_discard(&sparse).unwrap()
        });
        record("eval/select_narrow_sparse_pushdown", ns);

        // A no-pushdown step: the join consumes the *full* region index
        // as its candidate sequence — the shape that used to copy the
        // whole entries table per operator.
        let wide = format!(
            r#"count(doc("{}")//open_auction/select-wide::node())"#,
            standoff_bench::SO_URI
        );
        let ns = median_ns(config.samples, || w.engine.run_and_discard(&wide).unwrap());
        record("eval/select_wide_no_pushdown", ns);

        // Q2 under the basic (per-iteration) strategy: re-derives its
        // candidate sequence every iteration, so per-derivation overhead
        // multiplies.
        w.engine.set_strategy(StandoffStrategy::BasicMergeJoin);
        let ns = median_ns(config.samples, || w.engine.run_and_discard(&q2).unwrap());
        record("eval/xmark_q2_standoff_basic", ns);
        w.engine.set_strategy(StandoffStrategy::LoopLiftedMergeJoin);

        // Batch executor, warm plan cache (single CPU: throughput only).
        let batch: Vec<String> = (0..16).map(|_| q2.clone()).collect();
        let shared = w.engine.into_shared();
        let exec = Executor::new(shared.clone(), 2);
        exec.run_batch(&batch[..1]); // warm the plan cache
        let ns = median_ns(config.samples, || exec.run_batch(&batch));
        record("batch/q2_x16_warm_cache", ns);

        // ---- serve: governed executor under concurrent clients ----
        // The service path minus the sockets: 4 client threads driving
        // `run_governed` against a governed executor, swept across
        // admission queue caps. A narrow cap trades completed work for
        // sheds (shed requests are counted, not timed); the sustained
        // figure is wall-clock per *successful* query, and p50/p99 are
        // the successful requests' queue-wait + evaluation latency.
        {
            const CLIENTS: usize = 4;
            const REQUESTS_PER_CLIENT: usize = 64;
            for cap in [1usize, 16, 64] {
                let exec = std::sync::Arc::new(Executor::governed(
                    shared.clone(),
                    2,
                    Governance {
                        queue_cap: Some(cap),
                        ..Governance::default()
                    },
                ));
                exec.run_governed(&sparse).unwrap(); // warm the plan cache
                let started = Instant::now();
                let mut latencies: Vec<u64> = Vec::new();
                let mut sheds = 0u64;
                std::thread::scope(|scope| {
                    let workers: Vec<_> = (0..CLIENTS)
                        .map(|_| {
                            let exec = std::sync::Arc::clone(&exec);
                            let sparse = &sparse;
                            scope.spawn(move || {
                                let mut latencies = Vec::with_capacity(REQUESTS_PER_CLIENT);
                                let mut sheds = 0u64;
                                for _ in 0..REQUESTS_PER_CLIENT {
                                    let t = Instant::now();
                                    match exec.run_governed(sparse) {
                                        Ok(_) => latencies.push(t.elapsed().as_nanos() as u64),
                                        Err(QueryError::Overloaded(_)) => sheds += 1,
                                        Err(e) => panic!("serve bench query failed: {e}"),
                                    }
                                }
                                (latencies, sheds)
                            })
                        })
                        .collect();
                    for worker in workers {
                        let (l, s) = worker.join().unwrap();
                        latencies.extend(l);
                        sheds += s;
                    }
                });
                let total_ns = started.elapsed().as_nanos() as u64;
                latencies.sort_unstable();
                let ok = latencies.len().max(1) as u64;
                println!(
                    "bench-report: serve qcap={cap}: {} ok / {sheds} shed",
                    latencies.len()
                );
                record(
                    &format!("serve/qcap_{cap}_sustained_ns_per_query"),
                    total_ns / ok,
                );
                record(
                    &format!("serve/qcap_{cap}_p50"),
                    latencies.get(latencies.len() / 2).copied().unwrap_or(0),
                );
                record(
                    &format!("serve/qcap_{cap}_p99"),
                    latencies
                        .get(latencies.len() * 99 / 100)
                        .copied()
                        .unwrap_or(0),
                );
            }
        }

        // Observability snapshot for the run as a whole: the engine-side
        // registry (queries, joins, plan cache, executor queues) merged
        // with the process-global one (store mount/materialize timings).
        let mut snap = exec.metrics_snapshot();
        snap.merge(&MetricsRegistry::global().snapshot());
        metrics = snap;
    }

    // ---- render ----
    let peak_rss_kb = peak_rss_kb();
    if let Some(kb) = peak_rss_kb {
        println!("bench-report: peak RSS {kb} kB (VmHWM, whole process)");
    }
    let baseline = config.baseline.as_ref().map(|path| {
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"))
    });
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"harness\": \"bench-report\",");
    let _ = writeln!(json, "  \"samples\": {},", config.samples);
    let _ = writeln!(json, "  \"scale\": {},", config.scale);
    let _ = writeln!(json, "  \"unit\": \"ns (median)\",");
    if let Some(kb) = peak_rss_kb {
        // Whole-process high-water mark — a coarse but honest peak-memory
        // note (covers corpus generation and every group above).
        let _ = writeln!(json, "  \"peak_rss_kb\": {kb},");
    }
    let _ = writeln!(json, "  \"groups\": {{");
    for (k, (name, ns)) in groups.iter().enumerate() {
        let comma = if k + 1 == groups.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{name}\": {ns}{comma}");
    }
    let _ = write!(json, "  }}");
    {
        // Re-indent the snapshot's own pretty-printing to nest under the
        // report object.
        let nested = metrics.to_json().replace('\n', "\n  ");
        let _ = write!(json, ",\n  \"metrics\": {nested}");
    }
    if let Some(base) = baseline {
        // Embed the previous report's groups verbatim as the baseline.
        let groups_obj = extract_groups_object(&base)
            .unwrap_or_else(|| panic!("baseline file has no \"groups\" object"));
        let _ = write!(json, ",\n  \"baseline\": {groups_obj}");
    }
    json.push_str("\n}\n");
    std::fs::write(&config.out, &json)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", config.out));
    println!("bench-report: wrote {}", config.out);
}

/// The process's peak resident set size in kB (`VmHWM` from
/// `/proc/self/status`); `None` where procfs is unavailable.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Pull the `"groups": { ... }` object out of a previous report without
/// a JSON dependency — the harness writes it, so the shape is known.
fn extract_groups_object(json: &str) -> Option<String> {
    let key = "\"groups\":";
    let at = json.find(key)?;
    let open = json[at..].find('{')? + at;
    let mut depth = 0usize;
    for (k, c) in json[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(json[open..=open + k].to_string());
                }
            }
            _ => {}
        }
    }
    None
}
