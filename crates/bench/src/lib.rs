//! Shared harness utilities for regenerating the paper's tables and
//! figures.
//!
//! The paper's Figure 6 sweeps XMark document size × evaluation strategy
//! for queries Q1, Q2, Q6 and Q7 and reports seconds (log scale) with
//! DNF (> 1 hour) marks. This crate generates the workloads, runs the
//! sweep with a configurable DNF cutoff, and prints paper-style tables
//! (also emitted as markdown for EXPERIMENTS.md).

use std::time::{Duration, Instant};

use standoff_core::{StandoffConfig, StandoffStrategy};
use standoff_xmark::queries::XmarkQuery;
use standoff_xmark::{generate, serialized_size, standoffify, XmarkConfig};
use standoff_xquery::Engine;

/// A prepared benchmark workload: one StandOff XMark document loaded into
/// an engine, with its standard twin for staircase comparisons.
pub struct Workload {
    pub engine: Engine,
    pub scale: f64,
    /// Serialized size of the *standard* document in bytes (the paper's
    /// x-axis unit).
    pub standard_bytes: usize,
    /// Serialized size of the StandOff twin.
    pub standoff_bytes: usize,
    /// Number of region-index entries (= element count).
    pub regions: usize,
}

/// URI of the standard document inside a [`Workload`] engine.
pub const STD_URI: &str = "xmark.xml";
/// URI of the StandOff document inside a [`Workload`] engine.
pub const SO_URI: &str = "xmark-standoff.xml";

/// Generate and load a workload at the given XMark scale. The region
/// index is pre-built (the paper's indices exist before queries run).
pub fn prepare_workload(scale: f64) -> Workload {
    let src = generate(&XmarkConfig::with_scale(scale));
    let so = standoffify(&src, 7);
    let standard_bytes = serialized_size(&src);
    let standoff_bytes = serialized_size(&so.doc);
    let regions = so.doc.all_elements().len();

    let mut engine = Engine::new();
    engine.add_document(src, Some(STD_URI));
    let so_id = engine.add_document(so.doc, Some(SO_URI));
    engine
        .prebuild_region_index(so_id, &StandoffConfig::default())
        .expect("standoff workload builds a valid index");
    Workload {
        engine,
        scale,
        standard_bytes,
        standoff_bytes,
        regions,
    }
}

/// Outcome of one measured cell.
#[derive(Clone, Copy, Debug)]
pub enum Measurement {
    /// Wall-clock seconds of the best run.
    Seconds(f64),
    /// Did not finish within the cutoff.
    Dnf,
    /// Skipped because a smaller size already DNF'd.
    SkippedAfterDnf,
}

impl Measurement {
    pub fn render(&self) -> String {
        match self {
            Measurement::Seconds(s) if *s < 0.01 => format!("{:.4}", s),
            Measurement::Seconds(s) => format!("{s:.3}"),
            Measurement::Dnf | Measurement::SkippedAfterDnf => "DNF".to_string(),
        }
    }

    pub fn is_dnf(&self) -> bool {
        !matches!(self, Measurement::Seconds(_))
    }

    pub fn seconds(&self) -> Option<f64> {
        match self {
            Measurement::Seconds(s) => Some(*s),
            _ => None,
        }
    }
}

/// Run a query once and time it.
pub fn time_query(engine: &mut Engine, query: &str) -> Duration {
    let start = Instant::now();
    let n = engine
        .run_and_discard(query)
        .unwrap_or_else(|e| panic!("benchmark query failed: {e}\n{query}"));
    let elapsed = start.elapsed();
    std::hint::black_box(n);
    elapsed
}

/// Time a query under a strategy with a DNF cutoff: the best of up to
/// `repeats` runs, stopping early once the cutoff is exceeded.
pub fn measure(
    engine: &mut Engine,
    strategy: StandoffStrategy,
    query: &str,
    cutoff: Duration,
    repeats: usize,
) -> Measurement {
    engine.set_strategy(strategy);
    let mut best: Option<Duration> = None;
    for _ in 0..repeats.max(1) {
        let t = time_query(engine, query);
        best = Some(best.map_or(t, |b| b.min(t)));
        if t > cutoff {
            break;
        }
    }
    let best = best.unwrap();
    if best > cutoff {
        Measurement::Dnf
    } else {
        Measurement::Seconds(best.as_secs_f64())
    }
}

/// One column of Figure 6: how the StandOff steps of a query are
/// executed. The two "XQuery Function" variants run the paper's *actual
/// UDF query texts* (Figures 2 and 3) through the engine — their cost is
/// the generic nested-FLWOR evaluation, exactly as in the paper. The two
/// merge-join variants run the axis-step query under the corresponding
/// engine strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Figure6Variant {
    /// Figure 2 UDF — `root($q)//*` inner loop (DNF column).
    UdfNoCandidates,
    /// Figure 3 UDF — candidate sequence parameter.
    UdfWithCandidates,
    /// §4.4 Basic StandOff MergeJoin (per-iteration index scans).
    BasicMergeJoin,
    /// §4.5 Loop-lifted StandOff MergeJoin (Listing 1).
    LoopLifted,
}

impl Figure6Variant {
    /// Paper-legend label.
    pub fn label(self) -> &'static str {
        match self {
            Figure6Variant::UdfNoCandidates => "XQuery Function (no candidates)",
            Figure6Variant::UdfWithCandidates => "XQuery Function with Candidate Sequence",
            Figure6Variant::BasicMergeJoin => "Basic StandOff MergeJoin",
            Figure6Variant::LoopLifted => "Loop-Lifted StandOff MergeJoin",
        }
    }

    /// The query text this variant executes.
    pub fn query_text(self, query: XmarkQuery, uri: &str) -> String {
        match self {
            Figure6Variant::UdfNoCandidates => query.standoff_udf_no_candidates(uri),
            Figure6Variant::UdfWithCandidates => query.standoff_udf_candidates(uri),
            Figure6Variant::BasicMergeJoin | Figure6Variant::LoopLifted => query.standoff(uri),
        }
    }

    /// The engine strategy for the axis steps (irrelevant for the UDF
    /// variants, which never reach a StandOff step).
    pub fn strategy(self) -> StandoffStrategy {
        match self {
            Figure6Variant::BasicMergeJoin => StandoffStrategy::BasicMergeJoin,
            _ => StandoffStrategy::LoopLiftedMergeJoin,
        }
    }
}

/// The variant columns of Figure 6, in the paper's order.
pub fn figure6_variants(include_naive: bool) -> Vec<Figure6Variant> {
    let mut v = Vec::new();
    if include_naive {
        v.push(Figure6Variant::UdfNoCandidates);
    }
    v.extend([
        Figure6Variant::UdfWithCandidates,
        Figure6Variant::BasicMergeJoin,
        Figure6Variant::LoopLifted,
    ]);
    v
}

/// The default size ladder. The paper uses 11/55/110/550/1100 MB (×5, ×2,
/// ×5, ×2); these scales keep the same ratios at laptop-friendly sizes.
pub const DEFAULT_SCALES: [f64; 5] = [0.001, 0.005, 0.01, 0.05, 0.1];

/// One Figure 6 panel: a query measured over all sizes × variants.
pub struct Panel {
    pub query: XmarkQuery,
    pub sizes_mb: Vec<f64>,
    pub rows: Vec<(Figure6Variant, Vec<Measurement>)>,
}

/// Run the Figure 6 sweep for one query over prepared workloads.
/// A variant that DNFs at some size skips all larger sizes (the paper
/// ran a 1-hour cutoff per cell; we do not burn time re-proving blowups).
pub fn run_panel(
    workloads: &mut [Workload],
    query: XmarkQuery,
    variants: &[Figure6Variant],
    cutoff: Duration,
    repeats: usize,
) -> Panel {
    let sizes_mb = workloads
        .iter()
        .map(|w| w.standard_bytes as f64 / 1e6)
        .collect();
    let mut rows = Vec::new();
    for &variant in variants {
        let mut cells = Vec::new();
        let mut dnfed = false;
        for w in workloads.iter_mut() {
            if dnfed {
                cells.push(Measurement::SkippedAfterDnf);
                continue;
            }
            let m = measure(
                &mut w.engine,
                variant.strategy(),
                &variant.query_text(query, SO_URI),
                cutoff,
                repeats,
            );
            dnfed = m.is_dnf();
            cells.push(m);
        }
        rows.push((variant, cells));
    }
    Panel {
        query,
        sizes_mb,
        rows,
    }
}

impl Panel {
    /// Render as a markdown table (used for EXPERIMENTS.md and stdout).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### XMark {} (seconds)\n\n", self.query));
        out.push_str("| strategy |");
        for mb in &self.sizes_mb {
            out.push_str(&format!(" {mb:.2} MB |"));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.sizes_mb {
            out.push_str("---|");
        }
        out.push('\n');
        for (variant, cells) in &self.rows {
            out.push_str(&format!("| {} |", variant.label()));
            for c in cells {
                out.push_str(&format!(" {} |", c.render()));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_preparation() {
        let w = prepare_workload(0.001);
        assert!(w.standard_bytes > 10_000);
        assert!(w.regions > 100);
    }

    #[test]
    fn measurement_rendering() {
        assert_eq!(Measurement::Seconds(1.5).render(), "1.500");
        assert_eq!(Measurement::Seconds(0.0012).render(), "0.0012");
        assert_eq!(Measurement::Dnf.render(), "DNF");
        assert!(Measurement::Dnf.is_dnf());
        assert_eq!(Measurement::Seconds(2.0).seconds(), Some(2.0));
    }

    #[test]
    fn tiny_panel_runs() {
        let mut workloads = vec![prepare_workload(0.001)];
        let panel = run_panel(
            &mut workloads,
            XmarkQuery::Q6,
            &[Figure6Variant::LoopLifted],
            Duration::from_secs(30),
            1,
        );
        assert_eq!(panel.rows.len(), 1);
        assert!(panel.rows[0].1[0].seconds().is_some());
        let md = panel.to_markdown();
        assert!(md.contains("XMark Q6"));
        assert!(md.contains("Loop-Lifted"));
    }

    #[test]
    fn variant_list_shapes() {
        assert_eq!(figure6_variants(false).len(), 3);
        assert_eq!(figure6_variants(true).len(), 4);
        assert!(Figure6Variant::UdfWithCandidates
            .query_text(XmarkQuery::Q6, "u")
            .contains("declare function sn"));
        assert!(Figure6Variant::LoopLifted
            .query_text(XmarkQuery::Q6, "u")
            .contains("select-narrow"));
    }
}
