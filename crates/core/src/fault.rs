//! Fault injection for chaos testing.
//!
//! A registry of named *fault points* compiled into the workspace only
//! under `cfg(any(test, feature = "fault-inject"))`; release builds
//! carry no trace of it (the stand-in [`point`] below is an empty
//! inline function). Hot paths call [`point`] at the places chaos
//! tests want to break — a morsel worker about to run, a scatter
//! worker claiming a task, a server connection handling a request —
//! and tests arm those points with [`inject`]:
//!
//! * [`FaultAction::Panic`] — panic with a recognizable payload,
//!   proving the panic containment story (a panicked worker must
//!   surface as a clean internal error, never a wedged pool or a
//!   silently incomplete result);
//! * [`FaultAction::Delay`] — sleep, stretching a normally-instant
//!   window (a morsel in flight, a request mid-parse) so tests can
//!   race cancellation, unmount or shutdown into it deterministically.
//!
//! Armed points apply process-wide; tests touching the same point must
//! serialize (the suites here arm distinctly named points). Points can
//! be armed for a bounded number of hits ([`inject_times`]) so a test
//! can break exactly one worker out of a pool.
//!
//! The registry is consulted through one relaxed atomic (`ARMED`)
//! when nothing is injected, so leaving the feature on for the whole
//! test profile does not slow unrelated tests down.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What an armed fault point does when hit.
#[derive(Clone, Copy, Debug)]
pub enum FaultAction {
    /// Panic with payload `"injected fault: <name>"`.
    Panic,
    /// Sleep for the given duration, then continue normally.
    Delay(Duration),
    /// Abort the whole process (`std::process::abort`) — no unwinding,
    /// no destructors, no atexit handlers. As close to `kill -9` as a
    /// process can do to itself; the crash-recovery harness uses this
    /// to kill writers at exact byte-offset seams.
    Abort,
}

struct Armed {
    action: FaultAction,
    /// Remaining hits; `None` = unlimited.
    remaining: Option<usize>,
}

static ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<HashMap<String, Armed>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Armed>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Arm `name` with `action` for an unlimited number of hits.
pub fn inject(name: &str, action: FaultAction) {
    arm(name, action, None);
}

/// Arm `name` with `action` for at most `times` hits, after which the
/// point disarms itself.
pub fn inject_times(name: &str, action: FaultAction, times: usize) {
    arm(name, action, Some(times));
}

fn arm(name: &str, action: FaultAction, remaining: Option<usize>) {
    let mut map = registry().lock().unwrap_or_else(|e| e.into_inner());
    map.insert(name.to_string(), Armed { action, remaining });
    ARMED.store(true, Ordering::Release);
}

/// Disarm `name`.
pub fn clear(name: &str) {
    let mut map = registry().lock().unwrap_or_else(|e| e.into_inner());
    map.remove(name);
    ARMED.store(!map.is_empty(), Ordering::Release);
}

/// Disarm every point.
pub fn clear_all() {
    let mut map = registry().lock().unwrap_or_else(|e| e.into_inner());
    map.clear();
    ARMED.store(false, Ordering::Release);
}

/// A fault point. No-op unless a test armed `name`; the disarmed probe
/// is one relaxed atomic load.
pub fn point(name: &str) {
    if !ARMED.load(Ordering::Acquire) {
        return;
    }
    let action = {
        let mut map = registry().lock().unwrap_or_else(|e| e.into_inner());
        match map.get_mut(name) {
            None => return,
            Some(armed) => {
                let action = armed.action;
                if let Some(n) = &mut armed.remaining {
                    if *n == 0 {
                        return;
                    }
                    *n -= 1;
                    if *n == 0 {
                        map.remove(name);
                        ARMED.store(!map.is_empty(), Ordering::Release);
                    }
                }
                action
            }
        }
    };
    match action {
        FaultAction::Panic => panic!("injected fault: {name}"),
        FaultAction::Delay(d) => std::thread::sleep(d),
        FaultAction::Abort => std::process::abort(),
    }
}

/// Arm fault points from the `STANDOFF_FAULT` environment variable, so
/// external harnesses (the CI crash-recovery smoke) can kill a
/// `--features fault-inject` binary at a named seam without test code.
///
/// Syntax: comma-separated `point=action` entries, where action is
/// `abort`, `panic`, or `delay:<millis>`. An optional `:<times>` suffix
/// on the action bounds the hits (`point=delay:50:1`). Malformed
/// entries are ignored (a harness typo must not change the behavior of
/// the binary under test beyond not arming the point).
pub fn arm_from_env() {
    let Ok(spec) = std::env::var("STANDOFF_FAULT") else {
        return;
    };
    for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
        let Some((name, action_spec)) = entry.split_once('=') else {
            continue;
        };
        let mut parts = action_spec.split(':');
        let action = match parts.next() {
            Some("abort") => FaultAction::Abort,
            Some("panic") => FaultAction::Panic,
            Some("delay") => {
                let Some(ms) = parts.next().and_then(|v| v.parse::<u64>().ok()) else {
                    continue;
                };
                FaultAction::Delay(Duration::from_millis(ms))
            }
            _ => continue,
        };
        // A trailing numeric field bounds the hits; for `delay` it is
        // the field after the millis.
        match parts.next().and_then(|v| v.parse::<usize>().ok()) {
            Some(times) => inject_times(name, action, times),
            None => inject(name, action),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_points_are_noops() {
        point("fault.test.nothing_armed");
    }

    #[test]
    fn bounded_injection_disarms_itself() {
        inject_times("fault.test.bounded", FaultAction::Delay(Duration::ZERO), 2);
        point("fault.test.bounded");
        point("fault.test.bounded");
        // Third hit: disarmed, must not act (a panic would fail the test
        // if the action had been Panic; assert via the registry instead).
        let armed = registry()
            .lock()
            .unwrap()
            .contains_key("fault.test.bounded");
        assert!(!armed);
    }

    #[test]
    fn panic_action_panics_with_payload() {
        inject_times("fault.test.panics", FaultAction::Panic, 1);
        let err = std::panic::catch_unwind(|| point("fault.test.panics")).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("injected fault: fault.test.panics"));
        clear("fault.test.panics");
    }
}
