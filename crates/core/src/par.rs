//! Order-preserving worker-pool fan-out.
//!
//! One small primitive, [`scatter`], shared by the two places the engine
//! goes parallel: inter-query batch execution (the executor's worker
//! pool) and intra-query morsel dispatch (dense candidate scans split
//! into fixed-size pre-range morsels). Workers pull task indexes from a
//! shared atomic counter — classic work stealing without queues — and
//! results are re-assembled *by task index*, so the output order is
//! deterministic and independent of the thread count.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `tasks` work items over up to `threads` workers, preserving task
/// order in the result vector.
///
/// * `init` runs once per worker and produces its private state (a
///   session, a scratch buffer, …). On the inline path (one thread or
///   one task) it runs exactly once on the calling thread.
/// * `work` maps `(worker state, task index)` to the task's result.
///
/// Result slot `k` holds `Some(result of task k)`; a slot is `None` only
/// if the worker that claimed it panicked — callers either `expect` (a
/// worker panic is a bug) or recompute the slot inline (morsel dispatch
/// does the latter so results stay deterministic no matter what).
pub fn scatter<S, T, I, W>(tasks: usize, threads: usize, init: I, work: W) -> Vec<Option<T>>
where
    T: Send,
    I: Fn() -> S + Sync,
    W: Fn(&mut S, usize) -> T + Sync,
{
    if threads <= 1 || tasks <= 1 {
        let mut state = init();
        return (0..tasks).map(|k| Some(work(&mut state, k))).collect();
    }
    let workers = threads.min(tasks);
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<T>> = Vec::with_capacity(tasks);
    results.resize_with(tasks, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let init = &init;
                let work = &work;
                scope.spawn(move || {
                    let mut state = init();
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= tasks {
                            break;
                        }
                        local.push((k, work(&mut state, k)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            // A panicked worker loses only its own slots; the caller
            // decides whether that is fatal or recomputed inline.
            if let Ok(local) = h.join() {
                for (k, v) in local {
                    results[k] = Some(v);
                }
            }
        }
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_task_order() {
        for threads in [1, 2, 4, 8] {
            let got = scatter(37, threads, || 0u32, |_, k| k * k);
            let want: Vec<Option<usize>> = (0..37).map(|k| Some(k * k)).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn init_runs_once_per_worker_inline() {
        use std::sync::atomic::AtomicUsize;
        let inits = AtomicUsize::new(0);
        let got = scatter(
            5,
            1,
            || inits.fetch_add(1, Ordering::Relaxed),
            |state, k| (*state, k),
        );
        assert_eq!(inits.load(Ordering::Relaxed), 1);
        assert!(got.iter().all(|r| r.as_ref().unwrap().0 == 0));
    }

    #[test]
    fn empty_and_single_task() {
        assert!(scatter(0, 4, || (), |_, k| k).is_empty());
        assert_eq!(scatter(1, 4, || (), |_, k| k), vec![Some(0)]);
    }
}
