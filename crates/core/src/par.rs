//! Order-preserving worker-pool fan-out.
//!
//! One small primitive, [`scatter`], shared by the two places the engine
//! goes parallel: inter-query batch execution (the executor's worker
//! pool) and intra-query morsel dispatch (dense candidate scans split
//! into fixed-size pre-range morsels). Workers pull task indexes from a
//! shared atomic counter — classic work stealing without queues — and
//! results are re-assembled *by task index*, so the output order is
//! deterministic and independent of the thread count.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `tasks` work items over up to `threads` workers, preserving task
/// order in the result vector.
///
/// * `init` runs once per worker and produces its private state (a
///   session, a scratch buffer, …). On the inline path (one thread or
///   one task) it runs exactly once on the calling thread.
/// * `work` maps `(worker state, task index)` to the task's result.
///
/// # Panics
///
/// A panic inside any worker is re-raised on the calling thread once
/// every worker has stopped — the pool never returns a silently
/// incomplete result. Callers that must not unwind (the batch executor)
/// catch it with their existing per-query panic guard and surface it as
/// an internal error; everyone else propagates it like the sequential
/// path always did.
pub fn scatter<S, T, I, W>(tasks: usize, threads: usize, init: I, work: W) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    W: Fn(&mut S, usize) -> T + Sync,
{
    if threads <= 1 || tasks <= 1 {
        let mut state = init();
        return (0..tasks)
            .map(|k| {
                crate::fault::point("par.worker");
                work(&mut state, k)
            })
            .collect();
    }
    let workers = threads.min(tasks);
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<T>> = Vec::with_capacity(tasks);
    results.resize_with(tasks, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let init = &init;
                let work = &work;
                scope.spawn(move || {
                    let mut state = init();
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= tasks {
                            break;
                        }
                        crate::fault::point("par.worker");
                        local.push((k, work(&mut state, k)));
                    }
                    local
                })
            })
            .collect();
        // Join every worker before re-raising any panic: the scope must
        // not tear down while siblings still run, and the first panic
        // payload (by worker index) is the one reported.
        let mut first_panic = None;
        for h in handles {
            match h.join() {
                Ok(local) => {
                    for (k, v) in local {
                        results[k] = Some(v);
                    }
                }
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    });
    results
        .into_iter()
        .map(|slot| slot.expect("non-panicked scatter fills every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_task_order() {
        for threads in [1, 2, 4, 8] {
            let got = scatter(37, threads, || 0u32, |_, k| k * k);
            let want: Vec<usize> = (0..37).map(|k| k * k).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn init_runs_once_per_worker_inline() {
        use std::sync::atomic::AtomicUsize;
        let inits = AtomicUsize::new(0);
        let got = scatter(
            5,
            1,
            || inits.fetch_add(1, Ordering::Relaxed),
            |state, k| (*state, k),
        );
        assert_eq!(inits.load(Ordering::Relaxed), 1);
        assert!(got.iter().all(|r| r.0 == 0));
    }

    #[test]
    fn empty_and_single_task() {
        assert!(scatter(0, 4, || (), |_, k| k).is_empty());
        assert_eq!(scatter(1, 4, || (), |_, k| k), vec![0]);
    }

    /// Regression: a panicked worker used to lose only its own slots,
    /// letting callers observe a silently incomplete result. The panic
    /// must now surface on the calling thread.
    #[test]
    fn worker_panic_propagates_to_caller() {
        for threads in [1, 4] {
            let outcome = std::panic::catch_unwind(|| {
                scatter(
                    64,
                    threads,
                    || (),
                    |_, k| {
                        if k == 17 {
                            panic!("worker down");
                        }
                        k
                    },
                )
            });
            let payload = outcome.expect_err("panic must propagate");
            let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
            assert_eq!(msg, "worker down", "threads={threads}");
        }
    }

    /// Same regression via the fault-injection registry: one injected
    /// worker panic anywhere in the pool fails the whole scatter.
    #[test]
    fn injected_worker_fault_propagates() {
        crate::fault::inject_times("par.worker", crate::fault::FaultAction::Panic, 1);
        let outcome = std::panic::catch_unwind(|| scatter(32, 4, || (), |_, k| k));
        crate::fault::clear("par.worker");
        assert!(outcome.is_err(), "injected fault must fail the scatter");
    }
}
