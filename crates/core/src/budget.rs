//! Cooperative resource governance for query evaluation.
//!
//! A [`Budget`] is a small, cloneable handle (an `Arc` around atomics)
//! that a host installs before evaluation and that every long-running
//! loop in the engine polls cooperatively: the candidate scan kernels,
//! the merge-join emission loops, the naive baselines' nested loops,
//! the evaluator's operator dispatch, and the morsel workers of
//! [`crate::par::scatter`]. It enforces three caps —
//!
//! * a **deadline** (wall-clock [`Instant`]),
//! * a **result-cardinality cap** (cumulative operator output rows),
//! * a **scratch-memory cap** (high-water mark of the join scratch),
//!
//! — plus an external **cancel** switch (the `CancelToken` half: a
//! server drains in-flight queries by cancelling their budgets).
//!
//! # Cost discipline
//!
//! The whole design exists to keep governance off the ungoverned hot
//! path and *nearly* off the governed one:
//!
//! * engines hold an `Option<Budget>`; with `None` the evaluator takes
//!   the same single-branch early-out the profiler uses, and the
//!   kernels hoist one `Option` test out of their loops;
//! * inside kernels, [`Budget::poll`] is the only call allowed: one
//!   relaxed atomic fetch-add per 64-entry chunk, consulting the clock
//!   only every [`POLL_STRIDE`] polls, so the branch-free dense scan
//!   stays branch-free (the chunk loop gains one predictable branch);
//! * the clock is read eagerly only at coarse chokepoints
//!   ([`Budget::check`]): once per evaluated operator, per join unit,
//!   per morsel.
//!
//! # Trip semantics
//!
//! The first cap to fail *trips* the budget: a single atomic flag
//! records the reason, every subsequent poll/check observes it, and
//! the kernels bail out early. Partial kernel output is discarded by
//! the evaluator, which surfaces the recorded [`BudgetExceeded`]
//! reason as a clean error — never a panic, never partial output. The
//! recorded reason (not the observation site) determines the error,
//! so a query cancelled at the same budget reports the identical error
//! regardless of join strategy or thread count.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budget tripped. Ordered by trip time, not severity: the first
/// cap observed to fail wins and is the one reported.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetExceeded {
    /// The wall-clock deadline passed.
    Timeout,
    /// Cumulative operator output exceeded the result-cardinality cap.
    ResultLimit,
    /// The join scratch grew past the scratch-memory cap.
    ScratchLimit,
    /// [`Budget::cancel`] was called (client disconnect, server drain).
    Cancelled,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetExceeded::Timeout => write!(f, "query deadline exceeded"),
            BudgetExceeded::ResultLimit => write!(f, "result cardinality cap exceeded"),
            BudgetExceeded::ScratchLimit => write!(f, "scratch memory cap exceeded"),
            BudgetExceeded::Cancelled => write!(f, "query cancelled"),
        }
    }
}

/// Trip-flag encoding: 0 = live, else `BudgetExceeded` + 1.
const LIVE: u8 = 0;

fn encode(why: BudgetExceeded) -> u8 {
    match why {
        BudgetExceeded::Timeout => 1,
        BudgetExceeded::ResultLimit => 2,
        BudgetExceeded::ScratchLimit => 3,
        BudgetExceeded::Cancelled => 4,
    }
}

fn decode(flag: u8) -> Option<BudgetExceeded> {
    match flag {
        1 => Some(BudgetExceeded::Timeout),
        2 => Some(BudgetExceeded::ResultLimit),
        3 => Some(BudgetExceeded::ScratchLimit),
        4 => Some(BudgetExceeded::Cancelled),
        _ => None,
    }
}

/// Polls between clock reads in [`Budget::poll`]: with one poll per
/// 64-entry kernel chunk, the clock is consulted once per ~4096
/// entries — cheap enough to leave on, frequent enough that a deadline
/// is noticed mid-kernel within microseconds of work, not at the next
/// operator boundary.
pub const POLL_STRIDE: u32 = 64;

#[derive(Debug)]
struct BudgetInner {
    tripped: AtomicU8,
    /// Amortization counter for [`Budget::poll`]'s clock reads.
    polls: AtomicU32,
    deadline: Option<Instant>,
    /// `u64::MAX` = uncapped.
    max_results: u64,
    max_scratch_bytes: u64,
    results: AtomicU64,
    scratch_hwm: AtomicU64,
}

/// Declarative cap set a [`Budget`] is built from. `None` everywhere
/// (the default) yields a budget that only ever trips via
/// [`Budget::cancel`] — a pure cancel token.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BudgetLimits {
    /// Wall-clock allowance, measured from [`Budget::new`].
    pub deadline: Option<Duration>,
    /// Cap on cumulative operator output cardinality.
    pub max_results: Option<u64>,
    /// Cap on the join-scratch high-water mark, in bytes.
    pub max_scratch_bytes: Option<u64>,
}

impl BudgetLimits {
    /// True when no cap is set — such a budget still works as a cancel
    /// token, but hosts usually skip installing one at all.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_results.is_none() && self.max_scratch_bytes.is_none()
    }
}

/// A shared, cooperative evaluation budget (see the module docs).
/// Cloning shares the underlying state — a clone handed to a worker or
/// kept by a server *is* the cancel token for the running query.
#[derive(Clone, Debug)]
pub struct Budget {
    inner: Arc<BudgetInner>,
}

impl Budget {
    /// A budget enforcing `limits`, with the deadline anchored at the
    /// moment of creation.
    pub fn new(limits: BudgetLimits) -> Budget {
        Budget {
            inner: Arc::new(BudgetInner {
                tripped: AtomicU8::new(LIVE),
                polls: AtomicU32::new(0),
                deadline: limits.deadline.map(|d| Instant::now() + d),
                max_results: limits.max_results.unwrap_or(u64::MAX),
                max_scratch_bytes: limits.max_scratch_bytes.unwrap_or(u64::MAX),
                results: AtomicU64::new(0),
                scratch_hwm: AtomicU64::new(0),
            }),
        }
    }

    /// A capless budget: a pure cancel token.
    pub fn cancel_token() -> Budget {
        Budget::new(BudgetLimits::default())
    }

    /// Trip the budget with `why` if still live. The first trip wins;
    /// later attempts (and later cap failures) keep the original reason.
    fn trip(&self, why: BudgetExceeded) {
        let _ = self.inner.tripped.compare_exchange(
            LIVE,
            encode(why),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Cancel cooperatively: evaluation observes the flag at its next
    /// poll/check and unwinds with [`BudgetExceeded::Cancelled`].
    pub fn cancel(&self) {
        self.trip(BudgetExceeded::Cancelled);
    }

    /// The recorded trip reason, if any — one relaxed atomic load. The
    /// cheapest probe; kernels hoisting their own amortization use it
    /// directly.
    #[inline]
    pub fn exceeded(&self) -> Option<BudgetExceeded> {
        decode(self.inner.tripped.load(Ordering::Relaxed))
    }

    /// Kernel-grade probe: the trip flag every call, the clock every
    /// [`POLL_STRIDE`]-th call. One relaxed load + one relaxed
    /// fetch-add per call; designed to sit in a per-64-entry-chunk
    /// position.
    #[inline]
    pub fn poll(&self) -> Option<BudgetExceeded> {
        if let Some(why) = self.exceeded() {
            return Some(why);
        }
        if self.inner.deadline.is_some()
            && self.inner.polls.fetch_add(1, Ordering::Relaxed) % POLL_STRIDE == POLL_STRIDE - 1
        {
            return self.check().err();
        }
        None
    }

    /// Chokepoint-grade check: trip flag plus an eager clock read.
    /// Called once per evaluated operator / join unit / morsel.
    #[inline]
    pub fn check(&self) -> Result<(), BudgetExceeded> {
        if let Some(why) = self.exceeded() {
            return Err(why);
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                self.trip(BudgetExceeded::Timeout);
                // Report the *recorded* reason: a concurrent trip for a
                // different cause may have won the race.
                return Err(self.exceeded().unwrap_or(BudgetExceeded::Timeout));
            }
        }
        Ok(())
    }

    /// Charge `rows` of operator output against the cardinality cap.
    pub fn charge_results(&self, rows: u64) -> Result<(), BudgetExceeded> {
        if let Some(why) = self.exceeded() {
            return Err(why);
        }
        let total = self.inner.results.fetch_add(rows, Ordering::Relaxed) + rows;
        if total > self.inner.max_results {
            self.trip(BudgetExceeded::ResultLimit);
            return Err(self.exceeded().unwrap_or(BudgetExceeded::ResultLimit));
        }
        Ok(())
    }

    /// Record the current scratch footprint; trips when it exceeds the
    /// scratch cap. Monotonic: the budget keeps the high-water mark.
    pub fn note_scratch(&self, bytes: u64) -> Result<(), BudgetExceeded> {
        if let Some(why) = self.exceeded() {
            return Err(why);
        }
        self.inner.scratch_hwm.fetch_max(bytes, Ordering::Relaxed);
        if bytes > self.inner.max_scratch_bytes {
            self.trip(BudgetExceeded::ScratchLimit);
            return Err(self.exceeded().unwrap_or(BudgetExceeded::ScratchLimit));
        }
        Ok(())
    }

    /// Cumulative charged result rows.
    pub fn results(&self) -> u64 {
        self.inner.results.load(Ordering::Relaxed)
    }

    /// Observed scratch high-water mark, in bytes.
    pub fn scratch_hwm(&self) -> u64 {
        self.inner.scratch_hwm.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips_on_charges() {
        let b = Budget::cancel_token();
        assert!(b.check().is_ok());
        assert!(b.charge_results(1 << 40).is_ok());
        assert!(b.note_scratch(1 << 40).is_ok());
        assert_eq!(b.exceeded(), None);
    }

    #[test]
    fn cancel_is_observed_everywhere() {
        let b = Budget::cancel_token();
        b.cancel();
        assert_eq!(b.exceeded(), Some(BudgetExceeded::Cancelled));
        assert_eq!(b.check(), Err(BudgetExceeded::Cancelled));
        assert_eq!(b.poll(), Some(BudgetExceeded::Cancelled));
        assert_eq!(b.charge_results(1), Err(BudgetExceeded::Cancelled));
    }

    #[test]
    fn result_cap_trips_at_boundary() {
        let b = Budget::new(BudgetLimits {
            max_results: Some(10),
            ..Default::default()
        });
        assert!(b.charge_results(10).is_ok());
        assert_eq!(b.charge_results(1), Err(BudgetExceeded::ResultLimit));
        // Later, different failures keep the first reason.
        b.cancel();
        assert_eq!(b.exceeded(), Some(BudgetExceeded::ResultLimit));
    }

    #[test]
    fn scratch_cap_records_hwm() {
        let b = Budget::new(BudgetLimits {
            max_scratch_bytes: Some(1024),
            ..Default::default()
        });
        assert!(b.note_scratch(512).is_ok());
        assert!(b.note_scratch(100).is_ok());
        assert_eq!(b.scratch_hwm(), 512);
        assert_eq!(b.note_scratch(2048), Err(BudgetExceeded::ScratchLimit));
    }

    #[test]
    fn zero_deadline_times_out() {
        let b = Budget::new(BudgetLimits {
            deadline: Some(Duration::ZERO),
            ..Default::default()
        });
        assert_eq!(b.check(), Err(BudgetExceeded::Timeout));
        assert_eq!(b.exceeded(), Some(BudgetExceeded::Timeout));
    }

    #[test]
    fn poll_reads_clock_on_stride() {
        let b = Budget::new(BudgetLimits {
            deadline: Some(Duration::ZERO),
            ..Default::default()
        });
        // The flag is not tripped yet; only the strided clock read can
        // trip it. POLL_STRIDE polls are guaranteed to include one.
        let mut tripped = None;
        for _ in 0..POLL_STRIDE {
            if let Some(why) = b.poll() {
                tripped = Some(why);
                break;
            }
        }
        assert_eq!(tripped, Some(BudgetExceeded::Timeout));
    }

    #[test]
    fn clones_share_state() {
        let b = Budget::cancel_token();
        let token = b.clone();
        std::thread::spawn(move || token.cancel()).join().unwrap();
        assert_eq!(b.exceeded(), Some(BudgetExceeded::Cancelled));
    }
}
