//! # Observability: a workspace-wide metrics registry.
//!
//! The paper's staircase-join argument is a claim about *where time
//! goes* during stand-off query evaluation. This module gives every
//! crate in the workspace a place to prove its mechanisms with numbers:
//! a [`MetricsRegistry`] of named monotonic counters and power-of-two
//! bucketed histograms, built only on `std` atomics so it is cheap
//! enough to leave enabled in release builds.
//!
//! Design points:
//!
//! * **Lock-free hot path.** [`Counter::add`] and [`Histogram::record`]
//!   are a handful of relaxed atomic operations. The registry's map is
//!   only locked on *registration* (`counter()`/`histogram()`); callers
//!   on hot paths register once and keep the returned handle.
//! * **Snapshot / delta.** [`MetricsRegistry::snapshot`] copies all
//!   values into a [`MetricsSnapshot`]; [`MetricsSnapshot::delta`]
//!   subtracts an earlier snapshot, so "what did this batch do?" is two
//!   calls around the batch. Counters are monotonic; deltas saturate.
//! * **No dependencies.** [`MetricsSnapshot::to_json`] hand-renders the
//!   snapshot (the workspace is offline; there is no serde).
//! * **Scoped or global.** Engines own their own registry (shared by
//!   all sessions of a `SharedEngine`), so tests stay isolated; code
//!   with no natural owner (snapshot mounting deep inside the store)
//!   records into the process-wide [`global`] registry.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of power-of-two histogram buckets. Bucket `i` counts values
/// `v` with `bucket_index(v) == i`, i.e. an upper bound of `2^i - 1`
/// for `i < 63`; the last bucket is unbounded. 64 buckets cover the
/// full `u64` range (nanosecond timings up to centuries).
pub const HISTOGRAM_BUCKETS: usize = 64;

fn bucket_index(v: u64) -> usize {
    // 0 → bucket 0; otherwise the position of the highest set bit + 1,
    // clamped to the last bucket. v=1 → 1, v=2..3 → 2, v=4..7 → 3, …
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A named monotonic counter. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Raise the value to `v` if it is currently below — for
    /// high-water-mark gauges (e.g. `executor.queue_depth_hwm`)
    /// published through the counter namespace.
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A named bucketed histogram (power-of-two buckets). Cloning shares
/// the underlying cells.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let c = &self.0;
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a [`std::time::Duration`] in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Copy the current state out.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &self.0;
        HistogramSnapshot {
            count: c.count.load(Ordering::Relaxed),
            sum: c.sum.load(Ordering::Relaxed),
            max: c.max.load(Ordering::Relaxed),
            buckets: c
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    /// One entry per power-of-two bucket (see [`bucket_upper_bound`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate quantile `q` in `[0,1]`: the upper bound of the
    /// bucket containing the `q`-th observation. Bucketing makes this
    /// an over-estimate by at most 2×.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Saturating subtraction of an earlier snapshot.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            // max is not differentiable; keep the later max.
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .map(|(i, &n)| n.saturating_sub(earlier.buckets.get(i).copied().unwrap_or(0)))
                .collect(),
        }
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

/// A registry of named counters and histograms.
///
/// Names are dot-separated (`join.result_sorts`, `store.mount_ns`);
/// histogram names end in a unit suffix (`_ns`, `_bytes`) or describe a
/// dimensionless size (`executor.queue_depth`). Registration
/// get-or-creates: two callers asking for the same name share one cell.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The process-wide registry, for instrumentation points with no
    /// natural owner (e.g. snapshot mounting inside the store crate).
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// Get or create the counter `name`. Hot paths should call this
    /// once and keep the handle; the registry map is behind a mutex.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().unwrap();
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().unwrap();
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// One-shot `counter(name).add(n)` (locks the map; fine off the
    /// hot path).
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// One-shot `histogram(name).record(v)`.
    pub fn record(&self, name: &str, v: u64) {
        self.histogram(name).record(v);
    }

    /// Copy every metric's current value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Point-in-time copy of a whole registry, ordered by name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Saturating subtraction of an earlier snapshot: "what happened
    /// between these two points". Metrics absent from `earlier` keep
    /// their full value.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, &v)| {
                    (
                        k.clone(),
                        v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)),
                    )
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| match earlier.histograms.get(k) {
                    Some(e) => (k.clone(), v.delta(e)),
                    None => (k.clone(), v.clone()),
                })
                .collect(),
        }
    }

    /// Merge another snapshot in. Counters add; histograms add
    /// bucket-wise (max takes the larger). Used to combine an engine's
    /// registry with the global store registry for reporting.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            let slot = self.histograms.entry(k.clone()).or_default();
            slot.count += h.count;
            slot.sum += h.sum;
            slot.max = slot.max.max(h.max);
            if slot.buckets.len() < h.buckets.len() {
                slot.buckets.resize(h.buckets.len(), 0);
            }
            for (i, &n) in h.buckets.iter().enumerate() {
                slot.buckets[i] += n;
            }
        }
    }

    /// True when every counter is zero and every histogram empty.
    pub fn is_empty(&self) -> bool {
        self.counters.values().all(|&v| v == 0) && self.histograms.values().all(|h| h.count == 0)
    }

    /// Render as a JSON object. Counters are plain numbers; histograms
    /// are objects with `count`, `sum`, `mean`, `max`, `p50`, `p99`
    /// and a sparse `buckets` array of `[upper_bound, count]` pairs
    /// (only non-empty buckets; the last bucket's bound renders as the
    /// string `"inf"`). Names are emitted in sorted order so output is
    /// deterministic for a given state.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{}\": {}", escape_json(k), v));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        let mut first = true;
        for (k, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"mean\": {}, \"max\": {}, \"p50\": {}, \"p99\": {}, \"buckets\": [",
                escape_json(k),
                h.count,
                h.sum,
                h.mean(),
                h.max,
                h.quantile(0.50),
                h.quantile(0.99),
            ));
            let mut firstb = true;
            for (i, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if !firstb {
                    out.push_str(", ");
                }
                firstb = false;
                let bound = bucket_upper_bound(i);
                if bound == u64::MAX {
                    out.push_str(&format!("[\"inf\", {n}]"));
                } else {
                    out.push_str(&format!("[{bound}, {n}]"));
                }
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}");
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a.b");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name → same cell.
        let c2 = reg.counter("a.b");
        c2.inc();
        assert_eq!(c.get(), 6);
        assert_eq!(reg.snapshot().counters["a.b"], 6);
    }

    #[test]
    fn bucket_bounds() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(3), 7);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_stats() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_ns");
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.max, 1000);
        assert_eq!(s.mean(), 221);
        // p50: 3rd of 5 observations lands in the [2,3] bucket.
        assert_eq!(s.quantile(0.5), 3);
        // p99 → last observation's bucket, clamped to max.
        assert_eq!(s.quantile(0.99), 1000);
    }

    #[test]
    fn snapshot_delta() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c");
        let h = reg.histogram("h");
        c.add(10);
        h.record(5);
        let before = reg.snapshot();
        c.add(7);
        h.record(9);
        h.record(90);
        let d = reg.snapshot().delta(&before);
        assert_eq!(d.counters["c"], 7);
        assert_eq!(d.histograms["h"].count, 2);
        assert_eq!(d.histograms["h"].sum, 99);
        // New metric absent from the earlier snapshot keeps its value.
        reg.counter("new").add(3);
        let d2 = reg.snapshot().delta(&before);
        assert_eq!(d2.counters["new"], 3);
    }

    #[test]
    fn snapshot_merge() {
        let a = MetricsRegistry::new();
        a.add("shared", 2);
        a.record("h", 10);
        let b = MetricsRegistry::new();
        b.add("shared", 3);
        b.add("only_b", 1);
        b.record("h", 20);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.counters["shared"], 5);
        assert_eq!(m.counters["only_b"], 1);
        assert_eq!(m.histograms["h"].count, 2);
        assert_eq!(m.histograms["h"].sum, 30);
        assert_eq!(m.histograms["h"].max, 20);
    }

    #[test]
    fn json_shape() {
        let reg = MetricsRegistry::new();
        reg.add("plan_cache.hits", 3);
        reg.record("query.exec_ns", 1500);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"plan_cache.hits\": 3"));
        assert!(json.contains("\"query.exec_ns\""));
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"sum\": 1500"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_snapshot() {
        let reg = MetricsRegistry::new();
        assert!(reg.snapshot().is_empty());
        reg.counter("c"); // registered but zero
        reg.histogram("h");
        assert!(reg.snapshot().is_empty());
        reg.add("c", 1);
        assert!(!reg.snapshot().is_empty());
    }

    #[test]
    fn concurrent_increments() {
        let reg = Arc::new(MetricsRegistry::new());
        let c = reg.counter("hot");
        let h = reg.histogram("hot_ns");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(h.snapshot().count, 8000);
    }

    #[test]
    fn global_registry_is_shared() {
        MetricsRegistry::global().add("obs.test_global", 1);
        let v = MetricsRegistry::global().snapshot().counters["obs.test_global"];
        assert!(v >= 1);
    }
}
