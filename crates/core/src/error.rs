//! Error type for the StandOff core.

use std::fmt;

use crate::region::Region;

/// Errors raised by region parsing, area validation and index
/// construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StandoffError {
    /// `start > end`.
    InvalidRegion { start: i64, end: i64 },
    /// An area must have at least one region.
    EmptyArea,
    /// Two regions of one area overlap or touch (§2 forbids both).
    AreaRegionsConflict { a: Region, b: Region },
    /// A region position did not parse as the configured position type.
    BadPosition {
        /// The lexical value that failed to parse.
        value: String,
        /// Where it was found (element name / attribute name).
        context: String,
    },
    /// An element in region representation lacked a start or end child.
    IncompleteRegion { context: String },
    /// The `standoff-type` option names an unsupported position type.
    UnsupportedType(String),
}

impl fmt::Display for StandoffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StandoffError::InvalidRegion { start, end } => {
                write!(f, "invalid region: start {start} > end {end}")
            }
            StandoffError::EmptyArea => write!(f, "area-annotation without regions"),
            StandoffError::AreaRegionsConflict { a, b } => {
                write!(f, "area regions {a} and {b} overlap or touch")
            }
            StandoffError::BadPosition { value, context } => {
                write!(f, "position '{value}' in {context} is not a valid integer")
            }
            StandoffError::IncompleteRegion { context } => {
                write!(f, "region element {context} lacks start or end")
            }
            StandoffError::UnsupportedType(t) => {
                write!(f, "unsupported standoff-type '{t}' (supported: xs:integer)")
            }
        }
    }
}

impl std::error::Error for StandoffError {}
