//! Naive nested-loop baselines — the paper's XQuery-function
//! implementation alternatives (§3.2, Figures 2 and 3).
//!
//! Both compare every context annotation against every candidate, per
//! iteration — quadratic work that the paper's Figure 6 shows DNF-ing
//! (without candidates) or trailing the merge joins by one to two orders
//! of magnitude (with candidates). They double as the test oracle: the
//! area predicates are applied literally, with no merge-join machinery to
//! get wrong.

use standoff_xml::NodeKind;

use crate::join::{IterNode, JoinInput, StandoffAxis};
use crate::region::Area;

/// Nested-loop evaluation of a select join.
///
/// `with_candidates = false` models Figure 2 (`for $p in root($q)//*`):
/// the inner loop visits **every element of the document**, checking each
/// for region markup, regardless of any candidate restriction. With
/// `true` it models Figure 3: the inner loop visits the candidate
/// sequence only.
///
/// The quadratic inner loop polls `budget` per candidate: these baselines
/// are exactly the strategies a deadline must be able to interrupt (the
/// paper's Figure 6 DNF bars), so a governed query bails out mid-product
/// and the evaluator surfaces the recorded trip reason.
pub fn naive_select(
    axis: StandoffAxis,
    input: &JoinInput<'_>,
    with_candidates: bool,
    budget: Option<&crate::budget::Budget>,
) -> Vec<IterNode> {
    debug_assert!(axis.is_select());
    let narrow = axis.is_narrow();

    // The inner node universe, fetched per the strategy.
    let inner: Vec<u32> = if with_candidates {
        input.candidate_universe()
    } else {
        // root($q)//* — every element node, annotated or not; the area
        // check happens (and fails) inside the loop, like the UDF's
        // predicate on @start/@end.
        (0..input.doc.node_count() as u32)
            .filter(|&p| input.doc.kind(p) == NodeKind::Element)
            .collect()
    };

    let mut out: Vec<IterNode> = Vec::new();
    for &IterNode { iter, node } in input.context {
        let Some(a1) = area_of(input.context_index(), node) else {
            continue; // context node is not an area-annotation
        };
        for &cand in &inner {
            if budget.is_some_and(|b| b.poll().is_some()) {
                return out; // discarded by the evaluator's budget check
            }
            let Some(a2) = area_of(input.index, cand) else {
                continue;
            };
            let matched = if narrow {
                a1.contains(&a2)
            } else {
                a1.overlaps(&a2)
            };
            if matched {
                out.push(IterNode { iter, node: cand });
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

fn area_of(source: crate::source::RegionSource<'_>, pre: u32) -> Option<Area> {
    let regions = source.regions_of(pre);
    if regions.is_empty() {
        None
    } else {
        Some(Area::try_new(regions.to_vec()).expect("index stores valid areas"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StandoffConfig;
    use crate::index::RegionIndex;
    use standoff_xml::parse_document;

    fn figure1() -> (standoff_xml::Document, RegionIndex) {
        let doc = parse_document(
            r#"<sample>
                 <video>
                   <shot id="Intro" start="0" end="8"/>
                   <shot id="Interview" start="8" end="64"/>
                   <shot id="Outro" start="64" end="94"/>
                 </video>
                 <audio>
                   <music artist="U2" start="0" end="31"/>
                   <music artist="Bach" start="52" end="94"/>
                 </audio>
               </sample>"#,
        )
        .unwrap();
        let idx = RegionIndex::build(&doc, &StandoffConfig::default()).unwrap();
        (doc, idx)
    }

    fn shot_ids(doc: &standoff_xml::Document, nodes: &[IterNode]) -> Vec<String> {
        nodes
            .iter()
            .map(|n| doc.attribute(n.node, "id").unwrap().to_string())
            .collect()
    }

    #[test]
    fn figure1_u2_narrow_and_wide() {
        let (doc, index) = figure1();
        let u2 = doc.elements_named("music")[0];
        let shots = doc.elements_named("shot");
        let ctx = [IterNode { iter: 0, node: u2 }];
        let input = JoinInput {
            doc: &doc,
            index: (&index).into(),
            ctx_index: None,
            context: &ctx,
            candidates: Some(shots),
            iter_domain: &[0],
        };
        let narrow = naive_select(StandoffAxis::SelectNarrow, &input, true, None);
        assert_eq!(shot_ids(&doc, &narrow), vec!["Intro"]);
        let wide = naive_select(StandoffAxis::SelectWide, &input, true, None);
        assert_eq!(shot_ids(&doc, &wide), vec!["Intro", "Interview"]);
    }

    #[test]
    fn without_candidates_scans_everything_but_matches_annotated_only() {
        let (doc, index) = figure1();
        let u2 = doc.elements_named("music")[0];
        let ctx = [IterNode { iter: 0, node: u2 }];
        let input = JoinInput {
            doc: &doc,
            index: (&index).into(),
            ctx_index: None,
            context: &ctx,
            candidates: None,
            iter_domain: &[0],
        };
        let wide = naive_select(StandoffAxis::SelectWide, &input, false, None);
        // U2 [0,31] overlaps Intro, Interview and itself; <video>/<audio>
        // have no regions and never match.
        assert_eq!(wide.len(), 3);
    }

    #[test]
    fn unannotated_context_contributes_nothing() {
        let (doc, index) = figure1();
        let video = doc.elements_named("video")[0];
        let ctx = [IterNode {
            iter: 0,
            node: video,
        }];
        let input = JoinInput {
            doc: &doc,
            index: (&index).into(),
            ctx_index: None,
            context: &ctx,
            candidates: None,
            iter_domain: &[0],
        };
        assert!(naive_select(StandoffAxis::SelectWide, &input, false, None).is_empty());
    }
}
