//! The StandOff MergeJoin algorithms (paper §4.4–§4.5, Listing 1).
//!
//! Both joins merge a context table (sorted on region start) with the
//! candidate entries of the region index (clustered on start), keeping a
//! list of *active* context items sorted descending on their end value.
//! A context item stays active while it can still produce results
//! (`ctx.end ≥ current candidate.start` for `select-narrow`). Because
//! annotation regions — unlike XML tree regions — may overlap arbitrarily,
//! deletions can happen in the middle of the list ("so it really is a
//! list", §5); Structural Join and Staircase Join cannot be reused as-is.
//!
//! The *loop-lifted* variant (Listing 1) carries an `iter` column through
//! the merge so that one scan evaluates the step for every iteration of a
//! for-loop scope. The *basic* variant is the same merge run once per
//! iteration — the paper's experiments show this re-scanning is what makes
//! XMark Q2 blow up (Figure 6).
//!
//! ### Fidelity notes on Listing 1
//!
//! The paper's pseudo-code is reproduced here with three clarifications
//! that are required for correctness and for the printed Figure 4 trace to
//! be internally consistent:
//!
//! 1. the "skip self-overlapping regions" test (lines 11–18) skips a
//!    context item iff an **active item of the same iteration** already
//!    covers it — only then is its contribution a subset of existing
//!    results (Figure 4's input table lists `c3` under iter 1, but its
//!    step 4 "skip c3" is only semantics-preserving if `c3` shares iter 2
//!    with its covering context `c2`; we take the trace as authoritative);
//! 2. the candidate-analysis loop (lines 26–36) also ends when the active
//!    list becomes empty — otherwise Figure 4's step 8 (skipping `r3` at
//!    lines 21–24) could never be reached;
//! 3. `replace_active_items_with` (line 41) removes active items of the
//!    same iteration that the new item supersedes (their future results
//!    are a subset of the new item's) and inserts the new item keeping
//!    the list sorted descending on `end`.

use crate::index::RegionEntry;
use crate::join::{CtxEntry, Emission};
use crate::trace::{NoTrace, TraceEvent, TraceSink};

/// An entry of the active-items list.
#[derive(Clone, Copy, Debug)]
struct ActiveItem {
    iter: u32,
    node: u32,
    end: i64,
    /// Original context row (for trace labels).
    ctx_idx: u32,
}

/// Active item of the wide join: carries the start for the explicit
/// overlap check.
#[derive(Clone, Copy, Debug)]
struct WideActive {
    iter: u32,
    node: u32,
    start: i64,
    end: i64,
}

/// Reusable active-list buffers for the merge kernels. The lists are
/// cleared on entry, so a scratch instance can serve any number of joins
/// back to back; only the *capacity* survives between calls.
#[derive(Debug, Default)]
pub struct MergeScratch {
    narrow_active: Vec<ActiveItem>,
    wide_active: Vec<WideActive>,
    /// 64-candidate blocks processed by the branch-free single-active
    /// emission run (accumulated until [`MergeScratch::take_blocks`]).
    blocks: u64,
    /// Governance handle polled inside the merge loops so a deadline or
    /// cancellation interrupts a long scan mid-kernel, not only at
    /// operator boundaries. `None` (the default) costs one hoisted
    /// null test per loop round.
    pub(crate) budget: Option<crate::budget::Budget>,
}

impl MergeScratch {
    /// Take the accumulated branch-free block count, leaving zero.
    pub fn take_blocks(&mut self) -> u64 {
        std::mem::take(&mut self.blocks)
    }
}

/// Poll the optional budget; `true` means the query tripped and the
/// kernel must bail out (partial emissions are discarded with the query —
/// the evaluator re-checks the budget and surfaces the recorded reason).
#[inline]
fn tripped(budget: &Option<crate::budget::Budget>) -> bool {
    budget.as_ref().is_some_and(|b| b.poll().is_some())
}

/// Loop-lifted `select-narrow` merge join — Listing 1.
///
/// `context` must be sorted ascending on `start`; `candidates` is the
/// (possibly candidate-intersected) region index, clustered on start.
/// Produces raw `(iter, ctx_node, candidate)` matches; containment of each
/// candidate *region* in a context region of the same iteration.
///
/// Tracing is monomorphized away when disabled: pass [`NoTrace`] (or use
/// the `None` convenience of [`crate::evaluate_standoff_join`]).
pub fn ll_select_narrow(
    context: &[CtxEntry],
    candidates: &[RegionEntry],
    per_annotation: bool,
    trace: Option<&mut dyn TraceSink>,
) -> Vec<Emission> {
    let mut result = Vec::new();
    ll_select_narrow_into(
        context,
        candidates,
        per_annotation,
        trace,
        &mut MergeScratch::default(),
        &mut result,
    );
    result
}

/// [`ll_select_narrow`] with caller-provided buffers: emissions are
/// *appended* to `result` (the loop-lifted caller clears, the basic
/// caller accumulates across iterations), active-list storage comes from
/// `scratch`.
pub(crate) fn ll_select_narrow_into(
    context: &[CtxEntry],
    candidates: &[RegionEntry],
    per_annotation: bool,
    trace: Option<&mut dyn TraceSink>,
    scratch: &mut MergeScratch,
    result: &mut Vec<Emission>,
) {
    match trace {
        Some(t) => ll_select_narrow_impl(context, candidates, per_annotation, t, scratch, result),
        None => ll_select_narrow_impl(
            context,
            candidates,
            per_annotation,
            NoTrace,
            scratch,
            result,
        ),
    }
}

fn ll_select_narrow_impl<T: TraceSink>(
    context: &[CtxEntry],
    candidates: &[RegionEntry],
    per_annotation: bool,
    mut trace: T,
    scratch: &mut MergeScratch,
    result: &mut Vec<Emission>,
) {
    debug_assert!(context.windows(2).all(|w| w[0].start <= w[1].start));
    debug_assert!(candidates.windows(2).all(|w| w[0].start <= w[1].start));
    if context.is_empty() || candidates.is_empty() {
        return;
    }

    let budget = scratch.budget.clone();
    let active: &mut Vec<ActiveItem> = &mut scratch.narrow_active;
    active.clear();
    let mut i = 0usize; // iterates over context
    let mut j = 0usize; // iterates over candidates

    // line 8: seed the list with the first context item.
    insert_active(active, &context[0], 0, per_annotation, &mut trace, 8);

    while i < context.len() {
        if tripped(&budget) {
            return;
        }
        // lines 11-18: skip context items covered by an active item of
        // the same iteration — they cannot yield additional results.
        let mut next_i = i + 1;
        while next_i < context.len() {
            let c = &context[next_i];
            // A context item is covered when an active item of the same
            // iteration spans it; in per-annotation mode (multi-region ∀∃
            // post-processing) the evidence must stay attributable, so
            // only entries of the same annotation may shadow each other.
            let covered = active.iter().any(|a| {
                a.iter == c.iter && a.end >= c.end && (!per_annotation || a.node == c.node)
            });
            if covered {
                trace.event(TraceEvent::SkipContext { ctx: next_i as u32 });
                next_i += 1;
            } else {
                break;
            }
        }
        // lines 19-20: if we ran out of context items the next context
        // starts infinitely far away.
        let next_start = if next_i < context.len() {
            context[next_i].start
        } else {
            i64::MAX
        };
        // lines 21-24: fast-forward over candidates that start before the
        // current context item (possible after the active list drained).
        // Untraced runs gallop (one compare when there is nothing to
        // skip, O(log gap) for a long run) instead of stepping one
        // candidate at a time; traced runs keep the per-candidate events
        // Figure 4 prints.
        if trace.enabled() {
            while j < candidates.len() && candidates[j].start < context[i].start {
                trace.event(TraceEvent::SkipCandidateBefore { cand: j as u32 });
                j += 1;
            }
        } else {
            j = gallop_starts(candidates, j, context[i].start);
        }
        // lines 26-36: analyze candidates until the next context item
        // must enter the list (or the active list drains). Each round is
        // one candidate (general path) or one galloped emission run (fast
        // path), so the budget poll below bounds ungoverned work without
        // adding a data-dependent branch inside the 64-wide match masks.
        while j < candidates.len() && candidates[j].start < next_start {
            if tripped(&budget) {
                return;
            }
            // Branch-free fast path for the dominant shape (flat layouts
            // keep exactly one item active): the run of candidates this
            // item survives is bounded by two monotone conditions —
            // `start < next_start` (loop bound) and `start ≤ active.end`
            // (the line 28-31 trim) — so one partition point delimits it,
            // and within the run the only per-candidate decision is the
            // emission test `cand.end ≤ active.end`, evaluated as 64-wide
            // match masks with no data-dependent branches. Equivalent to
            // the general loop below: no trim fires inside the run, the
            // descending-ends emission scan degenerates to the single
            // test, and a candidate past the run that still precedes
            // `next_start` is exactly the list-drain break (clarif. 2).
            if active.len() == 1 && !trace.enabled() {
                let a = active[0];
                let bound = next_start.min(a.end.saturating_add(1));
                if candidates[j].start >= bound {
                    // Empty run: the loop bound admits this candidate but
                    // the sole active item ended before it starts — the
                    // line 28-31 trim kills the item and the list drains.
                    // One comparison, same as the general loop's trim.
                    active.clear();
                    break;
                }
                // Gallop, not bisect: the run is usually much shorter
                // than the candidate tail, so the doubling search costs
                // O(log run), not O(log remaining).
                let hi = gallop_starts(candidates, j, bound);
                emit_contained_run(
                    &candidates[j..hi],
                    j as u32,
                    &a,
                    result,
                    &mut scratch.blocks,
                );
                j = hi;
                if j < candidates.len() && candidates[j].start < next_start {
                    // The sole active item ended before this candidate
                    // starts: trim kills it and the list drains.
                    active.clear();
                    break;
                }
                continue;
            }
            let cand = &candidates[j];
            // lines 28-31: trim active items that ended before this
            // candidate starts (list is sorted descending on end, so they
            // sit at the back).
            while let Some(last) = active.last() {
                if last.end < cand.start {
                    trace.event(TraceEvent::RemoveActive { ctx: last.ctx_idx });
                    active.pop();
                } else {
                    break;
                }
            }
            if active.is_empty() {
                break; // clarification 2: resume with the next context item
            }
            // lines 32-34: all active items with end ≥ cand.end contain
            // the candidate (their start ≤ cand.start by merge order).
            let mut emitted = false;
            for a in active.iter() {
                if a.end < cand.end {
                    break; // descending ends: nothing further contains it
                }
                result.push(Emission {
                    iter: a.iter,
                    ctx_node: a.node,
                    cand_idx: j as u32,
                });
                trace.event(TraceEvent::Emit {
                    iter: a.iter,
                    cand: j as u32,
                });
                emitted = true;
            }
            if !emitted {
                trace.event(TraceEvent::SkipCandidateNoMatch { cand: j as u32 });
            }
            j += 1;
        }
        // lines 37-38: all candidates consumed.
        if j == candidates.len() {
            trace.event(TraceEvent::Exit);
            break;
        }
        // lines 40-41: move to the next context item and add it.
        i = next_i;
        if i < context.len() {
            insert_active(
                active,
                &context[i],
                i as u32,
                per_annotation,
                &mut trace,
                41,
            );
        }
    }
}

/// First position at or after `from` whose candidate starts at or after
/// `target` — exponential probe bracketing a binary search, so the
/// common no-skip case costs a single comparison and a run of `s`
/// skippable candidates costs `O(log s)` instead of `s` steps.
#[inline]
fn gallop_starts(candidates: &[RegionEntry], from: usize, target: i64) -> usize {
    let mut step = 1usize;
    let mut hi = from;
    while hi < candidates.len() && candidates[hi].start < target {
        hi += step;
        step *= 2;
    }
    let lo = hi - step / 2; // last probe known `< target` (or `from`)
    let hi = hi.min(candidates.len());
    lo + candidates[lo..hi].partition_point(|c| c.start < target)
}

/// The branch-free emission kernel of the single-active fast path: for
/// each 64-candidate block, build a match bitmask from the containment
/// test (`cand.end ≤ active.end`; `start ≥ active.start` holds by merge
/// order) with a data-independent inner loop, then pop set bits in order.
#[inline]
fn emit_contained_run(
    run: &[RegionEntry],
    base_idx: u32,
    a: &ActiveItem,
    result: &mut Vec<Emission>,
    blocks: &mut u64,
) {
    let mut idx = base_idx;
    for chunk in run.chunks(64) {
        *blocks += 1;
        let mut mask = 0u64;
        for (k, c) in chunk.iter().enumerate() {
            mask |= ((c.end <= a.end) as u64) << k;
        }
        while mask != 0 {
            result.push(Emission {
                iter: a.iter,
                ctx_node: a.node,
                cand_idx: idx + mask.trailing_zeros(),
            });
            mask &= mask - 1;
        }
        idx += chunk.len() as u32;
    }
}

/// `replace_active_items_with` (Listing 1 line 41 / line 8): remove
/// same-iteration items the new context supersedes, then insert keeping
/// the list sorted descending on `end`.
fn insert_active<T: TraceSink>(
    active: &mut Vec<ActiveItem>,
    c: &CtxEntry,
    ctx_idx: u32,
    per_annotation: bool,
    trace: &mut T,
    line: u8,
) {
    // Same-iteration items with end ≤ new end were added earlier (start ≤
    // new start), so every future result they produce, the new item
    // produces too. Deleting them keeps the list short; note this deletes
    // from the middle — the "list, not stack" remark of §5. In
    // per-annotation mode only entries of the same annotation may be
    // superseded (disjoint regions of one area never supersede anyway,
    // so this retains everything in practice).
    active
        .retain(|a| !(a.iter == c.iter && a.end <= c.end && (!per_annotation || a.node == c.node)));
    let pos = active.partition_point(|a| a.end >= c.end);
    active.insert(
        pos,
        ActiveItem {
            iter: c.iter,
            node: c.node,
            end: c.end,
            ctx_idx,
        },
    );
    trace.event(TraceEvent::AddActive { ctx: ctx_idx, line });
}

/// Loop-lifted `select-wide` merge join: overlap instead of containment.
///
/// Structure mirrors `ll_select_narrow`, with the overlap-specific
/// differences: a context item becomes relevant as soon as it starts at or
/// before the candidate's **end** (not its start), and emission requires
/// `active.start ≤ cand.end ∧ active.end ≥ cand.start` — the first half of
/// which must be checked explicitly because candidate ends are not
/// monotone in a start-sorted scan.
pub fn ll_select_wide(context: &[CtxEntry], candidates: &[RegionEntry]) -> Vec<Emission> {
    let mut result = Vec::new();
    ll_select_wide_into(
        context,
        candidates,
        &mut MergeScratch::default(),
        &mut result,
    );
    result
}

/// [`ll_select_wide`] with caller-provided buffers; emissions are
/// *appended* to `result`.
pub(crate) fn ll_select_wide_into(
    context: &[CtxEntry],
    candidates: &[RegionEntry],
    scratch: &mut MergeScratch,
    result: &mut Vec<Emission>,
) {
    debug_assert!(context.windows(2).all(|w| w[0].start <= w[1].start));
    debug_assert!(candidates.windows(2).all(|w| w[0].start <= w[1].start));
    if context.is_empty() || candidates.is_empty() {
        return;
    }

    let budget = scratch.budget.clone();
    let active: &mut Vec<WideActive> = &mut scratch.wide_active;
    active.clear();
    let mut i = 0usize;

    for (j, cand) in candidates.iter().enumerate() {
        if tripped(&budget) {
            return;
        }
        // Add every context item that starts at or before this
        // candidate's end: it may overlap this or a later candidate.
        while i < context.len() && context[i].start <= cand.end {
            let c = &context[i];
            // Same-iteration covered contexts cannot add new overlaps.
            let covered = active
                .iter()
                .any(|a| a.iter == c.iter && a.start <= c.start && a.end >= c.end);
            if !covered {
                // Supersede same-iter items fully inside the new one.
                active.retain(|a| !(a.iter == c.iter && a.start >= c.start && a.end <= c.end));
                let pos = active.partition_point(|a| a.end >= c.end);
                active.insert(
                    pos,
                    WideActive {
                        iter: c.iter,
                        node: c.node,
                        start: c.start,
                        end: c.end,
                    },
                );
            }
            i += 1;
        }
        // Trim items that ended before this candidate starts; candidate
        // starts are monotone, so they are dead for all later candidates.
        while let Some(last) = active.last() {
            if last.end < cand.start {
                active.pop();
            } else {
                break;
            }
        }
        // Emit all active items that overlap. end ≥ cand.start holds
        // after the trim; start ≤ cand.end must be tested per item.
        for a in active.iter() {
            if a.start <= cand.end {
                result.push(Emission {
                    iter: a.iter,
                    ctx_node: a.node,
                    cand_idx: j as u32,
                });
            }
        }
    }
}

/// Basic StandOff MergeJoin for `select-narrow` (§4.4): the same merge,
/// invoked once per iteration — each call re-scans the candidate
/// sequence, which is exactly the behaviour whose cost Figure 6 exposes
/// on XMark Q2.
pub fn basic_select_narrow(
    context: &[CtxEntry],
    candidates: &[RegionEntry],
    per_annotation: bool,
    trace: Option<&mut dyn TraceSink>,
) -> Vec<Emission> {
    match trace {
        Some(t) => basic_select_narrow_impl(context, candidates, per_annotation, t),
        None => basic_select_narrow_impl(context, candidates, per_annotation, NoTrace),
    }
}

fn basic_select_narrow_impl<T: TraceSink>(
    context: &[CtxEntry],
    candidates: &[RegionEntry],
    per_annotation: bool,
    mut trace: T,
) -> Vec<Emission> {
    let mut scratch = MergeScratch::default();
    let mut single: Vec<CtxEntry> = Vec::new();
    let mut result = Vec::new();
    for iter in distinct_iterations(context) {
        // The basic algorithm has no iter column: gather this iteration's
        // context (still start-sorted — the filter is stable), run the
        // merge on the single sequence, then re-tag the emissions.
        single.clear();
        single.extend(
            context
                .iter()
                .filter(|c| c.iter == iter)
                .map(|c| CtxEntry { iter: 0, ..*c }),
        );
        let from = result.len();
        ll_select_narrow_impl(
            &single,
            candidates,
            per_annotation,
            &mut trace,
            &mut scratch,
            &mut result,
        );
        for e in &mut result[from..] {
            e.iter = iter;
        }
    }
    result.sort_unstable();
    result
}

/// Basic StandOff MergeJoin for `select-wide`.
pub fn basic_select_wide(context: &[CtxEntry], candidates: &[RegionEntry]) -> Vec<Emission> {
    let mut scratch = MergeScratch::default();
    let mut single: Vec<CtxEntry> = Vec::new();
    let mut result = Vec::new();
    for iter in distinct_iterations(context) {
        single.clear();
        single.extend(
            context
                .iter()
                .filter(|c| c.iter == iter)
                .map(|c| CtxEntry { iter: 0, ..*c }),
        );
        let from = result.len();
        ll_select_wide_into(&single, candidates, &mut scratch, &mut result);
        for e in &mut result[from..] {
            e.iter = iter;
        }
    }
    result.sort_unstable();
    result
}

/// The distinct iterations present in a context table, ascending. The
/// basic strategy invokes the merge once per element — the "called for
/// each iteration" pattern whose repeated index scans Figure 6 exposes.
fn distinct_iterations(context: &[CtxEntry]) -> Vec<u32> {
    let mut iters: Vec<u32> = context.iter().map(|c| c.iter).collect();
    iters.sort_unstable();
    iters.dedup();
    iters
}

/// The paper's §5 future-work variant: "it could be beneficial to
/// substitute the stack (from which we currently may delete elements in
/// the middle – so it really is a list) by a heap, in data-distributions
/// that cause it to grow long."
///
/// Active items live in a **min-heap keyed on `end`**: trimming dead
/// items is `O(log n)` per removal and insertion is `O(log n)` (the
/// sorted list pays `O(n)` per insert). The trade-offs: the emission scan
/// loses its sorted-order early exit (it inspects every live item), and
/// the covered-context skip is dropped (it needed ordered access), so
/// duplicate emissions can occur — post-processing deduplicates them
/// anyway. Results are identical to [`ll_select_narrow`] after
/// finalization; `benches/mergejoin.rs` measures the crossover.
pub fn ll_select_narrow_heap(context: &[CtxEntry], candidates: &[RegionEntry]) -> Vec<Emission> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    debug_assert!(context.windows(2).all(|w| w[0].start <= w[1].start));
    debug_assert!(candidates.windows(2).all(|w| w[0].start <= w[1].start));
    let mut result = Vec::new();
    if context.is_empty() || candidates.is_empty() {
        return result;
    }

    // Min-heap on end: Reverse<(end, iter, node)>.
    let mut active: BinaryHeap<Reverse<(i64, u32, u32)>> = BinaryHeap::new();
    let mut i = 0usize;

    for (j, cand) in candidates.iter().enumerate() {
        // Add every context item starting at or before this candidate.
        while i < context.len() && context[i].start <= cand.start {
            let c = &context[i];
            active.push(Reverse((c.end, c.iter, c.node)));
            i += 1;
        }
        // Trim items that died before this candidate starts (candidate
        // starts are monotone, so they are dead for good).
        while let Some(&Reverse((end, _, _))) = active.peek() {
            if end < cand.start {
                active.pop();
            } else {
                break;
            }
        }
        // Emit all live items containing the candidate (start ≤
        // cand.start holds by insertion order; end must reach cand.end).
        for &Reverse((end, iter, node)) in active.iter() {
            if end >= cand.end {
                result.push(Emission {
                    iter,
                    ctx_node: node,
                    cand_idx: j as u32,
                });
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(rows: &[(u32, i64, i64)]) -> Vec<CtxEntry> {
        let mut v: Vec<CtxEntry> = rows
            .iter()
            .enumerate()
            .map(|(n, &(iter, start, end))| CtxEntry {
                iter,
                node: n as u32,
                start,
                end,
            })
            .collect();
        v.sort_by_key(|c| (c.start, c.end));
        v
    }

    fn cands(rows: &[(i64, i64)]) -> Vec<RegionEntry> {
        let mut v: Vec<RegionEntry> = rows
            .iter()
            .enumerate()
            .map(|(n, &(start, end))| RegionEntry {
                start,
                end,
                id: 1000 + n as u32,
            })
            .collect();
        v.sort_by_key(|e| (e.start, e.end));
        v
    }

    /// (iter, candidate id) pairs, sorted, deduplicated.
    fn narrow_pairs(context: &[CtxEntry], candidates: &[RegionEntry]) -> Vec<(u32, u32)> {
        let mut p: Vec<(u32, u32)> = ll_select_narrow(context, candidates, false, None)
            .into_iter()
            .map(|e| (e.iter, candidates[e.cand_idx as usize].id))
            .collect();
        p.sort_unstable();
        p.dedup();
        p
    }

    fn wide_pairs(context: &[CtxEntry], candidates: &[RegionEntry]) -> Vec<(u32, u32)> {
        let mut p: Vec<(u32, u32)> = ll_select_wide(context, candidates)
            .into_iter()
            .map(|e| (e.iter, candidates[e.cand_idx as usize].id))
            .collect();
        p.sort_unstable();
        p.dedup();
        p
    }

    #[test]
    fn listing1_example_input() {
        // The Figure 4 input (c3 in iteration 2; see module docs).
        let context = ctx(&[(1, 0, 15), (2, 12, 35), (2, 20, 30), (1, 55, 80)]);
        let candidates = cands(&[(5, 10), (22, 45), (40, 60), (65, 70)]);
        assert_eq!(
            narrow_pairs(&context, &candidates),
            vec![(1, 1000), (1, 1003)],
            "r1 ⊂ c1 (iter 1), r4 ⊂ c4 (iter 1); r2, r3 contained nowhere"
        );
    }

    #[test]
    fn narrow_boundary_containment() {
        let context = ctx(&[(0, 10, 20)]);
        let candidates = cands(&[(10, 20), (10, 21), (9, 20), (15, 15)]);
        assert_eq!(
            narrow_pairs(&context, &candidates),
            vec![(0, 1000), (0, 1003)],
            "exact bounds contained; either side out by one is not"
        );
    }

    #[test]
    fn wide_boundary_overlap() {
        let context = ctx(&[(0, 10, 20)]);
        let candidates = cands(&[(0, 9), (0, 10), (20, 30), (21, 30), (0, 100)]);
        assert_eq!(
            wide_pairs(&context, &candidates),
            vec![(0, 1001), (0, 1002), (0, 1004)],
            "endpoint-sharing overlaps; disjoint neighbours do not"
        );
    }

    #[test]
    fn overlapping_contexts_both_match() {
        // Overlapping (not nested) same-iter contexts: both must count.
        let context = ctx(&[(0, 0, 20), (0, 10, 30)]);
        let candidates = cands(&[(2, 8), (12, 18), (22, 28)]);
        assert_eq!(
            narrow_pairs(&context, &candidates),
            vec![(0, 1000), (0, 1001), (0, 1002)]
        );
    }

    #[test]
    fn nested_same_iter_context_is_skipped_but_results_kept() {
        // Inner context nested in outer of the SAME iteration: skipping it
        // must not change results.
        let context = ctx(&[(0, 0, 100), (0, 10, 20)]);
        let candidates = cands(&[(12, 18), (50, 60)]);
        assert_eq!(
            narrow_pairs(&context, &candidates),
            vec![(0, 1000), (0, 1001)]
        );
    }

    #[test]
    fn nested_context_different_iters_not_skipped() {
        // Same geometry, different iterations: iteration 1's inner context
        // must still produce its own result.
        let context = ctx(&[(0, 0, 100), (1, 10, 20)]);
        let candidates = cands(&[(12, 18), (50, 60)]);
        assert_eq!(
            narrow_pairs(&context, &candidates),
            vec![(0, 1000), (0, 1001), (1, 1000)]
        );
    }

    #[test]
    fn iterations_are_independent() {
        let context = ctx(&[(0, 0, 10), (1, 20, 30)]);
        let candidates = cands(&[(2, 4), (22, 24)]);
        assert_eq!(
            narrow_pairs(&context, &candidates),
            vec![(0, 1000), (1, 1001)]
        );
        assert_eq!(
            wide_pairs(&context, &candidates),
            vec![(0, 1000), (1, 1001)]
        );
    }

    #[test]
    fn empty_inputs() {
        let context = ctx(&[(0, 0, 10)]);
        let candidates = cands(&[(0, 5)]);
        assert!(ll_select_narrow(&[], &candidates, false, None).is_empty());
        assert!(ll_select_narrow(&context, &[], false, None).is_empty());
        assert!(ll_select_wide(&[], &candidates).is_empty());
        assert!(ll_select_wide(&context, &[]).is_empty());
    }

    #[test]
    fn wide_keeps_long_straddling_context_alive() {
        // A context spanning far right must still match candidates that
        // appear after many shorter contexts have been trimmed.
        let context = ctx(&[(0, 0, 1000), (0, 5, 6), (0, 7, 8)]);
        let candidates = cands(&[(900, 950)]);
        assert_eq!(wide_pairs(&context, &candidates), vec![(0, 1000)]);
        assert_eq!(narrow_pairs(&context, &candidates), vec![(0, 1000)]);
    }

    #[test]
    fn wide_context_added_by_candidate_end() {
        // Candidate [0, 50] overlaps a context starting at 40 — the
        // context enters the active list because cand.end ≥ ctx.start,
        // even though cand.start < ctx.start.
        let context = ctx(&[(0, 40, 60)]);
        let candidates = cands(&[(0, 50), (0, 30)]);
        assert_eq!(wide_pairs(&context, &candidates), vec![(0, 1000)]);
    }

    #[test]
    fn basic_equals_loop_lifted_on_multi_iter_input() {
        let context = ctx(&[
            (0, 0, 50),
            (1, 10, 60),
            (2, 5, 25),
            (0, 40, 90),
            (1, 70, 80),
        ]);
        let candidates = cands(&[(0, 10), (15, 20), (41, 49), (71, 79), (95, 99)]);
        let mut a: Vec<(u32, u32)> = basic_select_narrow(&context, &candidates, false, None)
            .into_iter()
            .map(|e| (e.iter, candidates[e.cand_idx as usize].id))
            .collect();
        a.sort_unstable();
        a.dedup();
        assert_eq!(a, narrow_pairs(&context, &candidates));

        let mut w: Vec<(u32, u32)> = basic_select_wide(&context, &candidates)
            .into_iter()
            .map(|e| (e.iter, candidates[e.cand_idx as usize].id))
            .collect();
        w.sort_unstable();
        w.dedup();
        assert_eq!(w, wide_pairs(&context, &candidates));
    }

    /// Canonical finalize for comparing emission sets across variants.
    fn pairs(emissions: &[Emission], candidates: &[RegionEntry]) -> Vec<(u32, u32)> {
        let mut p: Vec<(u32, u32)> = emissions
            .iter()
            .map(|e| (e.iter, candidates[e.cand_idx as usize].id))
            .collect();
        p.sort_unstable();
        p.dedup();
        p
    }

    #[test]
    fn heap_variant_equals_list_variant() {
        let context = ctx(&[
            (0, 0, 100),
            (1, 5, 80),
            (0, 10, 20),
            (2, 15, 90),
            (1, 30, 40),
            (0, 50, 120),
        ]);
        let candidates = cands(&[(0, 5), (12, 18), (35, 38), (60, 70), (85, 130), (200, 210)]);
        assert_eq!(
            pairs(
                &ll_select_narrow(&context, &candidates, false, None),
                &candidates
            ),
            pairs(&ll_select_narrow_heap(&context, &candidates), &candidates)
        );
    }

    #[test]
    fn heap_variant_empty_inputs() {
        let context = ctx(&[(0, 0, 10)]);
        let candidates = cands(&[(0, 5)]);
        assert!(ll_select_narrow_heap(&[], &candidates).is_empty());
        assert!(ll_select_narrow_heap(&context, &[]).is_empty());
        assert_eq!(
            pairs(&ll_select_narrow_heap(&context, &candidates), &candidates),
            vec![(0, 1000)]
        );
    }

    #[test]
    fn identical_regions_contain_each_other() {
        let context = ctx(&[(0, 5, 10)]);
        let candidates = cands(&[(5, 10)]);
        assert_eq!(narrow_pairs(&context, &candidates), vec![(0, 1000)]);
        assert_eq!(wide_pairs(&context, &candidates), vec![(0, 1000)]);
    }
}
