//! The four StandOff joins and their evaluation strategies (paper §3–§4).
//!
//! All strategies implement the same semantics (§3.1):
//!
//! * `select-narrow(S1, S2)` — containment semi-join: annotations of `S2`
//!   contained in *some* annotation of `S1`;
//! * `select-wide(S1, S2)` — overlap semi-join;
//! * `reject-narrow(S1, S2)` — containment anti-join (complement of
//!   `select-narrow` within `S2`);
//! * `reject-wide(S1, S2)` — overlap anti-join.
//!
//! Like XPath steps, each returns a duplicate-free node sequence in
//! document order, per iteration of the enclosing for-loop scope.
//!
//! The strategies correspond to the paper's implementation alternatives:
//!
//! | [`StandoffStrategy`]     | Paper                                  | Cost shape |
//! |--------------------------|----------------------------------------|------------|
//! | `NaiveNoCandidates`      | §3.2 Alt. 1 (UDF over `root($q)//*`)   | O(|S1|·|doc|) per iteration |
//! | `NaiveWithCandidates`    | §3.2 Alt. 2 / Figure 3                 | O(|S1|·|S2|) per iteration |
//! | `BasicMergeJoin`         | §4.4                                   | one index scan **per iteration** |
//! | `LoopLiftedMergeJoin`    | §4.5 / Listing 1                       | one index scan **total** |

pub mod merge;
pub mod naive;
pub mod post;

use standoff_xml::Document;

use crate::index::{RegionEntry, RegionIndex};
use crate::trace::TraceSink;

/// The four StandOff joins, proposed as XPath axis steps (§3.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StandoffAxis {
    SelectNarrow,
    SelectWide,
    RejectNarrow,
    RejectWide,
}

impl StandoffAxis {
    pub const ALL: [StandoffAxis; 4] = [
        StandoffAxis::SelectNarrow,
        StandoffAxis::SelectWide,
        StandoffAxis::RejectNarrow,
        StandoffAxis::RejectWide,
    ];

    /// The axis-step name as it appears in queries.
    pub fn as_str(self) -> &'static str {
        match self {
            StandoffAxis::SelectNarrow => "select-narrow",
            StandoffAxis::SelectWide => "select-wide",
            StandoffAxis::RejectNarrow => "reject-narrow",
            StandoffAxis::RejectWide => "reject-wide",
        }
    }

    /// Parse an axis-step name.
    pub fn parse(s: &str) -> Option<StandoffAxis> {
        Some(match s {
            "select-narrow" => StandoffAxis::SelectNarrow,
            "select-wide" => StandoffAxis::SelectWide,
            "reject-narrow" => StandoffAxis::RejectNarrow,
            "reject-wide" => StandoffAxis::RejectWide,
            _ => return None,
        })
    }

    /// Is this a semi-join (`select-*`) rather than an anti-join?
    pub fn is_select(self) -> bool {
        matches!(self, StandoffAxis::SelectNarrow | StandoffAxis::SelectWide)
    }

    /// Does this axis use containment (`*-narrow`) rather than overlap?
    pub fn is_narrow(self) -> bool {
        matches!(
            self,
            StandoffAxis::SelectNarrow | StandoffAxis::RejectNarrow
        )
    }

    /// The select axis whose complement this reject axis is (identity for
    /// selects).
    pub fn select_counterpart(self) -> StandoffAxis {
        match self {
            StandoffAxis::RejectNarrow => StandoffAxis::SelectNarrow,
            StandoffAxis::RejectWide => StandoffAxis::SelectWide,
            s => s,
        }
    }
}

impl std::fmt::Display for StandoffAxis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Evaluation strategy for a StandOff join.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StandoffStrategy {
    /// Quadratic nested loop against *all* document elements — the
    /// XQuery-function baseline without a candidate sequence (Figure 2).
    NaiveNoCandidates,
    /// Quadratic nested loop against the candidate sequence (Figure 3).
    NaiveWithCandidates,
    /// Basic StandOff MergeJoin (§4.4): merge join per iteration —
    /// re-scans the candidate sequence once per for-loop iteration.
    BasicMergeJoin,
    /// Loop-lifted StandOff MergeJoin (§4.5, Listing 1): all iterations
    /// in a single scan.
    LoopLiftedMergeJoin,
}

impl StandoffStrategy {
    pub const ALL: [StandoffStrategy; 4] = [
        StandoffStrategy::NaiveNoCandidates,
        StandoffStrategy::NaiveWithCandidates,
        StandoffStrategy::BasicMergeJoin,
        StandoffStrategy::LoopLiftedMergeJoin,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            StandoffStrategy::NaiveNoCandidates => "naive",
            StandoffStrategy::NaiveWithCandidates => "naive-candidates",
            StandoffStrategy::BasicMergeJoin => "basic-mergejoin",
            StandoffStrategy::LoopLiftedMergeJoin => "loop-lifted-mergejoin",
        }
    }

    pub fn parse(s: &str) -> Option<StandoffStrategy> {
        Some(match s {
            "naive" => StandoffStrategy::NaiveNoCandidates,
            "naive-candidates" => StandoffStrategy::NaiveWithCandidates,
            "basic-mergejoin" | "basic" => StandoffStrategy::BasicMergeJoin,
            "loop-lifted-mergejoin" | "loop-lifted" | "ll" => StandoffStrategy::LoopLiftedMergeJoin,
            _ => return None,
        })
    }

    /// Cost-based strategy choice from corpus index statistics — the
    /// plan-time selection the query optimizer uses when no strategy is
    /// forced.
    ///
    /// Rationale (paper Figure 6): the naive nested loops are never
    /// asymptotically competitive, so auto-selection only chooses between
    /// the merge joins. For tiny region tables the loop-lifted variant's
    /// context-table set-up dominates the scan, so the per-iteration
    /// basic merge join wins; everywhere else — including the unknown
    /// case (`entries == 0`, nothing indexed yet) — the single-scan
    /// loop-lifted join is the safe choice.
    pub fn pick_for(stats: &crate::index::IndexStats) -> StandoffStrategy {
        const TINY_INDEX_ENTRIES: u64 = 256;
        if stats.entries > 0 && stats.entries <= TINY_INDEX_ENTRIES {
            StandoffStrategy::BasicMergeJoin
        } else {
            StandoffStrategy::LoopLiftedMergeJoin
        }
    }
}

impl std::fmt::Display for StandoffStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A `(iteration, node)` pair — the join's input and output unit. `node`
/// is a pre-order rank in the join's document fragment.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct IterNode {
    pub iter: u32,
    pub node: u32,
}

/// A context region row fed to the merge joins: the paper's
/// `iter|start|end` context table (§4.5) plus the annotation node id
/// needed for multi-region (∀∃) post-processing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CtxEntry {
    pub iter: u32,
    pub node: u32,
    pub start: i64,
    pub end: i64,
}

/// A raw match produced by a merge join before post-processing: candidate
/// entry `cand_idx` (an index into the candidate [`RegionEntry`] slice)
/// matched context annotation `ctx_node` in iteration `iter`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Emission {
    pub iter: u32,
    pub ctx_node: u32,
    pub cand_idx: u32,
}

/// Everything a StandOff join evaluation needs for one document fragment.
///
/// The paper first partitions the context sequence per XML fragment and
/// runs the join fragment-by-fragment (§4.4); the query engine performs
/// that partitioning and builds one `JoinInput` per fragment.
pub struct JoinInput<'a> {
    /// The *candidate-side* document: StandOff steps emit nodes of this
    /// fragment.
    pub doc: &'a Document,
    /// The candidate-side region index.
    pub index: &'a RegionIndex,
    /// Region index the *context* nodes' areas are looked up in. `None`
    /// means the context lives in the same fragment as the candidates
    /// (the classic single-document join). `Some` is the multi-layer
    /// case of `standoff-store`: context annotations from one layer
    /// joined against the candidate annotations of a sibling layer over
    /// the same BLOB — regions share the coordinate space, so the merge
    /// joins run unchanged.
    pub ctx_index: Option<&'a RegionIndex>,
    /// Context `(iter, node)` pairs, grouped by ascending iter, document
    /// order within each iteration. Node ids refer to the context
    /// fragment (which is `doc` unless `ctx_index` is set).
    pub context: &'a [IterNode],
    /// Candidate node pre ranks (ascending), produced by a pushed-down
    /// selection such as an element name test; `None` means "no
    /// restriction" — every annotation in the index is a candidate.
    pub candidates: Option<&'a [u32]>,
    /// All iterations of the scope, ascending. Required by the reject
    /// axes: an iteration whose context selects nothing must still reject
    /// *all* candidates.
    pub iter_domain: &'a [u32],
}

impl<'a> JoinInput<'a> {
    /// The index context-node areas are fetched from (see
    /// [`JoinInput::ctx_index`]).
    #[inline]
    pub fn context_index(&self) -> &'a RegionIndex {
        self.ctx_index.unwrap_or(self.index)
    }

    /// Fetch `[start,end]` rows for all context nodes and sort by start —
    /// the context-preparation step of §4.4. Context nodes that are not
    /// area-annotations contribute no rows.
    pub fn context_entries(&self) -> Vec<CtxEntry> {
        let ctx_index = self.context_index();
        let mut out = Vec::with_capacity(self.context.len());
        for &IterNode { iter, node } in self.context {
            for r in ctx_index.regions_of(node) {
                out.push(CtxEntry {
                    iter,
                    node,
                    start: r.start,
                    end: r.end,
                });
            }
        }
        out.sort_by_key(|c| (c.start, c.end, c.iter, c.node));
        out
    }

    /// The candidate region entries in start order: the full index, or
    /// its intersection with the candidate node sequence (§4.3).
    pub fn candidate_entries(&self) -> Vec<RegionEntry> {
        match self.candidates {
            None => self.index.entries().to_vec(),
            Some(nodes) => self.index.candidates_for(nodes),
        }
    }

    /// The distinct candidate *annotation* nodes, ascending — the universe
    /// the reject axes complement against.
    pub fn candidate_universe(&self) -> Vec<u32> {
        match self.candidates {
            None => self.index.annotated_nodes().to_vec(),
            Some(nodes) => nodes
                .iter()
                .copied()
                .filter(|&n| self.index.region_count(n) > 0)
                .collect(),
        }
    }
}

/// Evaluate a StandOff join on one document fragment.
///
/// Returns `(iter, node)` pairs sorted by `(iter, node)` — duplicate-free
/// and in document order per iteration, as required of an XPath step.
pub fn evaluate_standoff_join(
    axis: StandoffAxis,
    strategy: StandoffStrategy,
    input: &JoinInput<'_>,
    trace: Option<&mut dyn TraceSink>,
) -> Vec<IterNode> {
    // All four axes share one selection core; rejects complement it.
    let select_axis = axis.select_counterpart();
    let selected: Vec<IterNode> = match strategy {
        StandoffStrategy::NaiveNoCandidates => naive::naive_select(select_axis, input, false),
        StandoffStrategy::NaiveWithCandidates => naive::naive_select(select_axis, input, true),
        StandoffStrategy::BasicMergeJoin => {
            // §4.4/§4.6: the basic algorithm is invoked once per
            // iteration, and every invocation re-derives its candidate
            // sequence from the region index — the "repeated full scans
            // of the region index" that make XMark Q2 blow up.
            let ctx = input.context_entries();
            let per_annotation = select_axis.is_narrow() && input.index.max_regions() > 1;
            let mut iters: Vec<u32> = ctx.iter().map(|c| c.iter).collect();
            iters.sort_unstable();
            iters.dedup();
            let mut emissions: Vec<Emission> = Vec::new();
            let mut cands: Vec<crate::index::RegionEntry> = Vec::new();
            for &iter in &iters {
                cands = input.candidate_entries(); // re-scanned per iteration
                let single: Vec<CtxEntry> = ctx
                    .iter()
                    .filter(|c| c.iter == iter)
                    .map(|c| CtxEntry { iter: 0, ..*c })
                    .collect();
                let ems = match select_axis {
                    StandoffAxis::SelectNarrow => {
                        merge::ll_select_narrow(&single, &cands, per_annotation, None)
                    }
                    _ => merge::ll_select_wide(&single, &cands),
                };
                emissions.extend(ems.into_iter().map(|e| Emission { iter, ..e }));
            }
            emissions.sort_unstable();
            post::finalize_select(select_axis, &emissions, &cands, input.index)
        }
        StandoffStrategy::LoopLiftedMergeJoin => {
            let ctx = input.context_entries();
            let cands = input.candidate_entries();
            // Multi-region containment (∀∃) must attribute every match to
            // a specific context annotation; see merge.rs.
            let per_annotation = select_axis.is_narrow() && input.index.max_regions() > 1;
            let emissions = match select_axis {
                StandoffAxis::SelectNarrow => {
                    merge::ll_select_narrow(&ctx, &cands, per_annotation, trace)
                }
                _ => merge::ll_select_wide(&ctx, &cands),
            };
            post::finalize_select(select_axis, &emissions, &cands, input.index)
        }
    };
    if axis.is_select() {
        selected
    } else {
        post::complement(&selected, &input.candidate_universe(), input.iter_domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_names_round_trip() {
        for axis in StandoffAxis::ALL {
            assert_eq!(StandoffAxis::parse(axis.as_str()), Some(axis));
        }
        assert_eq!(StandoffAxis::parse("descendant"), None);
    }

    #[test]
    fn strategy_names_round_trip() {
        for s in StandoffStrategy::ALL {
            assert_eq!(StandoffStrategy::parse(s.as_str()), Some(s));
        }
        assert_eq!(
            StandoffStrategy::parse("ll"),
            Some(StandoffStrategy::LoopLiftedMergeJoin)
        );
    }

    #[test]
    fn axis_classification() {
        use StandoffAxis::*;
        assert!(SelectNarrow.is_select() && SelectNarrow.is_narrow());
        assert!(SelectWide.is_select() && !SelectWide.is_narrow());
        assert!(!RejectNarrow.is_select() && RejectNarrow.is_narrow());
        assert!(!RejectWide.is_select() && !RejectWide.is_narrow());
        assert_eq!(RejectWide.select_counterpart(), SelectWide);
        assert_eq!(SelectNarrow.select_counterpart(), SelectNarrow);
    }
}
