//! The four StandOff joins and their evaluation strategies (paper §3–§4).
//!
//! All strategies implement the same semantics (§3.1):
//!
//! * `select-narrow(S1, S2)` — containment semi-join: annotations of `S2`
//!   contained in *some* annotation of `S1`;
//! * `select-wide(S1, S2)` — overlap semi-join;
//! * `reject-narrow(S1, S2)` — containment anti-join (complement of
//!   `select-narrow` within `S2`);
//! * `reject-wide(S1, S2)` — overlap anti-join.
//!
//! Like XPath steps, each returns a duplicate-free node sequence in
//! document order, per iteration of the enclosing for-loop scope.
//!
//! The strategies correspond to the paper's implementation alternatives:
//!
//! | [`StandoffStrategy`]     | Paper                                  | Cost shape |
//! |--------------------------|----------------------------------------|------------|
//! | `NaiveNoCandidates`      | §3.2 Alt. 1 (UDF over `root($q)//*`)   | O(|S1|·|doc|) per iteration |
//! | `NaiveWithCandidates`    | §3.2 Alt. 2 / Figure 3                 | O(|S1|·|S2|) per iteration |
//! | `BasicMergeJoin`         | §4.4                                   | one index scan **per iteration** |
//! | `LoopLiftedMergeJoin`    | §4.5 / Listing 1                       | one index scan **total** |

pub mod merge;
pub mod naive;
pub mod post;

use standoff_xml::Document;

use crate::index::RegionEntry;
use crate::source::RegionSource;
use crate::trace::TraceSink;

/// The four StandOff joins, proposed as XPath axis steps (§3.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StandoffAxis {
    SelectNarrow,
    SelectWide,
    RejectNarrow,
    RejectWide,
}

impl StandoffAxis {
    pub const ALL: [StandoffAxis; 4] = [
        StandoffAxis::SelectNarrow,
        StandoffAxis::SelectWide,
        StandoffAxis::RejectNarrow,
        StandoffAxis::RejectWide,
    ];

    /// The axis-step name as it appears in queries.
    pub fn as_str(self) -> &'static str {
        match self {
            StandoffAxis::SelectNarrow => "select-narrow",
            StandoffAxis::SelectWide => "select-wide",
            StandoffAxis::RejectNarrow => "reject-narrow",
            StandoffAxis::RejectWide => "reject-wide",
        }
    }

    /// Parse an axis-step name.
    pub fn parse(s: &str) -> Option<StandoffAxis> {
        Some(match s {
            "select-narrow" => StandoffAxis::SelectNarrow,
            "select-wide" => StandoffAxis::SelectWide,
            "reject-narrow" => StandoffAxis::RejectNarrow,
            "reject-wide" => StandoffAxis::RejectWide,
            _ => return None,
        })
    }

    /// Is this a semi-join (`select-*`) rather than an anti-join?
    pub fn is_select(self) -> bool {
        matches!(self, StandoffAxis::SelectNarrow | StandoffAxis::SelectWide)
    }

    /// Does this axis use containment (`*-narrow`) rather than overlap?
    pub fn is_narrow(self) -> bool {
        matches!(
            self,
            StandoffAxis::SelectNarrow | StandoffAxis::RejectNarrow
        )
    }

    /// The select axis whose complement this reject axis is (identity for
    /// selects).
    pub fn select_counterpart(self) -> StandoffAxis {
        match self {
            StandoffAxis::RejectNarrow => StandoffAxis::SelectNarrow,
            StandoffAxis::RejectWide => StandoffAxis::SelectWide,
            s => s,
        }
    }
}

impl std::fmt::Display for StandoffAxis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Evaluation strategy for a StandOff join.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StandoffStrategy {
    /// Quadratic nested loop against *all* document elements — the
    /// XQuery-function baseline without a candidate sequence (Figure 2).
    NaiveNoCandidates,
    /// Quadratic nested loop against the candidate sequence (Figure 3).
    NaiveWithCandidates,
    /// Basic StandOff MergeJoin (§4.4): merge join per iteration —
    /// re-scans the candidate sequence once per for-loop iteration.
    BasicMergeJoin,
    /// Loop-lifted StandOff MergeJoin (§4.5, Listing 1): all iterations
    /// in a single scan.
    LoopLiftedMergeJoin,
}

impl StandoffStrategy {
    pub const ALL: [StandoffStrategy; 4] = [
        StandoffStrategy::NaiveNoCandidates,
        StandoffStrategy::NaiveWithCandidates,
        StandoffStrategy::BasicMergeJoin,
        StandoffStrategy::LoopLiftedMergeJoin,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            StandoffStrategy::NaiveNoCandidates => "naive",
            StandoffStrategy::NaiveWithCandidates => "naive-candidates",
            StandoffStrategy::BasicMergeJoin => "basic-mergejoin",
            StandoffStrategy::LoopLiftedMergeJoin => "loop-lifted-mergejoin",
        }
    }

    pub fn parse(s: &str) -> Option<StandoffStrategy> {
        Some(match s {
            "naive" => StandoffStrategy::NaiveNoCandidates,
            "naive-candidates" => StandoffStrategy::NaiveWithCandidates,
            "basic-mergejoin" | "basic" => StandoffStrategy::BasicMergeJoin,
            "loop-lifted-mergejoin" | "loop-lifted" | "ll" => StandoffStrategy::LoopLiftedMergeJoin,
            _ => return None,
        })
    }

    /// Cost-based strategy choice from corpus index statistics — the
    /// plan-time selection the query optimizer uses when no strategy is
    /// forced.
    ///
    /// Rationale (paper Figure 6): the naive nested loops are never
    /// asymptotically competitive, so auto-selection only chooses between
    /// the merge joins. For tiny region tables the loop-lifted variant's
    /// context-table set-up dominates the scan, so the per-iteration
    /// basic merge join wins; everywhere else — including the unknown
    /// case (`entries == 0`, nothing indexed yet) — the single-scan
    /// loop-lifted join is the safe choice.
    pub fn pick_for(stats: &crate::index::IndexStats) -> StandoffStrategy {
        const TINY_INDEX_ENTRIES: u64 = 256;
        if stats.entries > 0 && stats.entries <= TINY_INDEX_ENTRIES {
            StandoffStrategy::BasicMergeJoin
        } else {
            StandoffStrategy::LoopLiftedMergeJoin
        }
    }
}

impl std::fmt::Display for StandoffStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A `(iteration, node)` pair — the join's input and output unit. `node`
/// is a pre-order rank in the join's document fragment.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct IterNode {
    pub iter: u32,
    pub node: u32,
}

/// A context region row fed to the merge joins: the paper's
/// `iter|start|end` context table (§4.5) plus the annotation node id
/// needed for multi-region (∀∃) post-processing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CtxEntry {
    pub iter: u32,
    pub node: u32,
    pub start: i64,
    pub end: i64,
}

/// A raw match produced by a merge join before post-processing: candidate
/// entry `cand_idx` (an index into the candidate [`RegionEntry`] slice)
/// matched context annotation `ctx_node` in iteration `iter`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Emission {
    pub iter: u32,
    pub ctx_node: u32,
    pub cand_idx: u32,
}

/// Everything a StandOff join evaluation needs for one document fragment.
///
/// The paper first partitions the context sequence per XML fragment and
/// runs the join fragment-by-fragment (§4.4); the query engine performs
/// that partitioning and builds one `JoinInput` per fragment.
pub struct JoinInput<'a> {
    /// The *candidate-side* document: StandOff steps emit nodes of this
    /// fragment.
    pub doc: &'a Document,
    /// The candidate-side region source (a [`RegionIndex`]
    /// plus any overlay retractions, presented as one merged stream).
    ///
    /// [`RegionIndex`]: crate::index::RegionIndex
    pub index: RegionSource<'a>,
    /// Region source the *context* nodes' areas are looked up in. `None`
    /// means the context lives in the same fragment as the candidates
    /// (the classic single-document join). `Some` is the multi-layer
    /// case of `standoff-store`: context annotations from one layer
    /// joined against the candidate annotations of a sibling layer over
    /// the same BLOB — regions share the coordinate space, so the merge
    /// joins run unchanged.
    pub ctx_index: Option<RegionSource<'a>>,
    /// Context `(iter, node)` pairs, grouped by ascending iter, document
    /// order within each iteration. Node ids refer to the context
    /// fragment (which is `doc` unless `ctx_index` is set).
    pub context: &'a [IterNode],
    /// Candidate node pre ranks (ascending), produced by a pushed-down
    /// selection such as an element name test; `None` means "no
    /// restriction" — every annotation in the index is a candidate.
    pub candidates: Option<&'a [u32]>,
    /// All iterations of the scope, ascending. Required by the reject
    /// axes: an iteration whose context selects nothing must still reject
    /// *all* candidates.
    pub iter_domain: &'a [u32],
}

impl<'a> JoinInput<'a> {
    /// The source context-node areas are fetched from (see
    /// [`JoinInput::ctx_index`]).
    #[inline]
    pub fn context_index(&self) -> RegionSource<'a> {
        self.ctx_index.unwrap_or(self.index)
    }

    /// Fetch `[start,end]` rows for all context nodes and sort by start —
    /// the context-preparation step of §4.4. Context nodes that are not
    /// area-annotations contribute no rows.
    pub fn context_entries(&self) -> Vec<CtxEntry> {
        let mut out = Vec::new();
        self.context_entries_into(&mut out);
        out
    }

    /// [`JoinInput::context_entries`] into a reusable buffer (cleared
    /// first). The overlay retraction check is hoisted out of the
    /// per-node loop: the pure-snapshot branch fetches regions straight
    /// off the index, so it compiles to the pre-overlay code.
    pub fn context_entries_into(&self, out: &mut Vec<CtxEntry>) {
        out.clear();
        out.reserve(self.context.len());
        let ctx_index = self.context_index();
        if ctx_index.is_pure() {
            let index = ctx_index.index();
            for &IterNode { iter, node } in self.context {
                for r in index.regions_of(node) {
                    out.push(CtxEntry {
                        iter,
                        node,
                        start: r.start,
                        end: r.end,
                    });
                }
            }
        } else {
            for &IterNode { iter, node } in self.context {
                for r in ctx_index.regions_of(node) {
                    out.push(CtxEntry {
                        iter,
                        node,
                        start: r.start,
                        end: r.end,
                    });
                }
            }
        }
        out.sort_by_key(|c| (c.start, c.end, c.iter, c.node));
    }

    /// The candidate region entries in start order: the full visible
    /// stream, or its intersection with the candidate node sequence
    /// (§4.3).
    pub fn candidate_entries(&self) -> Vec<RegionEntry> {
        let mut out = Vec::new();
        match self.candidates {
            None => out.extend_from_slice(self.index.entries_in(&mut Vec::new())),
            Some(nodes) => self.index.candidates_into(nodes, &mut out),
        }
        out
    }

    /// Borrowing form of [`JoinInput::candidate_entries`]: without a
    /// candidate restriction a pure source's own entry table is returned
    /// as-is — no copy of the full index per operator — and otherwise the
    /// visible stream is materialized into `scratch`.
    pub fn candidate_entries_in<'s>(
        &'s self,
        scratch: &'s mut Vec<RegionEntry>,
    ) -> &'s [RegionEntry]
    where
        'a: 's,
    {
        match self.candidates {
            None => self.index.entries_in(scratch),
            Some(nodes) => {
                self.index.candidates_into(nodes, scratch);
                scratch
            }
        }
    }

    /// [`JoinInput::candidate_entries_in`] through caller-owned kernel
    /// scratch: the representation-adaptive (sparse list vs dense
    /// bitset), morsel-parallel scan path with persistent counters — the
    /// form the executor's hot path uses.
    pub fn candidate_entries_with<'s>(
        &'s self,
        kernel: &mut crate::index::CandidateScratch,
        buf: &'s mut Vec<RegionEntry>,
    ) -> &'s [RegionEntry]
    where
        'a: 's,
    {
        match self.candidates {
            None => self.index.entries_in(buf),
            Some(nodes) => {
                self.index.candidates_into_with(nodes, kernel, buf);
                buf
            }
        }
    }

    /// The distinct candidate *annotation* nodes, ascending — the universe
    /// the reject axes complement against.
    pub fn candidate_universe(&self) -> Vec<u32> {
        let mut out = Vec::new();
        out.extend_from_slice(self.candidate_universe_in(&mut Vec::new()));
        out
    }

    /// Borrowing form of [`JoinInput::candidate_universe`]: no candidate
    /// restriction returns a pure source's annotated-node column directly.
    pub fn candidate_universe_in<'s>(&'s self, scratch: &'s mut Vec<u32>) -> &'s [u32]
    where
        'a: 's,
    {
        match self.candidates {
            None => self.index.annotated_nodes_in(scratch),
            Some(nodes) => {
                scratch.clear();
                scratch.extend(
                    nodes
                        .iter()
                        .copied()
                        .filter(|&n| self.index.region_count(n) > 0),
                );
                scratch
            }
        }
    }
}

/// Reusable buffer set for the StandOff join hot path: context and
/// candidate materializations, raw emissions, and the merge kernels'
/// active lists. Owned by the long-lived executor (the query engine's
/// session) so one allocation set serves every operator of every query
/// it runs; a fresh default works identically, just colder.
#[derive(Debug, Default)]
pub struct JoinScratch {
    ctx: Vec<CtxEntry>,
    cands: Vec<RegionEntry>,
    emissions: Vec<Emission>,
    iters: Vec<u32>,
    single: Vec<CtxEntry>,
    universe: Vec<u32>,
    merge: merge::MergeScratch,
    /// Candidate-kernel state: dense bitset, morsel policy, counters.
    kernel: crate::index::CandidateScratch,
}

impl JoinScratch {
    /// Set the intra-query parallelism budget for candidate scans (the
    /// executor threads this through from its engine options; 1 keeps
    /// every scan sequential).
    pub fn set_morsel_threads(&mut self, threads: usize) {
        self.kernel.policy.threads = threads.max(1);
    }

    /// Install (or clear) the governance handle polled by the scan and
    /// merge kernels. The engine sets this per query; `None` restores
    /// the ungoverned fast path (a hoisted null test per loop round).
    pub fn set_budget(&mut self, budget: Option<crate::budget::Budget>) {
        self.kernel.budget = budget.clone();
        self.merge.budget = budget;
    }

    /// Approximate bytes pinned by the join buffers — the number charged
    /// against a query's scratch-memory cap after each join. Capacities,
    /// not lengths: what the allocator actually holds.
    pub fn approx_bytes(&self) -> u64 {
        (self.ctx.capacity() * std::mem::size_of::<CtxEntry>()
            + self.cands.capacity() * std::mem::size_of::<RegionEntry>()
            + self.emissions.capacity() * std::mem::size_of::<Emission>()
            + self.single.capacity() * std::mem::size_of::<CtxEntry>()
            + (self.iters.capacity() + self.universe.capacity()) * std::mem::size_of::<u32>())
            as u64
    }

    /// Take the kernel counters accumulated since the last take
    /// (representation choices, dense blocks, morsels dispatched),
    /// leaving zeros behind.
    pub fn take_kernel_stats(&mut self) -> crate::index::KernelStats {
        self.kernel.stats.take()
    }
}

impl Clone for JoinScratch {
    /// Scratch state is semantically empty between joins; cloning (e.g.
    /// when a session is stamped out from a shared engine) starts the
    /// clone cold instead of copying dead buffer contents — except the
    /// morsel policy, which is configuration, not scratch.
    fn clone(&self) -> Self {
        let mut fresh = JoinScratch::default();
        fresh.kernel.policy = self.kernel.policy;
        fresh
    }
}

/// Evaluate a StandOff join on one document fragment.
///
/// Returns `(iter, node)` pairs sorted by `(iter, node)` — duplicate-free
/// and in document order per iteration, as required of an XPath step.
pub fn evaluate_standoff_join(
    axis: StandoffAxis,
    strategy: StandoffStrategy,
    input: &JoinInput<'_>,
    trace: Option<&mut dyn TraceSink>,
) -> Vec<IterNode> {
    evaluate_standoff_join_with(axis, strategy, input, trace, &mut JoinScratch::default())
}

/// [`evaluate_standoff_join`] with a caller-owned [`JoinScratch`], so a
/// long-lived executor reuses the context/candidate/emission buffers and
/// the merge kernels' active lists across operators and queries.
pub fn evaluate_standoff_join_with(
    axis: StandoffAxis,
    strategy: StandoffStrategy,
    input: &JoinInput<'_>,
    trace: Option<&mut dyn TraceSink>,
    scratch: &mut JoinScratch,
) -> Vec<IterNode> {
    // All four axes share one selection core; rejects complement it.
    let select_axis = axis.select_counterpart();
    let budget = scratch.kernel.budget.clone();
    let selected: Vec<IterNode> = match strategy {
        StandoffStrategy::NaiveNoCandidates => {
            naive::naive_select(select_axis, input, false, budget.as_ref())
        }
        StandoffStrategy::NaiveWithCandidates => {
            naive::naive_select(select_axis, input, true, budget.as_ref())
        }
        StandoffStrategy::BasicMergeJoin => {
            // §4.4/§4.6: the basic algorithm is invoked once per
            // iteration, and every invocation re-derives its candidate
            // sequence from the region index — the "repeated full scans
            // of the region index" that make XMark Q2 blow up.
            input.context_entries_into(&mut scratch.ctx);
            let per_annotation = select_axis.is_narrow() && input.index.max_regions() > 1;
            scratch.iters.clear();
            scratch.iters.extend(scratch.ctx.iter().map(|c| c.iter));
            scratch.iters.sort_unstable();
            scratch.iters.dedup();
            scratch.emissions.clear();
            for &iter in &scratch.iters {
                // Per-iteration chokepoint: the basic strategy's repeated
                // scans are exactly where a deadline must be able to cut
                // in between kernel invocations.
                if budget.as_ref().is_some_and(|b| b.check().is_err()) {
                    break;
                }
                // Re-derived per iteration — the strategy's modeled cost.
                let cands = input.candidate_entries_with(&mut scratch.kernel, &mut scratch.cands);
                scratch.single.clear();
                scratch.single.extend(
                    scratch
                        .ctx
                        .iter()
                        .filter(|c| c.iter == iter)
                        .map(|c| CtxEntry { iter: 0, ..*c }),
                );
                let from = scratch.emissions.len();
                match select_axis {
                    StandoffAxis::SelectNarrow => merge::ll_select_narrow_into(
                        &scratch.single,
                        cands,
                        per_annotation,
                        None,
                        &mut scratch.merge,
                        &mut scratch.emissions,
                    ),
                    _ => merge::ll_select_wide_into(
                        &scratch.single,
                        cands,
                        &mut scratch.merge,
                        &mut scratch.emissions,
                    ),
                }
                for e in &mut scratch.emissions[from..] {
                    e.iter = iter;
                }
            }
            let cands = input.candidate_entries_with(&mut scratch.kernel, &mut scratch.cands);
            post::finalize_select(select_axis, &scratch.emissions, cands, input.index)
        }
        StandoffStrategy::LoopLiftedMergeJoin => {
            input.context_entries_into(&mut scratch.ctx);
            let cands = input.candidate_entries_with(&mut scratch.kernel, &mut scratch.cands);
            // Multi-region containment (∀∃) must attribute every match to
            // a specific context annotation; see merge.rs.
            let per_annotation = select_axis.is_narrow() && input.index.max_regions() > 1;
            scratch.emissions.clear();
            match select_axis {
                StandoffAxis::SelectNarrow => merge::ll_select_narrow_into(
                    &scratch.ctx,
                    cands,
                    per_annotation,
                    trace,
                    &mut scratch.merge,
                    &mut scratch.emissions,
                ),
                _ => merge::ll_select_wide_into(
                    &scratch.ctx,
                    cands,
                    &mut scratch.merge,
                    &mut scratch.emissions,
                ),
            }
            post::finalize_select(select_axis, &scratch.emissions, cands, input.index)
        }
    };
    // The merge kernels count their branch-free emission blocks in the
    // merge scratch; fold them into the per-join kernel counters so
    // `join_stats()` reports one `candidate_dense_blocks` total.
    scratch.kernel.stats.dense_blocks += scratch.merge.take_blocks();
    // Charge what the join buffers now pin against any scratch-memory
    // cap. A trip is recorded in the budget flag; the evaluator's next
    // check surfaces it, so the partial result below is never emitted.
    if let Some(b) = &budget {
        let _ = b.note_scratch(scratch.approx_bytes());
    }
    if axis.is_select() {
        selected
    } else {
        let universe = input.candidate_universe_in(&mut scratch.universe);
        post::complement(&selected, universe, input.iter_domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_names_round_trip() {
        for axis in StandoffAxis::ALL {
            assert_eq!(StandoffAxis::parse(axis.as_str()), Some(axis));
        }
        assert_eq!(StandoffAxis::parse("descendant"), None);
    }

    #[test]
    fn strategy_names_round_trip() {
        for s in StandoffStrategy::ALL {
            assert_eq!(StandoffStrategy::parse(s.as_str()), Some(s));
        }
        assert_eq!(
            StandoffStrategy::parse("ll"),
            Some(StandoffStrategy::LoopLiftedMergeJoin)
        );
    }

    #[test]
    fn axis_classification() {
        use StandoffAxis::*;
        assert!(SelectNarrow.is_select() && SelectNarrow.is_narrow());
        assert!(SelectWide.is_select() && !SelectWide.is_narrow());
        assert!(!RejectNarrow.is_select() && RejectNarrow.is_narrow());
        assert!(!RejectWide.is_select() && !RejectWide.is_narrow());
        assert_eq!(RejectWide.select_counterpart(), SelectWide);
        assert_eq!(SelectNarrow.select_counterpart(), SelectNarrow);
    }
}
