//! Post-processing of merge-join emissions (paper §4.5, "some
//! post-processing (omitted) occurs that maps these into node-ids, unique
//! and in document order per iter").
//!
//! * In the single-region (attribute) mode, a region match *is* an
//!   annotation match: map entries to node ids, deduplicate, sort.
//! * In the multi-region (element) mode, `select-narrow`'s ∀∃ semantics
//!   require every region of a candidate annotation to be contained in
//!   the *same* context annotation: group emissions by
//!   `(iter, context annotation, candidate annotation)` and check that
//!   all candidate regions were matched. (`select-wide` stays ∃∃ — any
//!   region match selects the annotation.)
//! * The reject axes are complements of their select counterparts over
//!   the candidate universe, computed per iteration of the scope.

use crate::index::RegionEntry;
use crate::join::{Emission, IterNode, StandoffAxis};
use crate::source::RegionSource;

/// Turn raw emissions into the select-join result: `(iter, node)` pairs,
/// sorted and duplicate-free (document order per iteration).
///
/// `index` is the candidate-side region source; the candidate entries
/// were drawn from its visible stream, so every referenced annotation is
/// un-retracted and its full region set is available for the ∀∃ check.
pub fn finalize_select(
    axis: StandoffAxis,
    emissions: &[Emission],
    candidates: &[RegionEntry],
    index: RegionSource<'_>,
) -> Vec<IterNode> {
    debug_assert!(axis.is_select());
    // Fast path: every annotation is a single region (always true in the
    // attribute representation), or overlap semantics (∃∃) — any region
    // match selects its annotation.
    if index.max_regions() <= 1 || axis == StandoffAxis::SelectWide {
        let mut out: Vec<IterNode> = emissions
            .iter()
            .map(|e| IterNode {
                iter: e.iter,
                node: candidates[e.cand_idx as usize].id,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        return out;
    }

    // Multi-region containment: a candidate annotation is selected in an
    // iteration iff SOME context annotation contains ALL of its regions.
    // Key each emission by (iter, ctx annotation, cand annotation, region
    // ordinal), deduplicate, then count ordinals per key prefix.
    let mut keyed: Vec<(u32, u32, u32, u32)> = emissions
        .iter()
        .map(|e| {
            let entry = candidates[e.cand_idx as usize];
            let ordinal = index
                .regions_of(entry.id)
                .binary_search_by_key(&(entry.start, entry.end), |r| (r.start, r.end))
                .expect("candidate entry comes from the index") as u32;
            (e.iter, e.ctx_node, entry.id, ordinal)
        })
        .collect();
    keyed.sort_unstable();
    keyed.dedup();

    let mut out: Vec<IterNode> = Vec::new();
    let mut k = 0;
    while k < keyed.len() {
        let (iter, ctx, cand, _) = keyed[k];
        let mut run = k;
        while run < keyed.len() {
            let (i2, c2, n2, _) = keyed[run];
            if (i2, c2, n2) != (iter, ctx, cand) {
                break;
            }
            run += 1;
        }
        if run - k == index.region_count(cand) {
            out.push(IterNode { iter, node: cand });
        }
        k = run;
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Complement a select result against the candidate universe, per
/// iteration of the scope: the reject axes. `selected` must be sorted;
/// `universe` ascending node ids; `iter_domain` ascending iterations.
pub fn complement(selected: &[IterNode], universe: &[u32], iter_domain: &[u32]) -> Vec<IterNode> {
    debug_assert!(selected.windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(universe.windows(2).all(|w| w[0] < w[1]));
    let mut out = Vec::new();
    for &iter in iter_domain {
        let lo = selected.partition_point(|e| e.iter < iter);
        let hi = selected.partition_point(|e| e.iter <= iter);
        let taken = &selected[lo..hi];
        // Merge-difference: both sides ascending.
        let mut t = 0;
        for &node in universe {
            while t < taken.len() && taken[t].node < node {
                t += 1;
            }
            if t < taken.len() && taken[t].node == node {
                continue;
            }
            out.push(IterNode { iter, node });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::RegionIndex;
    use crate::region::Area;

    fn entry(start: i64, end: i64, id: u32) -> RegionEntry {
        RegionEntry { start, end, id }
    }

    #[test]
    fn single_region_select_dedups_and_sorts() {
        let index = RegionIndex::from_areas(&[
            (5, Area::single(0, 10).unwrap()),
            (9, Area::single(20, 30).unwrap()),
        ]);
        let cands = vec![entry(0, 10, 5), entry(20, 30, 9)];
        let emissions = vec![
            Emission {
                iter: 1,
                ctx_node: 2,
                cand_idx: 1,
            },
            Emission {
                iter: 0,
                ctx_node: 2,
                cand_idx: 0,
            },
            Emission {
                iter: 0,
                ctx_node: 3,
                cand_idx: 0,
            }, // duplicate via other ctx
        ];
        let out = finalize_select(
            StandoffAxis::SelectNarrow,
            &emissions,
            &cands,
            (&index).into(),
        );
        assert_eq!(
            out,
            vec![IterNode { iter: 0, node: 5 }, IterNode { iter: 1, node: 9 }]
        );
    }

    #[test]
    fn multi_region_narrow_requires_all_regions_in_same_context() {
        // Candidate annotation 7 has two regions.
        let index = RegionIndex::from_areas(&[(
            7,
            Area::try_new(vec![
                crate::region::Region::new(0, 10).unwrap(),
                crate::region::Region::new(20, 30).unwrap(),
            ])
            .unwrap(),
        )]);
        let cands = vec![entry(0, 10, 7), entry(20, 30, 7)];

        // Context annotation 100 contains both regions → selected.
        let both = vec![
            Emission {
                iter: 0,
                ctx_node: 100,
                cand_idx: 0,
            },
            Emission {
                iter: 0,
                ctx_node: 100,
                cand_idx: 1,
            },
        ];
        assert_eq!(
            finalize_select(StandoffAxis::SelectNarrow, &both, &cands, (&index).into()),
            vec![IterNode { iter: 0, node: 7 }]
        );

        // Two different contexts each contain one region → NOT selected
        // (∃a1 must contain all regions of a2).
        let split = vec![
            Emission {
                iter: 0,
                ctx_node: 100,
                cand_idx: 0,
            },
            Emission {
                iter: 0,
                ctx_node: 200,
                cand_idx: 1,
            },
        ];
        assert!(
            finalize_select(StandoffAxis::SelectNarrow, &split, &cands, (&index).into()).is_empty()
        );

        // Wide stays ∃∃: one region match suffices.
        let one = vec![Emission {
            iter: 0,
            ctx_node: 100,
            cand_idx: 1,
        }];
        assert_eq!(
            finalize_select(StandoffAxis::SelectWide, &one, &cands, (&index).into()),
            vec![IterNode { iter: 0, node: 7 }]
        );
    }

    #[test]
    fn complement_per_iteration() {
        let selected = vec![IterNode { iter: 0, node: 2 }, IterNode { iter: 2, node: 4 }];
        let out = complement(&selected, &[2, 4, 6], &[0, 1, 2]);
        assert_eq!(
            out,
            vec![
                IterNode { iter: 0, node: 4 },
                IterNode { iter: 0, node: 6 },
                IterNode { iter: 1, node: 2 },
                IterNode { iter: 1, node: 4 },
                IterNode { iter: 1, node: 6 },
                IterNode { iter: 2, node: 2 },
                IterNode { iter: 2, node: 6 },
            ]
        );
    }

    #[test]
    fn complement_of_everything_is_empty() {
        let selected = vec![IterNode { iter: 0, node: 1 }, IterNode { iter: 0, node: 2 }];
        assert!(complement(&selected, &[1, 2], &[0]).is_empty());
    }

    #[test]
    fn complement_with_empty_selection_returns_universe() {
        let out = complement(&[], &[1, 2], &[5]);
        assert_eq!(
            out,
            vec![IterNode { iter: 5, node: 1 }, IterNode { iter: 5, node: 2 }]
        );
    }
}
