//! The configurable StandOff representation (paper §2).
//!
//! Applications choose how regions attach to annotation elements:
//!
//! * **attribute representation** (default) — compact, one region:
//!   `<foo start="1" end="10"/>`;
//! * **element representation** — supports non-contiguous areas:
//!   `<foo><region><start>1</start><end>2</end></region>…</foo>`.
//!
//! The names `start`, `end` and `region`, and the position type, are
//! run-time settings configured in the query preamble:
//!
//! ```xquery
//! declare option standoff-type   "xs:integer"
//! declare option standoff-start  "from"
//! declare option standoff-end    "to"
//! declare option standoff-region "span"   (: switches to element repr :)
//! ```

use standoff_xml::{Document, NodeKind};

use crate::error::StandoffError;
use crate::region::{Area, Region};

/// Which syntactic representation carries the regions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegionRepr {
    /// `start`/`end` attributes on the annotation element (single region).
    Attributes,
    /// `<region>` child elements (one or more regions per annotation).
    Elements,
}

/// The `declare option standoff-*` settings of a query.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct StandoffConfig {
    /// `standoff-type`: position datatype. Only integer types are
    /// machine-representable in this implementation (the paper's
    /// implementation makes the same choice: 64-bit integers cover file
    /// offsets, word positions and time codes).
    pub position_type: String,
    /// `standoff-start`: attribute name (attribute repr) or element name
    /// (element repr) of the region start.
    pub start_name: String,
    /// `standoff-end`: likewise for the region end.
    pub end_name: String,
    /// `standoff-region`: if set, the element representation is used and
    /// this is the region element's name.
    pub region_name: Option<String>,
    /// Skip malformed annotations instead of failing the whole index
    /// build. Off by default: annotation databases are machine-generated,
    /// and silent data loss is worse than a load error.
    pub lenient: bool,
}

impl Default for StandoffConfig {
    /// The paper's defaults: `xs:integer`, `start`, `end`, attribute
    /// representation.
    fn default() -> Self {
        StandoffConfig {
            position_type: "xs:integer".to_string(),
            start_name: "start".to_string(),
            end_name: "end".to_string(),
            region_name: None,
            lenient: false,
        }
    }
}

impl StandoffConfig {
    /// Element representation with the default names
    /// (`region`/`start`/`end`).
    pub fn element_repr() -> Self {
        StandoffConfig {
            region_name: Some("region".to_string()),
            ..Default::default()
        }
    }

    /// Which representation is active.
    pub fn repr(&self) -> RegionRepr {
        if self.region_name.is_some() {
            RegionRepr::Elements
        } else {
            RegionRepr::Attributes
        }
    }

    /// Validate the configured position type.
    pub fn validate(&self) -> Result<(), StandoffError> {
        match self.position_type.as_str() {
            "xs:integer" | "xs:int" | "xs:long" | "integer" => Ok(()),
            other => Err(StandoffError::UnsupportedType(other.to_string())),
        }
    }

    /// Extract the area of the element at `pre`, if it is an
    /// area-annotation under this configuration. `Ok(None)` means "not an
    /// area-annotation" (no region markup at all); malformed region markup
    /// is an error unless `lenient`.
    pub fn area_of(&self, doc: &Document, pre: u32) -> Result<Option<Area>, StandoffError> {
        if doc.kind(pre) != NodeKind::Element {
            return Ok(None);
        }
        let result = match self.repr() {
            RegionRepr::Attributes => self.area_from_attributes(doc, pre),
            RegionRepr::Elements => self.area_from_elements(doc, pre),
        };
        match result {
            Err(_) if self.lenient => Ok(None),
            other => other,
        }
    }

    fn area_from_attributes(
        &self,
        doc: &Document,
        pre: u32,
    ) -> Result<Option<Area>, StandoffError> {
        let start = doc.attribute(pre, &self.start_name);
        let end = doc.attribute(pre, &self.end_name);
        match (start, end) {
            (None, None) => Ok(None),
            (Some(s), Some(e)) => {
                let context = || {
                    format!(
                        "<{}> at pre {pre}",
                        doc.node_name(standoff_xml::NodeId::tree(pre))
                    )
                };
                let start = parse_position(s, &context)?;
                let end = parse_position(e, &context)?;
                Ok(Some(Area::single(start, end)?))
            }
            _ => Err(StandoffError::IncompleteRegion {
                context: format!(
                    "element at pre {pre} has only one of @{}/@{}",
                    self.start_name, self.end_name
                ),
            }),
        }
    }

    fn area_from_elements(&self, doc: &Document, pre: u32) -> Result<Option<Area>, StandoffError> {
        let region_name = self.region_name.as_deref().expect("element repr");
        let mut regions = Vec::new();
        for child in doc.children(pre) {
            if doc.kind(child) != NodeKind::Element {
                continue;
            }
            if doc.names().lexical(doc.name_id(child)) != region_name {
                continue;
            }
            let mut start = None;
            let mut end = None;
            for grand in doc.children(child) {
                if doc.kind(grand) != NodeKind::Element {
                    continue;
                }
                let name = doc.names().lexical(doc.name_id(grand));
                let text = doc.string_value(standoff_xml::NodeId::tree(grand));
                let context = || format!("<{region_name}> at pre {child}");
                if name == self.start_name {
                    start = Some(parse_position(text.trim(), &context)?);
                } else if name == self.end_name {
                    end = Some(parse_position(text.trim(), &context)?);
                }
            }
            match (start, end) {
                (Some(s), Some(e)) => regions.push(Region::new(s, e)?),
                _ => {
                    return Err(StandoffError::IncompleteRegion {
                        context: format!("<{region_name}> at pre {child}"),
                    })
                }
            }
        }
        if regions.is_empty() {
            Ok(None)
        } else {
            Ok(Some(Area::try_new(regions)?))
        }
    }
}

fn parse_position(s: &str, context: &dyn Fn() -> String) -> Result<i64, StandoffError> {
    s.trim().parse().map_err(|_| StandoffError::BadPosition {
        value: s.to_string(),
        context: context(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use standoff_xml::parse_document;

    #[test]
    fn attribute_representation_default_names() {
        let doc = parse_document(r#"<a><foo start="1" end="10">bar</foo><plain/></a>"#).unwrap();
        let cfg = StandoffConfig::default();
        let foo = doc.elements_named("foo")[0];
        let area = cfg.area_of(&doc, foo).unwrap().unwrap();
        assert_eq!(area.regions(), &[Region::new(1, 10).unwrap()]);
        let plain = doc.elements_named("plain")[0];
        assert_eq!(cfg.area_of(&doc, plain).unwrap(), None);
    }

    #[test]
    fn custom_attribute_names() {
        let doc = parse_document(r#"<a><foo from="5" to="7"/></a>"#).unwrap();
        let cfg = StandoffConfig {
            start_name: "from".into(),
            end_name: "to".into(),
            ..Default::default()
        };
        let area = cfg.area_of(&doc, 2).unwrap().unwrap();
        assert_eq!(area.bounding(), Region::new(5, 7).unwrap());
        // Default names find nothing in this document.
        assert_eq!(StandoffConfig::default().area_of(&doc, 2).unwrap(), None);
    }

    #[test]
    fn element_representation_paper_example() {
        // The exact markup from §2 of the paper.
        let doc =
            parse_document("<foo><region>\n<start>1</start>\n<end>2</end>\n</region>\nbar\n</foo>")
                .unwrap();
        let cfg = StandoffConfig::element_repr();
        let area = cfg.area_of(&doc, 1).unwrap().unwrap();
        assert_eq!(area.regions(), &[Region::new(1, 2).unwrap()]);
    }

    #[test]
    fn element_representation_non_contiguous() {
        let doc = parse_document(
            "<file>\
               <region><start>0</start><end>511</end></region>\
               <region><start>2048</start><end>4095</end></region>\
             </file>",
        )
        .unwrap();
        let cfg = StandoffConfig::element_repr();
        let area = cfg.area_of(&doc, 1).unwrap().unwrap();
        assert_eq!(area.region_count(), 2);
        assert!(!area.is_contiguous());
    }

    #[test]
    fn incomplete_attribute_region_errors() {
        let doc = parse_document(r#"<a><foo start="1"/></a>"#).unwrap();
        let cfg = StandoffConfig::default();
        assert!(matches!(
            cfg.area_of(&doc, 2),
            Err(StandoffError::IncompleteRegion { .. })
        ));
    }

    #[test]
    fn lenient_mode_skips_malformed() {
        let doc = parse_document(r#"<a><foo start="1"/><bar start="x" end="y"/></a>"#).unwrap();
        let cfg = StandoffConfig {
            lenient: true,
            ..Default::default()
        };
        assert_eq!(cfg.area_of(&doc, 2).unwrap(), None);
        assert_eq!(cfg.area_of(&doc, 3).unwrap(), None);
    }

    #[test]
    fn non_numeric_position_errors() {
        let doc = parse_document(r#"<a><foo start="one" end="10"/></a>"#).unwrap();
        assert!(matches!(
            StandoffConfig::default().area_of(&doc, 2),
            Err(StandoffError::BadPosition { .. })
        ));
    }

    #[test]
    fn region_repr_switch() {
        assert_eq!(StandoffConfig::default().repr(), RegionRepr::Attributes);
        assert_eq!(StandoffConfig::element_repr().repr(), RegionRepr::Elements);
    }

    #[test]
    fn type_validation() {
        assert!(StandoffConfig::default().validate().is_ok());
        let cfg = StandoffConfig {
            position_type: "xs:dateTime".into(),
            ..Default::default()
        };
        assert!(matches!(
            cfg.validate(),
            Err(StandoffError::UnsupportedType(_))
        ));
    }

    #[test]
    fn negative_positions_are_valid() {
        let doc = parse_document(r#"<a><foo start="-100" end="-1"/></a>"#).unwrap();
        let area = StandoffConfig::default().area_of(&doc, 2).unwrap().unwrap();
        assert_eq!(area.bounding(), Region::new(-100, -1).unwrap());
    }
}
