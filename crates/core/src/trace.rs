//! Execution tracing for the loop-lifted StandOff MergeJoin.
//!
//! Figure 4 of the paper walks through the Listing 1 algorithm on a small
//! context/candidate input, step by step, with the pseudo-code line
//! numbers of each action. The merge join accepts an optional
//! [`TraceSink`] and reports exactly those actions, so the figure can be
//! regenerated (and asserted) verbatim — see `tests/figure4_trace.rs` and
//! the `figure4` harness binary.

/// One algorithm action, tagged with the Listing 1 line numbers it
/// corresponds to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    /// A context item was appended to the active-items list.
    /// `line` is 8 (initial item) or 41 (subsequent items).
    AddActive { ctx: u32, line: u8 },
    /// A context item was skipped because an active item of the same
    /// iteration already covers it (lines 11–18).
    SkipContext { ctx: u32 },
    /// An active context item was removed: its end lies before the
    /// current candidate's start (line 31).
    RemoveActive { ctx: u32 },
    /// A candidate was skipped by the "non-possible" fast-forward —
    /// it starts before the current context item (lines 21–24).
    SkipCandidateBefore { cand: u32 },
    /// A candidate was analyzed but no active item contains it
    /// (lines 32–35 without emission).
    SkipCandidateNoMatch { cand: u32 },
    /// A result `(iter, candidate)` was produced (lines 32–34).
    Emit { iter: u32, cand: u32 },
    /// All candidates consumed — the join exits (line 38).
    Exit,
}

/// Receiver of trace events. The join calls this synchronously; sinks
/// should be cheap (the benchmarks never enable tracing).
pub trait TraceSink {
    fn event(&mut self, event: TraceEvent);

    /// Does this sink observe events? When `false` the merge join may
    /// replace per-event stepping with bulk skips (e.g. galloping over
    /// non-possible candidates) — the Figure 4 trace stays verbatim only
    /// for enabled sinks.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }
}

impl<T: TraceSink + ?Sized> TraceSink for &mut T {
    fn event(&mut self, event: TraceEvent) {
        (**self).event(event);
    }

    fn enabled(&self) -> bool {
        (**self).enabled()
    }
}

/// The disabled sink: a zero-sized type whose `event` is a no-op, so the
/// monomorphized merge join carries no tracing cost at all.
#[derive(Default, Clone, Copy, Debug)]
pub struct NoTrace;

impl TraceSink for NoTrace {
    #[inline(always)]
    fn event(&mut self, _event: TraceEvent) {}

    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}

/// A sink that records all events into a vector.
#[derive(Default, Debug)]
pub struct VecTrace {
    pub events: Vec<TraceEvent>,
}

impl TraceSink for VecTrace {
    fn event(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_trace_records_in_order() {
        let mut t = VecTrace::default();
        t.event(TraceEvent::AddActive { ctx: 0, line: 8 });
        t.event(TraceEvent::Exit);
        assert_eq!(
            t.events,
            vec![TraceEvent::AddActive { ctx: 0, line: 8 }, TraceEvent::Exit]
        );
    }
}
