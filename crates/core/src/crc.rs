//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial), dependency-free.
//!
//! The durability layer records one checksum per snapshot section and
//! per WAL record. CRC-32 is the right tool there: it detects every
//! single-bit flip and every burst shorter than 32 bits, and needs no
//! external crate. It is **not** a cryptographic hash — the store's
//! threat model is torn writes and bit rot, not an adversary forging
//! payloads.
//!
//! The bulk path is slicing-by-8: eight lookup tables let one loop
//! iteration fold eight input bytes, breaking the per-byte dependency
//! chain of the classic table walk. Snapshot sections are megabytes —
//! the checksum tax on mount tracks this loop directly.

/// `TABLES[0]` is the classic per-byte table of the reflected
/// polynomial `0xEDB88320`; `TABLES[k]` gives the state after the
/// byte has been pushed through `k` further zero bytes, which is what
/// lets eight bytes fold in one step. All derived at compile time.
const TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut n = 0;
    while n < 256 {
        let mut crc = n as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][n] = crc;
        n += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut n = 0;
        while n < 256 {
            let prev = tables[t - 1][n];
            tables[t][n] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            n += 1;
        }
        t += 1;
    }
    tables
};

/// Streaming CRC-32 state; feed chunks with [`Crc32::update`], read the
/// digest with [`Crc32::finish`].
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // Fold the CRC state into the first four bytes, then push
            // all eight through their zero-padding tables at once.
            let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
            crc = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][chunk[4] as usize]
                ^ TABLES[2][chunk[5] as usize]
                ^ TABLES[1][chunk[6] as usize]
                ^ TABLES[0][chunk[7] as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value of the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"standoff"), crc32(b"standoff"));
        assert_ne!(crc32(b"standoff"), crc32(b"standofg"));
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut streamed = Crc32::new();
        for chunk in data.chunks(7) {
            streamed.update(chunk);
        }
        assert_eq!(streamed.finish(), crc32(&data));
    }

    #[test]
    fn single_bit_flips_change_the_digest() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let reference = crc32(&data);
        for k in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[k] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at byte {k} bit {bit}");
            }
        }
    }
}
