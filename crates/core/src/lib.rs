//! # standoff-core
//!
//! The primary contribution of *Efficient XQuery Support for Stand-Off
//! Annotation* (Alink et al., XIME-P/SIGMOD 2006), as a reusable library:
//!
//! * [`Region`] / [`Area`] — the paper's annotation model (§2): an
//!   *area-annotation* is an XML element carrying one or more
//!   non-overlapping, non-touching `[start,end]` regions over an external
//!   BLOB, with the `contains`/`overlaps` predicates of §3.1;
//! * [`StandoffConfig`] — the configurable representation (§2): regions as
//!   `start`/`end` attributes or as `<region>` child elements, with
//!   application-chosen names (`declare option standoff-*`);
//! * [`RegionIndex`] — the `start|end|id` index clustered on `start`
//!   (§4.3), with candidate-sequence intersection;
//! * [`StandoffAxis`] — the four StandOff joins of §3.1 (`select-narrow`,
//!   `select-wide`, `reject-narrow`, `reject-wide`);
//! * [`join`] — the evaluation algorithms of §4 under a common interface:
//!   the quadratic *naive* baselines (the paper's XQuery-function
//!   Alternatives 1 and 2), the *Basic StandOff MergeJoin* (§4.4) and the
//!   *Loop-Lifted StandOff MergeJoin* (§4.5, Listing 1), selected by
//!   [`StandoffStrategy`];
//! * [`trace`] — an execution-trace hook that reproduces the paper's
//!   Figure 4 step-by-step;
//! * [`obs`] — a dependency-free metrics registry (named counters and
//!   bucketed histograms) shared by the whole workspace.

pub mod budget;
pub mod config;
pub mod crc;
pub mod error;
pub mod index;
pub mod join;
pub mod obs;
pub mod par;
pub mod region;
pub mod source;
pub mod trace;

/// Named fault points for chaos testing (see [`fault::point`]).
/// Compiled in only for tests and `--features fault-inject` builds;
/// release builds get the empty stand-in below.
#[cfg(any(test, feature = "fault-inject"))]
pub mod fault;
#[cfg(not(any(test, feature = "fault-inject")))]
pub mod fault {
    //! Disarmed stand-in: fault points vanish from release builds.
    #[inline(always)]
    pub fn point(_name: &str) {}
    /// Disarmed stand-in for [`arm_from_env`]: release builds ignore
    /// `STANDOFF_FAULT` entirely.
    pub fn arm_from_env() {}
}

pub use budget::{Budget, BudgetExceeded, BudgetLimits};
pub use config::{RegionRepr, StandoffConfig};
pub use crc::{crc32, Crc32};
pub use error::StandoffError;
pub use index::{
    CandidateRepr, CandidateScratch, CandidateSet, DenseCandidates, IndexStats, KernelStats,
    MorselPolicy, RegionEntry, RegionIndex,
};
pub use join::{
    evaluate_standoff_join, evaluate_standoff_join_with, IterNode, JoinInput, JoinScratch,
    StandoffAxis, StandoffStrategy,
};
pub use obs::{Counter, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use region::{Area, Region};
pub use source::RegionSource;
pub use trace::{NoTrace, TraceEvent, TraceSink, VecTrace};
